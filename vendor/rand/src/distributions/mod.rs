//! Distributions: `Standard` plus the uniform-range samplers behind
//! `gen_range`. All bit recipes follow `rand` 0.8.5 exactly.

pub mod uniform;

use crate::Rng;

/// A type that can produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The canonical distribution: full-width ints, `[0, 1)` floats,
/// sign-bit bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$method() as $ty
            }
        })*
    };
}

// Upstream: 8/16/32-bit ints truncate a u32 draw; 64-bit and pointer
// sized ints take a u64 draw.
standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64,
    usize => next_u64, isize => next_u64,
}

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        // Upstream: high word first.
        u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        rng.gen::<u128>() as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream compares the sign bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit "multiply" recipe: u64 >> 11, scaled by 2^-53.
        let value = rng.next_u64() >> (64 - 53);
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * (value as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> (32 - 24);
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * (value as f32)
    }
}
