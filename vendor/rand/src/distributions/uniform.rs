//! Uniform range sampling, bit-compatible with `rand` 0.8.5's
//! `UniformInt::sample_single_inclusive` (widening-multiply rejection)
//! and `UniformFloat::sample_single` ([1,2) mantissa construction).

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// A type `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Samples from the half-open range `[low, high)`.
    fn sample_single<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples from the closed range `[low, high]`.
    fn sample_single_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range types accepted by `gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

trait WideningMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn wmul(self, other: u32) -> (u32, u32) {
        let t = u64::from(self) * u64::from(other);
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMul for u64 {
    fn wmul(self, other: u64) -> (u64, u64) {
        let t = u128::from(self) * u128::from(other);
        ((t >> 64) as u64, t as u64)
    }
}

impl WideningMul for usize {
    fn wmul(self, other: usize) -> (usize, usize) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}

// $ty: sampled type; $unsigned: same-width unsigned; $u_large: the
// width actually drawn from the generator (u32 for sub-32-bit types).
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low <= high, "gen_range: low > high (inclusive)");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Wrapped to 0: the range covers the whole type.
                if range == 0 {
                    return rng.gen();
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types: exact modulus on the drawn width.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    // Conservative power-of-two-free zone.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.gen();
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { i8, u8, u32 }
uniform_int_impl! { i16, u16, u32 }
uniform_int_impl! { i32, u32, u32 }
uniform_int_impl! { i64, u64, u64 }
uniform_int_impl! { isize, usize, usize }
uniform_int_impl! { u8, u8, u32 }
uniform_int_impl! { u16, u16, u32 }
uniform_int_impl! { u32, u32, u32 }
uniform_int_impl! { u64, u64, u64 }
uniform_int_impl! { usize, usize, usize }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $mantissa_bits:expr, $bias:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                debug_assert!(low < high, "gen_range: low >= high");
                let scale = high - low;
                loop {
                    // Value in [1, 2): exponent 0, random mantissa.
                    let mantissa = rng.gen::<$uty>() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits((($bias as $uty) << $mantissa_bits) | mantissa);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                // Upstream routes float inclusive ranges through
                // `Uniform::new_inclusive`: a precomputed scale such
                // that the largest mantissa draw lands exactly on
                // `high`, shrunk while rounding overshoots.
                debug_assert!(low <= high, "gen_range: low > high (inclusive)");
                let max_rand = 1.0 - <$ty>::EPSILON / 2.0;
                let mut scale = (high - low) / max_rand;
                while scale * max_rand + low > high {
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
                let mantissa = rng.gen::<$uty>() >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits((($bias as $uty) << $mantissa_bits) | mantissa);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    };
}

uniform_float_impl! { f64, u64, 64 - 52, 52, 1023u64 }
uniform_float_impl! { f32, u32, 32 - 23, 23, 127u32 }
