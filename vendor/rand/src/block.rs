//! The upstream `BlockRng` buffering discipline over the ChaCha12
//! core. The straddle rules in `next_u64` (and the `generate_and_set`
//! index resets) are load-bearing for bit-compatibility: upstream
//! consumers interleave `next_u32`/`next_u64` calls and the committed
//! seed-42 report depends on the exact consumption pattern.

use crate::chacha::{ChaCha12Core, BUFFER_WORDS};

/// Buffered ChaCha12 generator, equivalent to
/// `BlockRng<ChaCha12Core>` from `rand_core` 0.6.
#[derive(Clone)]
pub struct BlockRng {
    core: ChaCha12Core,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl BlockRng {
    /// Creates the generator with an empty buffer (first use refills).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        BlockRng {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }

    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    pub fn next_u64(&mut self) -> u64 {
        let read_u64 = |results: &[u32], index: usize| {
            u64::from(results[index + 1]) << 32 | u64::from(results[index])
        };
        let len = BUFFER_WORDS;
        let index = self.index;
        if index < len - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= len {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            // One word left: take it as the low half, refill, take the
            // first new word as the high half.
            let x = u64::from(self.results[len - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut read_len = 0;
        while read_len < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.generate_and_set(0);
            }
            // fill_via_u32_chunks: copy whole little-endian words, then
            // a trailing partial word if the destination ends mid-word.
            let remainder = &self.results[self.index..];
            let dest_tail = &mut dest[read_len..];
            let mut consumed = 0;
            let mut filled = 0;
            for word in remainder {
                if filled >= dest_tail.len() {
                    break;
                }
                let bytes = word.to_le_bytes();
                let take = (dest_tail.len() - filled).min(4);
                dest_tail[filled..filled + take].copy_from_slice(&bytes[..take]);
                filled += take;
                consumed += 1;
            }
            self.index += consumed;
            read_len += filled;
        }
    }
}

impl std::fmt::Debug for BlockRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRng").finish_non_exhaustive()
    }
}
