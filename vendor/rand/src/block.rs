//! The upstream `BlockRng` buffering discipline over the ChaCha12
//! core. The straddle rules in `next_u64` (and the `generate_and_set`
//! index resets) are load-bearing for bit-compatibility: upstream
//! consumers interleave `next_u32`/`next_u64` calls and the committed
//! seed-42 report depends on the exact consumption pattern.

use crate::chacha::{ChaCha12Core, BUFFER_BLOCKS, BUFFER_WORDS};

/// The complete serializable position of a generator in its keystream.
///
/// The 64-word output buffer is *not* part of the state: it is a pure
/// function of `(key, counter)` and is regenerated on restore. A
/// generator restored from this state produces the exact same stream —
/// across `next_u32`/`next_u64`/`fill_bytes` interleavings — as the
/// uninterrupted original.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngState {
    /// ChaCha12 key words.
    pub key: [u32; 8],
    /// Core block counter *after* the most recent buffer refill.
    pub counter: u64,
    /// Next unread word in the 64-word buffer; `BUFFER_WORDS` when the
    /// buffer is exhausted (or was never filled).
    pub index: usize,
}

/// Buffered ChaCha12 generator, equivalent to
/// `BlockRng<ChaCha12Core>` from `rand_core` 0.6.
#[derive(Clone)]
pub struct BlockRng {
    core: ChaCha12Core,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl BlockRng {
    /// Creates the generator with an empty buffer (first use refills).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        BlockRng {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }

    /// Captures the keystream position for checkpointing.
    pub fn state(&self) -> RngState {
        let (key, counter) = self.core.state();
        RngState {
            key,
            counter,
            index: self.index.min(BUFFER_WORDS),
        }
    }

    /// Rebuilds a generator at the captured keystream position.
    ///
    /// When the buffer still held unread words, the refill that filled
    /// it advanced the counter by [`BUFFER_BLOCKS`]; re-running that
    /// refill at `counter - BUFFER_BLOCKS` reproduces the buffer and
    /// lands the counter back on the captured value.
    pub fn restore(state: RngState) -> Self {
        let index = state.index.min(BUFFER_WORDS);
        let mut results = [0u32; BUFFER_WORDS];
        let core = if index < BUFFER_WORDS {
            let mut core = ChaCha12Core::from_state(
                state.key,
                state.counter.wrapping_sub(BUFFER_BLOCKS as u64),
            );
            core.generate(&mut results);
            core
        } else {
            ChaCha12Core::from_state(state.key, state.counter)
        };
        BlockRng {
            core,
            results,
            index,
        }
    }

    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    pub fn next_u64(&mut self) -> u64 {
        let read_u64 = |results: &[u32], index: usize| {
            u64::from(results[index + 1]) << 32 | u64::from(results[index])
        };
        let len = BUFFER_WORDS;
        let index = self.index;
        if index < len - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= len {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            // One word left: take it as the low half, refill, take the
            // first new word as the high half.
            let x = u64::from(self.results[len - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut read_len = 0;
        while read_len < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.generate_and_set(0);
            }
            // fill_via_u32_chunks: copy whole little-endian words, then
            // a trailing partial word if the destination ends mid-word.
            let remainder = &self.results[self.index..];
            let dest_tail = &mut dest[read_len..];
            let mut consumed = 0;
            let mut filled = 0;
            for word in remainder {
                if filled >= dest_tail.len() {
                    break;
                }
                let bytes = word.to_le_bytes();
                let take = (dest_tail.len() - filled).min(4);
                dest_tail[filled..filled + take].copy_from_slice(&bytes[..take]);
                filled += take;
                consumed += 1;
            }
            self.index += consumed;
            read_len += filled;
        }
    }
}

impl std::fmt::Debug for BlockRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> BlockRng {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        BlockRng::from_seed(seed)
    }

    /// Restoring at every buffer offset — including the fresh (never
    /// filled) state, the one-word-left `next_u64` straddle, and the
    /// exhausted state — continues the stream bit-for-bit under a mixed
    /// u32/u64/fill_bytes consumption pattern.
    #[test]
    fn restore_continues_stream_at_every_offset() {
        for warmup in 0..(2 * BUFFER_WORDS + 3) {
            let mut original = seeded();
            for _ in 0..warmup {
                original.next_u32();
            }
            let mut restored = BlockRng::restore(original.state());
            for step in 0..200 {
                match step % 3 {
                    0 => assert_eq!(original.next_u64(), restored.next_u64()),
                    1 => assert_eq!(original.next_u32(), restored.next_u32()),
                    _ => {
                        let (mut a, mut b) = ([0u8; 7], [0u8; 7]);
                        original.fill_bytes(&mut a);
                        restored.fill_bytes(&mut b);
                        assert_eq!(a, b);
                    }
                }
            }
            assert_eq!(original.state(), restored.state());
        }
    }
}
