//! ChaCha12 block function, serial RFC 8439 layout with the 64-bit
//! counter variant `rand_chacha` uses. Output matches the upstream
//! keystream word-for-word.

/// Number of 32-bit words per ChaCha block.
pub const BLOCK_WORDS: usize = 16;
/// Blocks generated per buffer refill (upstream generates 4 at once).
pub const BUFFER_BLOCKS: usize = 4;
/// Words per buffer refill.
pub const BUFFER_WORDS: usize = BLOCK_WORDS * BUFFER_BLOCKS;

/// ChaCha12 core state: key + 64-bit block counter (+ zero nonce).
#[derive(Clone, Debug)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Core {
    /// Builds the core from a 32-byte key, counter 0, zero nonce.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha12Core { key, counter: 0 }
    }

    /// Computes one ChaCha12 block at `counter` into `out`.
    fn block(&self, counter: u64, out: &mut [u32]) {
        debug_assert_eq!(out.len(), BLOCK_WORDS);
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        // 12 rounds = 6 double rounds.
        for _ in 0..6 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, (w, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = w.wrapping_add(*i);
        }
    }

    /// Rebuilds the core at an explicit `(key, counter)` point in the
    /// keystream, for checkpoint restore.
    pub fn from_state(key: [u32; 8], counter: u64) -> Self {
        ChaCha12Core { key, counter }
    }

    /// The raw `(key, counter)` state, for checkpointing.
    pub fn state(&self) -> ([u32; 8], u64) {
        (self.key, self.counter)
    }

    /// Refills a 64-word buffer with the next 4 sequential blocks and
    /// advances the counter by 4, exactly as the upstream wide backend.
    pub fn generate(&mut self, results: &mut [u32; BUFFER_WORDS]) {
        for blk in 0..BUFFER_BLOCKS {
            let counter = self.counter.wrapping_add(blk as u64);
            self.block(
                counter,
                &mut results[blk * BLOCK_WORDS..(blk + 1) * BLOCK_WORDS],
            );
        }
        self.counter = self.counter.wrapping_add(BUFFER_BLOCKS as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ChaCha12 keystream for the all-zero key/nonce, counter 0 — the
    // reference vector from the ecrypt/estreme test set, as used by
    // rand_chacha's own unit tests (first 16 words, little-endian).
    #[test]
    fn zero_key_reference_block() {
        let core = ChaCha12Core::from_seed([0u8; 32]);
        let mut out = [0u32; BLOCK_WORDS];
        core.block(0, &mut out);
        let mut bytes = Vec::new();
        for w in out {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        // First 16 keystream bytes of ChaCha12 with zero key/IV.
        let expected: [u8; 16] = [
            0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f, 0x26,
            0x83, 0xd5,
        ];
        assert_eq!(&bytes[..16], &expected);
    }
}
