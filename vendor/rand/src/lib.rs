//! Vendored, dependency-free subset of `rand` 0.8.
//!
//! The build environment has no registry access, so the workspace ships
//! the slice of `rand` it actually uses as a local path crate. The
//! number streams are **bit-compatible** with upstream `rand` 0.8 +
//! `rand_chacha` 0.3 for every entry point the workspace calls:
//!
//! * `StdRng` is ChaCha12 behind the upstream `BlockRng` buffering
//!   discipline (64-word buffer, the documented `next_u64` straddle
//!   rules), seeded via the upstream `seed_from_u64` PCG32 expansion.
//! * `Standard` float/int/bool sampling uses the upstream bit
//!   recipes (`u64 >> 11` into 53-bit mantissa space, sign-bit bool).
//! * `gen_range` reproduces `UniformInt::sample_single_inclusive`
//!   (widening-multiply rejection zones) and
//!   `UniformFloat::sample_single` ([1,2) mantissa trick) exactly.
//!
//! `docs/report_seed42.txt` — generated against the real crates —
//! regenerates byte-identically on top of this implementation, which
//! the integration suite asserts.

pub mod distributions;
pub mod rngs;

mod block;
mod chacha;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
///
/// Mirrors `rand_core::RngCore` (minus the fallible `try_fill_bytes`,
/// which nothing in this workspace calls).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the splittable PCG32
    /// stream upstream uses, then seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        // Upstream constants (rand_core 0.6 `seed_from_u64`).
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // Upstream Bernoulli: compare against p scaled to 2^64.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.gen::<u64>() < p_int
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}
