//! Named generators. `StdRng` is ChaCha12, as in `rand` 0.8.

use crate::block::BlockRng;
pub use crate::block::RngState;
use crate::{RngCore, SeedableRng};

/// The standard generator: ChaCha12 behind the upstream block buffer.
#[derive(Clone, Debug)]
pub struct StdRng(BlockRng);

impl StdRng {
    /// Captures the keystream position for checkpointing.
    pub fn state(&self) -> RngState {
        self.0.state()
    }

    /// Rebuilds a generator at a captured keystream position. The
    /// restored generator continues the stream bit-for-bit.
    pub fn restore(state: RngState) -> Self {
        StdRng(BlockRng::restore(state))
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        StdRng(BlockRng::from_seed(seed))
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
