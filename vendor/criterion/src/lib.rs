//! Vendored, dependency-free subset of `criterion` 0.5.
//!
//! The build environment has no registry access, so the workspace
//! ships a minimal wall-clock harness with the same API shape:
//! benchmark groups, `bench_function`, `Bencher::iter`, throughput
//! annotation, and the `criterion_group!`/`criterion_main!` macros.
//! Timing: per-sample batches sized from a short calibration run,
//! reporting min/median/mean per iteration. No plots, no statistics
//! beyond that — enough to compare hot paths release-to-release.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark context; holds the CLI substring filter.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>`: first non-flag argument
        // filters benchmark ids. Flags (`--bench`, `--test`, ...) that
        // cargo forwards to harness=false targets are ignored; under
        // `--test` (compile-check mode) nothing runs.
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        if test_mode {
            filter = Some("\u{0}never-matches\u{0}".to_string());
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        // Calibrate: one timed pass to size sample batches.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            pending_iters: 0,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("{full_id:<50} (no iterations)");
            return self;
        }
        let per_iter = bencher.elapsed.as_nanos().max(1) / bencher.iters as u128;
        // Budget ~2s across samples (capped), ≥1 iteration per sample.
        let samples = self.sample_size.clamp(10, 100);
        let budget_ns = 2_000_000_000u128;
        let iters_per_sample = (budget_ns / samples as u128 / per_iter).clamp(1, 1_000_000) as u64;
        let mut times: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
                pending_iters: iters_per_sample,
            };
            f(&mut b);
            times.push(b.elapsed.as_nanos() / b.iters.max(1) as u128);
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<u128>() / times.len() as u128;
        let tp = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gbs = n as f64 / median.max(1) as f64; // bytes per ns = GB/s
                format!("  {gbs:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 * 1e3 / median.max(1) as f64;
                format!("  {meps:.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{full_id:<50} time: [{} {} {}]{tp}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    // Fixed batch size during measurement; 0 during calibration,
    // where `iter` runs a short self-timed batch instead.
    pending_iters: u64,
}

impl Bencher {
    /// Times `routine`, accumulating per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let batch = if self.pending_iters > 0 {
            self.pending_iters
        } else {
            // Calibration: run until ~50ms or 50 iterations.
            let start = Instant::now();
            let mut n = 0u64;
            while n < 50 && start.elapsed() < Duration::from_millis(50) {
                black_box(routine());
                n += 1;
            }
            self.elapsed += start.elapsed();
            self.iters += n;
            return;
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
