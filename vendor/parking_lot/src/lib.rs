//! Vendored, dependency-free subset of `parking_lot` 0.12.
//!
//! The build environment has no registry access, so the workspace
//! ships the slice of the API it uses — `Mutex::lock`,
//! `RwLock::read`/`write` returning guards directly (no poisoning) —
//! implemented over `std::sync`. A poisoned std lock (a panic while
//! held) degrades to the inner value exactly like parking_lot, which
//! never poisons.

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}
