//! Vendored, dependency-free subset of `crossbeam` 0.8.
//!
//! The build environment has no registry access, so the workspace
//! ships the one API it uses — `crossbeam::thread::scope` /
//! `Scope::spawn` — implemented over `std::thread::scope` (stable
//! since 1.63, below the workspace MSRV). Differences from upstream:
//! `scope` itself propagates child panics on join (upstream returns
//! them in the `Result`); spawned closures still receive a `&Scope`
//! argument for nested spawns.

pub mod thread {
    use std::marker::PhantomData;
    use std::thread as std_thread;

    /// A scope handle for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result; `Err` holds
        /// the panic payload, as upstream.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so
        /// it can spawn further threads, mirroring upstream's
        /// signature (`|_| ...` at every current call site).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            });
            ScopedJoinHandle {
                inner: handle,
                _marker: PhantomData,
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// threads are joined before `scope` returns. Returns `Ok` like
    /// upstream's signature; a panicking child re-raises on join.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub use thread::scope;
