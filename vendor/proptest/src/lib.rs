//! Vendored, dependency-free subset of `proptest` 1.x.
//!
//! The build environment has no registry access, so the workspace
//! ships the slice of the API its property tests use: the `proptest!`
//! macro, `prop_assert*`, `Strategy` with `prop_map` /
//! `prop_recursive`, `Just`, `prop_oneof!`, `any::<T>()`, integer and
//! float range strategies, the regex-subset string strategies the
//! tests rely on, `prop::collection::{vec, btree_map}`, and
//! `prop::sample::Index`.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. Cases are generated from a deterministic per-test seed
//! (stable across runs; override the count with `PROPTEST_CASES`),
//! and the first failing case reports its case number and assertion
//! message.

pub mod arbitrary;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, vec};
    }
    /// Sampling helpers.
    pub mod sample {
        pub use crate::strategy::sample::Index;
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs over many generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __pt_rng);)+
                    let __pt_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __pt_case()
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
