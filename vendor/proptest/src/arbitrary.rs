//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite spread across magnitudes; NaN/Inf are upstream
        // special cases no current test relies on.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(64) as i32 - 32;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}
