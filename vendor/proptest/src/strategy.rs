//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a bounded-depth recursive strategy: `recurse` receives a
    /// strategy for "values one level down" (which mixes leaves and
    /// deeper branches) and returns the branch strategy. The upstream
    /// `desired_size`/`expected_branch_size` hints are accepted and
    /// ignored — depth alone bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply-clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Bounded-depth recursive strategy (`prop_recursive`).
pub struct Recursive<T> {
    pub(crate) base: BoxedStrategy<T>,
    pub(crate) depth: u32,
    pub(crate) recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // level(0) = leaves; level(k) = branch over (leaf | level(k-1)),
        // so every depth produces a mix of leaves and containers.
        let mut strat = self.base.clone();
        for _ in 0..self.depth {
            let inner = Union::new(vec![self.base.clone(), strat]).boxed();
            strat = (self.recurse)(inner);
        }
        Union::new(vec![self.base.clone(), strat]).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Whole-domain 64-bit range.
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let f = rng.unit_f64() as $ty;
                    self.start + f * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Size bounds accepted by collection strategies.
    pub trait SizeBounds {
        /// Picks a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below((*self.end() - *self.start() + 1) as u64) as usize
        }
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy, Z: SizeBounds>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` strategy; duplicate keys collapse, as upstream.
    pub struct BTreeMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    /// Generates maps of up to `size` entries.
    pub fn btree_map<K: Strategy, V: Strategy, Z: SizeBounds>(
        key: K,
        value: V,
        size: Z,
    ) -> BTreeMapStrategy<K, V, Z>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy, Z: SizeBounds> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    /// An index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps onto `[0, size)`; `size` must be non-zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            ((u128::from(self.0) * size as u128) >> 64) as usize
        }
    }
}
