//! Generator for the regex subset the workspace's string strategies
//! use: literal characters, character classes with ranges and escapes,
//! `\PC` (any non-control character), and `{m,n}` / `{n}` / `?` / `*`
//! / `+` repetition. No alternation or grouping — none of the
//! patterns in this workspace need them.

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    /// Expanded member set of a character class.
    Class(Vec<char>),
    /// `\PC`: any non-control character.
    NotControl,
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Pool for `\PC`: printable ASCII plus a spread of non-control
/// Unicode (accents, currency, CJK, an astral-plane symbol) so parser
/// robustness tests see multi-byte input.
const NOT_CONTROL_EXTRA: &[char] = &['\u{e9}', '\u{20ac}', '\u{4e2d}', '\u{1f980}', '\u{a0}'];

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let m = chars.next().expect("unterminated character class");
                    match m {
                        ']' => break,
                        '\\' => {
                            let e = chars.next().expect("dangling escape in class");
                            let lit = unescape(e);
                            members.push(lit);
                            prev = Some(lit);
                        }
                        '-' => {
                            // Range if we have a left end and a right end
                            // follows; a trailing '-' is literal.
                            match (prev, chars.peek().copied()) {
                                (Some(lo), Some(hi)) if hi != ']' => {
                                    chars.next();
                                    let hi = if hi == '\\' {
                                        unescape(chars.next().expect("dangling escape"))
                                    } else {
                                        hi
                                    };
                                    // `lo` was already pushed as a member;
                                    // add the rest of the range.
                                    let (lo_u, hi_u) = (lo as u32, hi as u32);
                                    assert!(lo_u <= hi_u, "inverted class range");
                                    for u in (lo_u + 1)..=hi_u {
                                        if let Some(ch) = char::from_u32(u) {
                                            members.push(ch);
                                        }
                                    }
                                    prev = None;
                                }
                                _ => {
                                    members.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        other => {
                            members.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!members.is_empty(), "empty character class");
                Atom::Class(members)
            }
            '\\' => {
                let e = chars.next().expect("dangling escape");
                if e == 'P' {
                    let prop = chars.next().expect("\\P needs a property");
                    assert_eq!(prop, 'C', "only \\PC is supported");
                    Atom::NotControl
                } else {
                    Atom::Literal(unescape(e))
                }
            }
            other => Atom::Literal(other),
        };
        // Optional repetition suffix.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for m in chars.by_ref() {
                    if m == '}' {
                        break;
                    }
                    spec.push(m);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition bound"),
                        hi.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition bounds");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(e: char) -> char {
    match e {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

fn pick_not_control(rng: &mut TestRng) -> char {
    // 7/8 printable ASCII, 1/8 from the Unicode extras.
    if rng.below(8) < 7 {
        char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
    } else {
        NOT_CONTROL_EXTRA[rng.below(NOT_CONTROL_EXTRA.len() as u64) as usize]
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(members) => out.push(members[rng.below(members.len() as u64) as usize]),
                Atom::NotControl => out.push(pick_not_control(rng)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_ranges_and_escapes() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..200 {
            let s = generate("/[a-z0-9/\\-_]{0,30}", &mut rng);
            assert!(s.starts_with('/'));
        }
        for _ in 0..200 {
            let s = generate("\\PC{0,200}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn adversarial_csv_class_includes_newlines() {
        let mut rng = TestRng::new(9);
        let mut seen_newline = false;
        for _ in 0..500 {
            let s = generate("[a-zA-Z0-9 ,\"\n\r\\.\\-]{0,40}", &mut rng);
            seen_newline |= s.contains('\n');
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,\"\n\r.-".contains(c)));
        }
        assert!(seen_newline, "newline member never generated");
    }
}
