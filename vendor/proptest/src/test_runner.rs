//! Deterministic case runner and the tiny RNG behind generation.

use std::fmt;

/// Failure raised by `prop_assert*` inside a case body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Generation RNG: splitmix64 (quality is ample for test-case choice).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift mapping — negligible bias for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `case` for a deterministic sequence of generated inputs.
/// Panics (failing the `#[test]`) on the first case error.
pub fn run<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let base = fnv1a(name.as_bytes());
    for i in 0..cases {
        let mut rng = TestRng::new(base ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' failed at case {i}/{cases}: {e}");
        }
    }
}
