//! Vendored, dependency-free subset of `bytes` 1.x.
//!
//! The build environment has no registry access, so the workspace
//! ships the slice of the API it uses. Semantics match upstream for
//! every exercised method, including the part that matters for the
//! zero-copy wire path: [`Bytes`] is a ref-counted view over a shared
//! allocation, so `clone`, [`Bytes::slice`] and [`Bytes::split_to`]
//! are O(1) and never copy payload bytes. [`BytesMut`] remains a
//! uniquely-owned `Vec` with a consumed-prefix offset; [`BytesMut::split`]
//! is O(1) (it takes the allocation) and [`BytesMut::freeze`] moves the
//! allocation into an `Arc` without copying when nothing has been
//! consumed from the front.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

/// Immutable, ref-counted view into a shared byte allocation.
///
/// Cloning and slicing adjust `(offset, len)` over the same
/// `Arc<Vec<u8>>` — no payload bytes move.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Returns a sub-view of the same allocation — O(1), no copy.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Splits off and returns the first `at` bytes — O(1), both halves
    /// keep sharing the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to past end");
        let head = Bytes {
            data: Arc::clone(&self.data),
            off: self.off,
            len: at,
        };
        self.off += at;
        self.len -= at;
        head
    }

    /// Shortens the view to `len` bytes — O(1).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
        }
    }

    /// Whether two handles view the same allocation (used by tests and
    /// buffer-reuse accounting; not part of upstream's public API).
    pub fn shares_allocation(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: Arc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl<T: AsRef<[u8]>> PartialEq<T> for Bytes {
    fn eq(&self, other: &T) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let len = data.len();
        Bytes {
            data: Arc::new(data),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Bytes {
        buf.freeze()
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

/// Growable byte buffer with an amortized-consumed front.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
    off: usize,
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            off: 0,
        }
    }

    /// Drops the allocation's consumed prefix when it is free to do so
    /// (everything consumed) — keeps `off` from growing unboundedly on
    /// long-lived stream buffers without a memmove on the hot path.
    fn reclaim(&mut self) {
        if self.off > 0 && self.off == self.data.len() {
            self.data.clear();
            self.off = 0;
        }
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.reclaim();
        if self.off > 0 && self.data.len() + additional > self.data.capacity() {
            // About to reallocate anyway: reclaim the consumed prefix
            // instead of growing past it.
            self.data.drain(..self.off);
            self.off = 0;
        }
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.reclaim();
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end");
        let head = self.data[self.off..self.off + at].to_vec();
        self.off += at;
        self.reclaim();
        BytesMut { data: head, off: 0 }
    }

    /// Splits off and returns the entire contents, leaving the buffer
    /// empty — O(1), the allocation moves to the returned half.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
            off: std::mem::take(&mut self.off),
        }
    }

    /// Freezes into an immutable [`Bytes`]. O(1) unless a consumed
    /// prefix must be dropped first.
    pub fn freeze(mut self) -> Bytes {
        if self.off > 0 {
            self.data.drain(..self.off);
            self.off = 0;
        }
        Bytes::from(self.data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.off
    }

    /// Capacity of the backing allocation.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.off = 0;
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.data.truncate(self.off + len);
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.off..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

/// Read-side buffer methods (subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.off += cnt;
        self.reclaim();
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance past end");
        self.off += cnt;
        self.len -= cnt;
    }
}

/// Write-side buffer methods (subset).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes())
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes())
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes())
    }
    fn put_u8(&mut self, v: u8) {
        self.extend_from_slice(&[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_the_allocation() {
        let b = Bytes::from(b"hello offer wall".to_vec());
        let c = b.clone();
        assert!(b.shares_allocation(&c));
        let s = b.slice(6..11);
        assert_eq!(s, b"offer");
        assert!(s.shares_allocation(&b));
    }

    #[test]
    fn split_to_is_shared_and_exact() {
        let mut b = Bytes::from(b"abcdef".to_vec());
        let head = b.split_to(2);
        assert_eq!(head, b"ab");
        assert_eq!(b, b"cdef");
        assert!(head.shares_allocation(&b));
    }

    #[test]
    fn bytes_mut_split_is_take_all() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"payload");
        let taken = m.split();
        assert_eq!(&taken[..], b"payload");
        assert!(m.is_empty());
        m.extend_from_slice(b"next");
        assert_eq!(&m[..], b"next");
    }

    #[test]
    fn freeze_keeps_contents_after_advance() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"xxhello");
        m.advance(2);
        assert_eq!(m.freeze(), b"hello");
    }

    #[test]
    fn deref_mut_edits_in_place() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abc");
        m[1] ^= 0xFF;
        assert_eq!(m[1], b'b' ^ 0xFF);
    }

    #[test]
    fn eq_is_by_contents_across_views() {
        let a = Bytes::from(b"same".to_vec());
        let b = Bytes::from(b"xsame".to_vec()).slice(1..);
        assert_eq!(a, b);
        assert!(!a.shares_allocation(&b));
        assert_eq!(a, b"same");
        assert_eq!(b"same".to_vec(), a);
    }
}
