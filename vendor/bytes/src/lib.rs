//! Vendored, dependency-free subset of `bytes` 1.x.
//!
//! The build environment has no registry access, so the workspace
//! ships the slice of the API it uses. Semantics match upstream for
//! every exercised method; the implementation trades upstream's
//! shared-buffer O(1) splits for simple copies over a `Vec<u8>` with a
//! consumed-prefix offset, which is ample for the synchronous netsim.

use std::fmt;
use std::ops::Deref;

fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

/// Immutable byte buffer (here: an owned, cheap-to-clone `Vec`).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

/// Growable byte buffer with an amortized-consumed front.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
    off: usize,
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            off: 0,
        }
    }

    fn compact(&mut self) {
        if self.off > 0 {
            self.data.drain(..self.off);
            self.off = 0;
        }
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact();
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end");
        let head = self.data[self.off..self.off + at].to_vec();
        self.off += at;
        BytesMut { data: head, off: 0 }
    }

    /// Splits off and returns the entire contents, leaving the buffer
    /// empty (capacity semantics differ from upstream; contents match).
    pub fn split(&mut self) -> BytesMut {
        let len = self.len();
        self.split_to(len)
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes { data: self.data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.off
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.off = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

/// Read-side buffer methods (subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.off += cnt;
    }
}

/// Write-side buffer methods (subset).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes())
    }
    fn put_u8(&mut self, v: u8) {
        self.extend_from_slice(&[v])
    }
}
