//! The shared simulated clock.
//!
//! One clock per world. Services read it to timestamp events (telemetry
//! upload times, crawl snapshots); the network advances it by the
//! sampled latency of each round trip; scenario drivers advance it in
//! larger steps (campaign hours, crawl days).

use iiscope_types::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::sync::Arc;

/// A cloneable handle to the world clock.
///
/// Cloning shares the underlying instant — all handles observe every
/// advance. The clock is monotonic: it can only move forward.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    inner: Arc<RwLock<SimTime>>,
}

impl Clock {
    /// Creates a clock at the world epoch.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Creates a clock at an arbitrary start instant.
    pub fn starting_at(t: SimTime) -> Clock {
        Clock {
            inner: Arc::new(RwLock::new(t)),
        }
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        *self.inner.read()
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let mut t = self.inner.write();
        *t += d;
        *t
    }

    /// Moves the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged (monotonicity). Returns the resulting instant.
    ///
    /// Checkpoint resume leans on this contract: the wild-study replay
    /// re-issues the same absolute `advance_to(day_start)` calls the
    /// original run made, so the clock lands on the exact same instants
    /// regardless of how far a crashed first life had advanced it —
    /// absolute targets plus monotonicity make the clock replay-exact.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.inner.write();
        if t > *cur {
            *cur = t;
        }
        *cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_share() {
        let c = Clock::new();
        let c2 = c.clone();
        assert_eq!(c.now(), SimTime::EPOCH);
        c.advance(SimDuration::from_hours(2));
        assert_eq!(c2.now(), SimTime::from_secs(7200));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::starting_at(SimTime::from_days(5));
        assert_eq!(c.advance_to(SimTime::from_days(3)), SimTime::from_days(5));
        assert_eq!(c.advance_to(SimTime::from_days(6)), SimTime::from_days(6));
    }
}
