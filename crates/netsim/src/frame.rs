//! Length-delimited framing over raw byte streams.
//!
//! The turn-based connections of [`crate::conn`] move opaque byte
//! slabs; the wire protocols above (TLS records, HTTP messages) need
//! message boundaries. Frames are `u32` big-endian length prefixes
//! followed by the payload, with a hard maximum to bound memory — the
//! same shape as the Tokio tutorial's framing chapter, implemented
//! synchronously on [`bytes`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum payload size of a single frame (16 MiB). Offer walls,
/// APK-sized blobs and telemetry batches all fit comfortably; anything
/// larger is a protocol error.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame (length prefix + payload) onto `out`.
pub fn encode_frame(out: &mut BytesMut, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    out.reserve(4 + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_slice(payload);
}

/// Incremental frame decoder. Feed bytes in arbitrary chunk sizes;
/// complete frames come out in order.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed; `Err` when the
    /// stream is unrecoverable (oversized declared length). After an
    /// error the decoder should be discarded along with the connection.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Drains every complete frame currently buffered.
    pub fn drain_frames(&mut self) -> Result<Vec<Bytes>, FrameError> {
        let mut frames = Vec::new();
        while let Some(frame) = self.next_frame()? {
            frames.push(frame);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_frame() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"hello");
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn split_delivery_reassembles() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"abcdefgh");
        let mut dec = FrameDecoder::new();
        for chunk in out.chunks(3) {
            dec.extend(chunk);
        }
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"abcdefgh");
    }

    #[test]
    fn multiple_frames_in_order() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"one");
        encode_frame(&mut out, b"");
        encode_frame(&mut out, b"three");
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        let frames = dec.drain_frames().unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].as_ref(), b"one");
        assert_eq!(frames[1].as_ref(), b"");
        assert_eq!(frames[2].as_ref(), b"three");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut dec = FrameDecoder::new();
        let bogus = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
        dec.extend(&bogus);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn partial_header_waits() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&[0, 1]);
        assert_eq!(dec.next_frame().unwrap(), None); // payload missing
        dec.extend(&[0xAB]);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &[0xAB]);
    }
}
