//! The network: name resolution, service bindings, connection
//! establishment, metrics.
//!
//! One [`Network`] per world. Services (the Play Store frontend, each
//! IIP's offer wall, the honey-app telemetry collector, the monitor's
//! MITM proxy) bind a `(ip, port)`; hostnames resolve to IPs; clients
//! connect with their own [`HostAddr`] so servers observe realistic
//! peer info (the geo/ASN signals that §3.2 and §4.1 rely on).

use crate::addr::HostAddr;
use crate::capture::CaptureLog;
use crate::clock::Clock;
use crate::conn::{ClientConn, PeerInfo, RecvBuf, SessionFactory};
use crate::fault::FaultPlan;
use bytes::BytesMut;
use iiscope_types::{Error, Result, SeedFork, SimDuration};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A bound service endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceBinding {
    /// Service IP.
    pub ip: Ipv4Addr,
    /// Service port.
    pub port: u16,
}

/// Aggregate network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Connections opened.
    pub connections: u64,
    /// Connection attempts refused (no listener).
    pub refused: u64,
}

struct Inner {
    clock: Clock,
    capture: CaptureLog,
    seed: SeedFork,
    services: Mutex<HashMap<ServiceBinding, Arc<dyn SessionFactory>>>,
    dns: Mutex<HashMap<String, Ipv4Addr>>,
    default_fault: Mutex<FaultPlan>,
    service_fault: Mutex<HashMap<ServiceBinding, FaultPlan>>,
    next_conn_id: AtomicU64,
    metrics: Mutex<NetMetrics>,
}

/// Cloneable handle to the world's network.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Inner>,
}

impl Network {
    /// Creates a network with its own clock, capture log and a perfect
    /// default link.
    pub fn new(seed: SeedFork) -> Network {
        Network {
            inner: Arc::new(Inner {
                clock: Clock::new(),
                capture: CaptureLog::new(),
                seed,
                services: Mutex::new(HashMap::new()),
                dns: Mutex::new(HashMap::new()),
                default_fault: Mutex::new(FaultPlan::perfect()),
                service_fault: Mutex::new(HashMap::new()),
                next_conn_id: AtomicU64::new(1),
                metrics: Mutex::new(NetMetrics::default()),
            }),
        }
    }

    /// The shared world clock.
    pub fn clock(&self) -> Clock {
        self.inner.clock.clone()
    }

    /// The shared capture log.
    pub fn capture(&self) -> CaptureLog {
        self.inner.capture.clone()
    }

    /// Binds a service factory at `(ip, port)`. Rebinding an occupied
    /// endpoint is an error (services never silently shadow each other).
    pub fn bind(
        &self,
        ip: Ipv4Addr,
        port: u16,
        factory: Arc<dyn SessionFactory>,
    ) -> Result<ServiceBinding> {
        let binding = ServiceBinding { ip, port };
        let mut services = self.inner.services.lock();
        if services.contains_key(&binding) {
            return Err(Error::InvalidState(format!("{ip}:{port} already bound")));
        }
        services.insert(binding, factory);
        Ok(binding)
    }

    /// Removes a binding (service shutdown).
    pub fn unbind(&self, binding: ServiceBinding) -> bool {
        self.inner.services.lock().remove(&binding).is_some()
    }

    /// Registers `hostname → ip`. Last registration wins (DNS updates).
    pub fn register_host(&self, hostname: impl Into<String>, ip: Ipv4Addr) {
        self.inner.dns.lock().insert(hostname.into(), ip);
    }

    /// Resolves a hostname.
    pub fn lookup(&self, hostname: &str) -> Result<Ipv4Addr> {
        self.inner
            .dns
            .lock()
            .get(hostname)
            .copied()
            .ok_or_else(|| Error::Network(format!("NXDOMAIN {hostname}")))
    }

    /// Sets the default fault plan applied to new connections.
    pub fn set_default_fault(&self, plan: FaultPlan) {
        *self.inner.default_fault.lock() = plan;
    }

    /// Overrides the fault plan for connections to one service.
    pub fn set_service_fault(&self, binding: ServiceBinding, plan: FaultPlan) {
        self.inner.service_fault.lock().insert(binding, plan);
    }

    /// Connects `client` to `hostname:port` (resolving first).
    pub fn connect_host(&self, client: HostAddr, hostname: &str, port: u16) -> Result<ClientConn> {
        let ip = self.lookup(hostname)?;
        self.connect(client, ip, port)
    }

    /// Like [`Network::connect_host`], but with a caller-supplied link
    /// seed (see [`Network::connect_seeded`]).
    pub fn connect_host_seeded(
        &self,
        client: HostAddr,
        hostname: &str,
        port: u16,
        link: SeedFork,
    ) -> Result<ClientConn> {
        let ip = self.lookup(hostname)?;
        self.connect_seeded(client, ip, port, link)
    }

    /// Connects `client` to `ip:port`, deriving the link's fault RNG
    /// from the global connection counter. Fine for tests and
    /// single-threaded callers; clients that must stay byte-identical
    /// across parallel schedules use [`Network::connect_seeded`].
    pub fn connect(&self, client: HostAddr, ip: Ipv4Addr, port: u16) -> Result<ClientConn> {
        let world = self.inner.seed;
        self.open(client, ip, port, |conn_id| world.fork_idx("conn", conn_id))
    }

    /// Connects `client` to `ip:port` with a caller-supplied link seed.
    ///
    /// The fault RNG (and the link lineage handed to the server via
    /// [`PeerInfo::link`]) derive from `link` alone, so the verdict
    /// sequence a connection experiences is a pure function of the
    /// caller's seed — independent of how many connections other
    /// threads opened first. This is what keeps chaos runs
    /// byte-identical between sequential and parallel schedules.
    pub fn connect_seeded(
        &self,
        client: HostAddr,
        ip: Ipv4Addr,
        port: u16,
        link: SeedFork,
    ) -> Result<ClientConn> {
        self.open(client, ip, port, |_conn_id| link)
    }

    fn open(
        &self,
        client: HostAddr,
        ip: Ipv4Addr,
        port: u16,
        link_for: impl FnOnce(u64) -> SeedFork,
    ) -> Result<ClientConn> {
        let binding = ServiceBinding { ip, port };
        let factory = {
            let services = self.inner.services.lock();
            match services.get(&binding) {
                Some(f) => Arc::clone(f),
                None => {
                    self.inner.metrics.lock().refused += 1;
                    return Err(Error::Network(format!("connection refused {ip}:{port}")));
                }
            }
        };
        let conn_id = self.inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let link = link_for(conn_id);
        let peer = PeerInfo {
            addr: client,
            opened_at: self.inner.clock.now(),
            link,
        };
        let session = factory.open(peer);
        let fault = self
            .inner
            .service_fault
            .lock()
            .get(&binding)
            .cloned()
            .unwrap_or_else(|| self.inner.default_fault.lock().clone());
        self.inner.metrics.lock().connections += 1;
        Ok(ClientConn {
            conn_id,
            client_ip: client.ip,
            server_ip: ip,
            port,
            session,
            fault,
            rng: link.rng(),
            clock: self.inner.clock.clone(),
            skew: SimDuration::ZERO,
            capture: self.inner.capture.clone(),
            peer,
            out_buf: BytesMut::new(),
            server_residue: RecvBuf::new(),
        })
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> NetMetrics {
        *self.inner.metrics.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AsnId, AsnKind};
    use crate::conn::{ServerIo, Session};
    use iiscope_types::Country;

    struct Upper;
    impl Session for Upper {
        fn on_turn(&mut self, io: &mut ServerIo<'_>) {
            let data = io.recv_all();
            io.send(data.to_ascii_uppercase().as_slice());
        }
    }

    fn client() -> HostAddr {
        HostAddr {
            ip: Ipv4Addr::new(172, 16, 0, 5),
            asn: AsnId(64512),
            asn_kind: AsnKind::Eyeball,
            country: Country::De,
        }
    }

    fn upper_factory() -> Arc<dyn SessionFactory> {
        Arc::new(|_peer: PeerInfo| Box::new(Upper) as Box<dyn Session>)
    }

    #[test]
    fn bind_connect_exchange() {
        let net = Network::new(SeedFork::new(1));
        let ip = Ipv4Addr::new(10, 0, 0, 10);
        net.bind(ip, 443, upper_factory()).unwrap();
        net.register_host("api.fyber.com", ip);
        let mut conn = net.connect_host(client(), "api.fyber.com", 443).unwrap();
        conn.send(b"offers");
        assert_eq!(conn.roundtrip().unwrap(), b"OFFERS");
        assert_eq!(net.metrics().connections, 1);
    }

    #[test]
    fn refused_when_unbound() {
        let net = Network::new(SeedFork::new(1));
        let err = net
            .connect(client(), Ipv4Addr::new(10, 0, 0, 99), 80)
            .unwrap_err();
        assert_eq!(err.kind(), "network");
        assert_eq!(net.metrics().refused, 1);
    }

    #[test]
    fn nxdomain() {
        let net = Network::new(SeedFork::new(1));
        assert!(net.connect_host(client(), "nope.example", 80).is_err());
    }

    #[test]
    fn double_bind_rejected_and_unbind_frees() {
        let net = Network::new(SeedFork::new(1));
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        let b = net.bind(ip, 80, upper_factory()).unwrap();
        assert!(net.bind(ip, 80, upper_factory()).is_err());
        assert!(net.unbind(b));
        assert!(!net.unbind(b));
        net.bind(ip, 80, upper_factory()).unwrap();
    }

    #[test]
    fn per_service_fault_overrides_default() {
        let net = Network::new(SeedFork::new(2));
        let good_ip = Ipv4Addr::new(10, 0, 0, 1);
        let bad_ip = Ipv4Addr::new(10, 0, 0, 2);
        net.bind(good_ip, 80, upper_factory()).unwrap();
        let bad = net.bind(bad_ip, 80, upper_factory()).unwrap();
        net.set_service_fault(bad, FaultPlan::lossy(1.0, 0.0));

        let mut ok = net.connect(client(), good_ip, 80).unwrap();
        ok.send(b"x");
        assert!(ok.roundtrip().is_ok());

        let mut doomed = net.connect(client(), bad_ip, 80).unwrap();
        doomed.send(b"x");
        assert!(doomed.roundtrip().is_err());
    }

    #[test]
    fn connections_are_isolated_sessions() {
        struct Counter(u32);
        impl Session for Counter {
            fn on_turn(&mut self, io: &mut ServerIo<'_>) {
                let _ = io.recv_all();
                self.0 += 1;
                io.send(self.0.to_string().as_bytes());
            }
        }
        let net = Network::new(SeedFork::new(3));
        let ip = Ipv4Addr::new(10, 0, 0, 3);
        net.bind(
            ip,
            80,
            Arc::new(|_p: PeerInfo| Box::new(Counter(0)) as Box<dyn Session>),
        )
        .unwrap();
        let mut a = net.connect(client(), ip, 80).unwrap();
        let mut b = net.connect(client(), ip, 80).unwrap();
        a.send(b".");
        assert_eq!(a.roundtrip().unwrap(), b"1");
        a.send(b".");
        assert_eq!(a.roundtrip().unwrap(), b"2");
        // b has its own session state.
        b.send(b".");
        assert_eq!(b.roundtrip().unwrap(), b"1");
    }

    #[test]
    fn capture_is_shared() {
        let net = Network::new(SeedFork::new(4));
        let ip = Ipv4Addr::new(10, 0, 0, 4);
        net.bind(ip, 8443, upper_factory()).unwrap();
        let mut c = net.connect(client(), ip, 8443).unwrap();
        c.send(b"z");
        c.roundtrip().unwrap();
        assert_eq!(net.capture().for_port(8443).len(), 2);
    }
}
