//! Turn-based duplex connections.
//!
//! A connection joins a client to a per-connection server [`Session`].
//! The client writes bytes and calls [`ClientConn::roundtrip`]; the
//! network applies the link's [`crate::FaultPlan`] to the request,
//! hands the bytes to the session, applies faults to the reply, and
//! returns it. This models a request/response exchange over a
//! reliable-ish transport while staying single-threaded and fully
//! deterministic — exactly what the HTTP and TLS layers in
//! `iiscope-wire` need, and it gives the capture log a faithful view
//! of "what crossed the wire".
//!
//! Latency and timeouts accumulate in a per-connection **skew** over
//! the shared clock rather than advancing the clock itself: each link
//! observes its own local time (`shared now + skew`). On a clean link
//! the skew stays zero, and under faults the cost of drops and stalls
//! stays confined to the connection that suffered them — which is what
//! makes parallel fan-out byte-identical to sequential runs even while
//! faults are firing (no cross-thread clock races).
//!
//! Delivery is zero-copy: each direction materializes the payload into
//! one ref-counted [`Bytes`] slab, and every observer downstream — the
//! capture log, the server session, the TLS decoder — holds a refcount
//! on that same slab instead of copying it. Residue a session leaves
//! unconsumed is carried as whole segments; the common one-request-per-
//! turn case hands the sender's allocation straight to the receiver.

use crate::capture::{CaptureLog, CaptureRecord, Direction};
use crate::clock::Clock;
use crate::fault::{FaultPlan, Verdict};
use crate::HostAddr;
use bytes::{Bytes, BytesMut};
use iiscope_types::{wirestats, Error, Result, SeedFork, SimDuration, SimTime};
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// What a server learns about the connecting client.
///
/// Services in the world use it the way real services do: offer walls
/// geo-target by `addr.country`, the honey-app backend logs `addr`'s
/// /24 block and AS kind, the Play Store rate-limits crawlers by IP.
#[derive(Debug, Clone, Copy)]
pub struct PeerInfo {
    /// Network location of the client.
    pub addr: HostAddr,
    /// Instant the connection was opened.
    pub opened_at: SimTime,
    /// Seed lineage of the connection's link. Sessions that open
    /// further connections on the client's behalf (the MITM proxy's
    /// upstream dials) fork from it so their fault streams derive from
    /// the originating client, not from global connection order.
    pub link: SeedFork,
}

/// Receive-side segment queue: delivered-but-unconsumed bytes, kept as
/// the original delivery slabs so a single-segment take is free.
#[derive(Debug, Default)]
pub(crate) struct RecvBuf {
    segs: VecDeque<Bytes>,
}

impl RecvBuf {
    pub(crate) fn new() -> RecvBuf {
        RecvBuf::default()
    }

    fn len(&self) -> usize {
        self.segs.iter().map(Bytes::len).sum()
    }

    fn push(&mut self, seg: Bytes) {
        if !seg.is_empty() {
            self.segs.push_back(seg);
        }
    }

    /// Takes everything buffered as one contiguous [`Bytes`]. With a
    /// single segment queued — the overwhelmingly common case of one
    /// request per turn — this is the sender's own slab, refcounted.
    fn take_all(&mut self) -> Bytes {
        match self.segs.len() {
            0 => Bytes::new(),
            1 => {
                wirestats::add_buffers_reused(1);
                self.segs.pop_front().unwrap()
            }
            _ => {
                wirestats::add_buffers_coalesced(1);
                let mut joined = Vec::with_capacity(self.len());
                for seg in self.segs.drain(..) {
                    joined.extend_from_slice(&seg);
                }
                Bytes::from(joined)
            }
        }
    }

    /// Linearizes the queue (if needed) and returns a view of it.
    fn contiguous(&mut self) -> &[u8] {
        if self.segs.len() > 1 {
            let all = self.take_all();
            self.segs.push_back(all);
        }
        self.segs.front().map(|b| &b[..]).unwrap_or(&[])
    }
}

/// Server-side I/O surface handed to a [`Session`] on every turn.
pub struct ServerIo<'a> {
    incoming: &'a mut RecvBuf,
    outgoing: &'a mut BytesMut,
    peer: PeerInfo,
    now: SimTime,
}

impl ServerIo<'_> {
    /// Takes every byte delivered so far and not yet consumed, as one
    /// shared slab (zero-copy when the turn delivered a single
    /// segment).
    pub fn recv_all(&mut self) -> Bytes {
        self.incoming.take_all()
    }

    /// Peeks at the delivered-but-unconsumed bytes. Takes `&mut self`
    /// because multiple residue segments must be linearized to present
    /// one slice.
    pub fn peek(&mut self) -> &[u8] {
        self.incoming.contiguous()
    }

    /// Queues reply bytes for the client.
    pub fn send(&mut self, bytes: &[u8]) {
        self.outgoing.extend_from_slice(bytes);
    }

    /// Direct access to the reply buffer, letting encoders (TLS record
    /// sealing, HTTP response writing) build the reply in place instead
    /// of assembling a separate buffer and copying it in via
    /// [`ServerIo::send`].
    pub fn outgoing(&mut self) -> &mut BytesMut {
        self.outgoing
    }

    /// The connecting client's info.
    pub fn peer(&self) -> PeerInfo {
        self.peer
    }

    /// Current simulated time as observed by the server.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// A per-connection server state machine.
pub trait Session: Send {
    /// Invoked once per client round trip with whatever bytes survived
    /// the link. Implementations consume input via
    /// [`ServerIo::recv_all`]/[`ServerIo::peek`] and reply via
    /// [`ServerIo::send`]. Leaving bytes unconsumed carries them into
    /// the next turn (for pipelined or split requests).
    fn on_turn(&mut self, io: &mut ServerIo<'_>);
}

/// Creates a fresh [`Session`] per accepted connection — the listener
/// side of the substrate.
pub trait SessionFactory: Send + Sync {
    /// Accepts a connection from `peer`.
    fn open(&self, peer: PeerInfo) -> Box<dyn Session>;
}

impl<F> SessionFactory for F
where
    F: Fn(PeerInfo) -> Box<dyn Session> + Send + Sync,
{
    fn open(&self, peer: PeerInfo) -> Box<dyn Session> {
        self(peer)
    }
}

/// How long a client waits before declaring a dropped or stalled
/// exchange dead. Charging the timeout to the connection's local time
/// keeps retry loops from being free.
pub const TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// The client end of an established connection.
pub struct ClientConn {
    pub(crate) conn_id: u64,
    pub(crate) client_ip: Ipv4Addr,
    pub(crate) server_ip: Ipv4Addr,
    pub(crate) port: u16,
    pub(crate) session: Box<dyn Session>,
    pub(crate) fault: FaultPlan,
    pub(crate) rng: StdRng,
    pub(crate) clock: Clock,
    pub(crate) skew: SimDuration,
    pub(crate) capture: CaptureLog,
    pub(crate) peer: PeerInfo,
    pub(crate) out_buf: BytesMut,
    pub(crate) server_residue: RecvBuf,
}

impl std::fmt::Debug for ClientConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientConn")
            .field("conn_id", &self.conn_id)
            .field("client_ip", &self.client_ip)
            .field("server_ip", &self.server_ip)
            .field("port", &self.port)
            .finish_non_exhaustive()
    }
}

impl ClientConn {
    /// Queues bytes to be sent on the next [`ClientConn::roundtrip`].
    pub fn send(&mut self, bytes: &[u8]) {
        self.out_buf.extend_from_slice(bytes);
    }

    /// The connection id (stable key into the capture log).
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// The connection's local time: the shared clock plus whatever
    /// latency and timeout skew this link has accumulated. Zero skew
    /// (and thus `== clock.now()`) on a clean link.
    pub fn local_now(&self) -> SimTime {
        self.clock.now() + self.skew
    }

    /// Performs one exchange: delivers queued bytes to the server
    /// session and returns the session's reply bytes. The returned
    /// slab is shared with the capture log, not copied into it.
    ///
    /// Errors with [`Error::Network`] when the fault injector drops or
    /// stalls the request or the reply; the queued request bytes are
    /// consumed either way (retries must re-send, exactly like a real
    /// client re-issuing an HTTP request). A request-direction stall
    /// still delivers to the server — the exchange was *accepted then
    /// never answered*, so server side effects happen and a retry can
    /// legitimately duplicate them.
    pub fn roundtrip(&mut self) -> Result<Bytes> {
        let mut request = self.out_buf.split();
        let now = self.local_now();
        let verdict = self.fault.apply(&mut self.rng, now, &mut request);
        let request_stalled = match verdict {
            Verdict::Dropped(reason) => {
                self.skew = self.skew + TIMEOUT;
                self.record(Direction::ToServer, request.freeze(), true);
                return Err(Error::Network(format!(
                    "request dropped ({reason:?}) conn {}",
                    self.conn_id
                )));
            }
            Verdict::Stalled => true,
            Verdict::Delivered { latency, .. } => {
                self.skew = self.skew + latency;
                false
            }
        };
        let request = request.freeze();
        wirestats::add_bytes_delivered(request.len() as u64);
        self.record(Direction::ToServer, request.clone(), false);

        // Deliver to the server session: the capture record and the
        // session's receive queue share the request slab.
        self.server_residue.push(request);
        let mut outgoing = BytesMut::new();
        let server_now = self.local_now();
        let mut io = ServerIo {
            incoming: &mut self.server_residue,
            outgoing: &mut outgoing,
            peer: self.peer,
            now: server_now,
        };
        self.session.on_turn(&mut io);

        if request_stalled {
            // Accepted-then-never-answered: the server processed the
            // request but its answer never reaches us.
            self.skew = self.skew + TIMEOUT;
            self.record(Direction::ToClient, outgoing.freeze(), true);
            return Err(Error::Network(format!(
                "request stalled conn {}",
                self.conn_id
            )));
        }

        let mut reply = outgoing;
        let now = self.local_now();
        let verdict = self.fault.apply(&mut self.rng, now, &mut reply);
        match verdict {
            Verdict::Dropped(reason) => {
                self.skew = self.skew + TIMEOUT;
                self.record(Direction::ToClient, reply.freeze(), true);
                Err(Error::Network(format!(
                    "reply dropped ({reason:?}) conn {}",
                    self.conn_id
                )))
            }
            Verdict::Stalled => {
                self.skew = self.skew + TIMEOUT;
                self.record(Direction::ToClient, reply.freeze(), true);
                Err(Error::Network(format!(
                    "reply stalled conn {}",
                    self.conn_id
                )))
            }
            Verdict::Delivered { latency, .. } => {
                self.skew = self.skew + latency;
                let reply = reply.freeze();
                wirestats::add_bytes_delivered(reply.len() as u64);
                self.record(Direction::ToClient, reply.clone(), false);
                Ok(reply)
            }
        }
    }

    fn record(&self, dir: Direction, bytes: Bytes, dropped: bool) {
        self.capture.push(CaptureRecord {
            at: self.local_now(),
            conn_id: self.conn_id,
            client: self.client_ip,
            server: self.server_ip,
            port: self.port,
            dir,
            bytes,
            dropped,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AsnId, AsnKind};
    use iiscope_types::{Country, SeedFork};

    /// Echo-with-prefix session used across the tests.
    struct Echo;
    impl Session for Echo {
        fn on_turn(&mut self, io: &mut ServerIo<'_>) {
            let data = io.recv_all();
            io.send(b"echo:");
            io.send(&data);
        }
    }

    fn conn(fault: FaultPlan) -> ClientConn {
        let addr = HostAddr {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            asn: AsnId(1),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        };
        ClientConn {
            conn_id: 1,
            client_ip: addr.ip,
            server_ip: Ipv4Addr::new(10, 9, 9, 9),
            port: 443,
            session: Box::new(Echo),
            fault,
            rng: SeedFork::new(11).rng(),
            clock: Clock::new(),
            skew: SimDuration::ZERO,
            capture: CaptureLog::new(),
            peer: PeerInfo {
                addr,
                opened_at: SimTime::EPOCH,
                link: SeedFork::new(11),
            },
            out_buf: BytesMut::new(),
            server_residue: RecvBuf::new(),
        }
    }

    #[test]
    fn echo_roundtrip() {
        let mut c = conn(FaultPlan::perfect());
        c.send(b"hello");
        assert_eq!(c.roundtrip().unwrap(), b"echo:hello");
        // Second turn with separate payload.
        c.send(b"again");
        assert_eq!(c.roundtrip().unwrap(), b"echo:again");
    }

    #[test]
    fn capture_sees_both_directions() {
        let mut c = conn(FaultPlan::perfect());
        c.send(b"xy");
        c.roundtrip().unwrap();
        let log = c.capture.snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].dir, Direction::ToServer);
        assert_eq!(log[0].bytes, b"xy");
        assert_eq!(log[1].dir, Direction::ToClient);
        assert_eq!(log[1].bytes, b"echo:xy");
    }

    #[test]
    fn capture_shares_the_delivery_slab() {
        let mut c = conn(FaultPlan::perfect());
        c.send(b"shared?");
        let reply = c.roundtrip().unwrap();
        let log = c.capture.snapshot();
        assert!(
            log[1].bytes.shares_allocation(&reply),
            "reply capture must alias the delivered slab"
        );
    }

    #[test]
    fn drop_advances_local_time_and_errors() {
        let mut c = conn(FaultPlan::lossy(1.0, 0.0));
        c.send(b"doomed");
        let before = c.local_now();
        let err = c.roundtrip().unwrap_err();
        assert_eq!(err.kind(), "network");
        assert_eq!(c.local_now() - before, TIMEOUT);
        // The shared clock is untouched: fault cost is link-local.
        assert_eq!(c.clock.now(), SimTime::EPOCH);
        // Queued bytes were consumed; a bare retry sends nothing.
        assert!(c.out_buf.is_empty());
    }

    #[test]
    fn latency_advances_local_time_per_direction() {
        let fault = FaultPlan::perfect().with_latency(SimDuration::from_secs(2), SimDuration::ZERO);
        let mut c = conn(fault);
        c.send(b"p");
        let t0 = c.local_now();
        c.roundtrip().unwrap();
        assert_eq!(c.local_now() - t0, SimDuration::from_secs(4)); // 2 each way
        assert_eq!(c.clock.now(), SimTime::EPOCH);
    }

    #[test]
    fn stalled_request_still_reaches_the_server() {
        /// Counts turns so the test can observe the server-side effect
        /// of an exchange the client saw fail.
        struct CountTurns(std::sync::Arc<std::sync::atomic::AtomicU32>);
        impl Session for CountTurns {
            fn on_turn(&mut self, io: &mut ServerIo<'_>) {
                let _ = io.recv_all();
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                io.send(b"never-seen");
            }
        }
        let turns = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut c = conn(FaultPlan::perfect().with_stall(1.0));
        c.session = Box::new(CountTurns(std::sync::Arc::clone(&turns)));
        c.send(b"accepted");
        let before = c.local_now();
        let err = c.roundtrip().unwrap_err();
        assert_eq!(err.kind(), "network");
        assert!(err.to_string().contains("stalled"));
        // The server processed the request even though the client
        // never got an answer — the duplicate-on-retry hazard.
        assert_eq!(turns.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(c.local_now() - before, TIMEOUT);
        // The undelivered reply is captured as dropped.
        let log = c.capture.snapshot();
        assert_eq!(log.len(), 2);
        assert!(!log[0].dropped);
        assert!(log[1].dropped);
    }

    /// A session that buffers input until it has seen a full 4-byte
    /// "message", demonstrating residue carry-over between turns.
    struct Accumulate;
    impl Session for Accumulate {
        fn on_turn(&mut self, io: &mut ServerIo<'_>) {
            if io.peek().len() >= 4 {
                let data = io.recv_all();
                io.send(&data);
            }
        }
    }

    #[test]
    fn residue_carries_across_turns() {
        let mut c = conn(FaultPlan::perfect());
        c.session = Box::new(Accumulate);
        c.send(b"ab");
        assert_eq!(c.roundtrip().unwrap(), b"");
        c.send(b"cd");
        assert_eq!(c.roundtrip().unwrap(), b"abcd");
    }

    #[test]
    fn server_sees_peer_info() {
        struct PeerReporter;
        impl Session for PeerReporter {
            fn on_turn(&mut self, io: &mut ServerIo<'_>) {
                let _ = io.recv_all();
                let c = io.peer().addr.country;
                io.send(c.code().as_bytes());
            }
        }
        let mut c = conn(FaultPlan::perfect());
        c.session = Box::new(PeerReporter);
        c.send(b"?");
        assert_eq!(c.roundtrip().unwrap(), b"US");
    }
}
