//! Traffic capture — the substrate's pcap equivalent.
//!
//! The monitoring infrastructure of §4.1 works by *interception*: the
//! proxy records what crossed the wire and higher layers parse the
//! captured bodies. The network appends one [`CaptureRecord`] per
//! delivered (or dropped) segment; tests and the monitor use the log to
//! assert on traffic shape, and the TLS layer demonstrates that
//! captured ciphertext alone is useless without the MITM key position.

use bytes::Bytes;
use iiscope_types::SimTime;
use parking_lot::Mutex;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Direction of a captured segment, relative to the connection's
/// initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    ToServer,
    /// Server → client.
    ToClient,
}

/// One captured delivery.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    /// Capture timestamp (after latency was applied).
    pub at: SimTime,
    /// Connection id the segment belongs to.
    pub conn_id: u64,
    /// Client address of the connection.
    pub client: Ipv4Addr,
    /// Server address of the connection.
    pub server: Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Segment direction.
    pub dir: Direction,
    /// Raw bytes as seen on the wire (ciphertext when TLS is in use).
    /// A refcounted view of the delivery slab — recording a segment
    /// does not copy it.
    pub bytes: Bytes,
    /// Whether the fault injector dropped this segment (bytes then hold
    /// the would-have-been payload, mirroring smoltcp's "dropped packets
    /// still get traced" behaviour).
    pub dropped: bool,
}

/// Shared, append-only capture log.
#[derive(Debug, Clone, Default)]
pub struct CaptureLog {
    inner: Arc<Mutex<Vec<CaptureRecord>>>,
    disabled: Arc<std::sync::atomic::AtomicBool>,
}

impl CaptureLog {
    /// Creates an empty log.
    pub fn new() -> CaptureLog {
        CaptureLog::default()
    }

    /// Turns recording on or off. Long simulation runs disable capture
    /// to keep memory bounded (a paper-scale milking study would hoard
    /// hundreds of megabytes of ciphertext otherwise); tests that
    /// assert on traffic leave it on.
    pub fn set_enabled(&self, enabled: bool) {
        self.disabled
            .store(!enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Appends a record (no-op while disabled).
    pub fn push(&self, rec: CaptureRecord) {
        if self.disabled.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        self.inner.lock().push(rec);
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshot of all records (cloned; the log keeps growing).
    pub fn snapshot(&self) -> Vec<CaptureRecord> {
        self.inner.lock().clone()
    }

    /// Snapshot filtered by server port (e.g. just the offer-wall
    /// traffic).
    pub fn for_port(&self, port: u16) -> Vec<CaptureRecord> {
        self.inner
            .lock()
            .iter()
            .filter(|r| r.port == port)
            .cloned()
            .collect()
    }

    /// Total delivered payload bytes in each direction.
    pub fn byte_totals(&self) -> (usize, usize) {
        let log = self.inner.lock();
        let mut to_server = 0;
        let mut to_client = 0;
        for r in log.iter().filter(|r| !r.dropped) {
            match r.dir {
                Direction::ToServer => to_server += r.bytes.len(),
                Direction::ToClient => to_client += r.bytes.len(),
            }
        }
        (to_server, to_client)
    }

    /// Clears the log (between experiment phases).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(port: u16, dir: Direction, n: usize, dropped: bool) -> CaptureRecord {
        CaptureRecord {
            at: SimTime::EPOCH,
            conn_id: 1,
            client: Ipv4Addr::new(10, 0, 0, 1),
            server: Ipv4Addr::new(10, 0, 0, 2),
            port,
            dir,
            bytes: vec![0; n].into(),
            dropped,
        }
    }

    #[test]
    fn totals_skip_dropped() {
        let log = CaptureLog::new();
        log.push(rec(443, Direction::ToServer, 10, false));
        log.push(rec(443, Direction::ToClient, 20, false));
        log.push(rec(443, Direction::ToClient, 99, true));
        assert_eq!(log.byte_totals(), (10, 20));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn port_filter() {
        let log = CaptureLog::new();
        log.push(rec(443, Direction::ToServer, 1, false));
        log.push(rec(8080, Direction::ToServer, 1, false));
        assert_eq!(log.for_port(443).len(), 1);
        assert_eq!(log.for_port(8080).len(), 1);
        assert_eq!(log.for_port(22).len(), 0);
    }

    #[test]
    fn shared_handles_observe_each_other() {
        let log = CaptureLog::new();
        let other = log.clone();
        log.push(rec(1, Direction::ToServer, 1, false));
        assert_eq!(other.len(), 1);
        other.clear();
        assert!(log.is_empty());
    }
}
