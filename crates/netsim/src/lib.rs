//! # iiscope-netsim
//!
//! A deterministic, in-memory network substrate for the iiscope world.
//!
//! The paper's measurement pipeline is network-borne end to end: the
//! honey app uploads telemetry over encrypted channels (§3.1), the
//! monitoring infrastructure intercepts offer-wall TLS traffic through a
//! proxy (§4.1, Figure 3), milkers egress through datacenter VPN proxies
//! in eight countries, and §3.2's forensics hinge on *where* installs
//! connect from (eyeball vs cloud ASNs, shared /24 blocks). This crate
//! provides exactly that playing field:
//!
//! * [`addr`] — ASNs (eyeball / datacenter / VPN-exit), /24 block
//!   allocation, and per-host IPv4 assignment.
//! * [`clock`] — a shared simulated clock; connection latency advances
//!   it deterministically.
//! * [`fault`] — deterministic fault injection: memoryless drop and
//!   corruption chances, Gilbert–Elliott bursty loss, scheduled outage
//!   windows, stalls, truncation/garbage payloads, bandwidth caps and
//!   a latency model — every decision drawn from the per-link seeded
//!   RNG so failures replay from `(seed, plan)`.
//! * [`frame`] — length-delimited framing over [`bytes`], the base
//!   codec under the wire protocols in `iiscope-wire`.
//! * [`conn`] — turn-based duplex connections: a client writes bytes,
//!   calls `roundtrip()`, the registered per-connection session handler
//!   consumes them and writes a reply. Request/response protocols map
//!   onto this 1:1 while staying single-threaded and deterministic.
//! * [`network`] — the service registry (hostname → IP, (IP, port) →
//!   service factory), connection establishment with [`PeerInfo`], and
//!   the packet [`capture`] log.
//!
//! Following the guidance for CPU-bound simulation work, everything is
//! synchronous; parallel fan-out (when used by upper layers) goes
//! through scoped threads, never an async runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod capture;
pub mod clock;
pub mod conn;
pub mod fault;
pub mod frame;
pub mod network;

pub use addr::{AsnId, AsnKind, AsnRegistry, Block24, HostAddr};
pub use capture::{CaptureLog, CaptureRecord, Direction};
pub use clock::Clock;
pub use conn::{ClientConn, PeerInfo, ServerIo, Session, SessionFactory, TIMEOUT};
pub use fault::{DropReason, FaultPlan, GilbertElliott, OutageWindow, Verdict};
pub use frame::{encode_frame, FrameDecoder, FrameError};
pub use network::{Network, ServiceBinding};
