//! Addressing: autonomous systems, /24 blocks, host addresses.
//!
//! §3.2's install forensics are built on addressing facts:
//!
//! * "7 of the devices that install our honey app … connect from ASNs of
//!   popular cloud services (e.g., Digital Ocean) when eyeball ASNs
//!   would be expected" — so ASNs carry a [`AsnKind`].
//! * "we record 20 installs from different devices behind the same /24
//!   block" — so the honey app reports the [`Block24`] of the public
//!   IPv4, and device farms share one.
//! * the milkers egress "using datacenter VPN proxies offered by
//!   luminati.io" — [`AsnKind::VpnExit`] with a country.

use iiscope_types::Country;
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsnId(pub u32);

impl fmt::Display for AsnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The operational class of an autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsnKind {
    /// Residential / mobile access network — what genuine users
    /// connect from.
    Eyeball,
    /// Cloud / hosting provider (Digital Ocean et al.) — a bot signal
    /// when seen on an "end user" install (§3.2).
    Datacenter,
    /// Datacenter VPN exit used by the monitoring milkers (§4.1).
    VpnExit,
}

/// A /24 IPv4 block. The honey app truncates the last octet of the
/// public address before upload ("we drop the last octet of the IPv4
/// address", §3.1 Ethics), so /24 is the resolution of every
/// address-based analysis in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block24(u32);

impl Block24 {
    /// The block containing `addr`.
    pub fn containing(addr: Ipv4Addr) -> Block24 {
        Block24(u32::from(addr) & 0xFFFF_FF00)
    }

    /// The `i`-th host address inside the block (i in 1..=254;
    /// .0 and .255 are reserved).
    pub fn host(self, i: u8) -> Ipv4Addr {
        debug_assert!((1..=254).contains(&i), "host index out of range");
        Ipv4Addr::from(self.0 | u32::from(i))
    }

    /// Network address of the block (x.y.z.0).
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0)
    }
}

impl fmt::Display for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// A fully-resolved network location of a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostAddr {
    /// The concrete IPv4 address.
    pub ip: Ipv4Addr,
    /// Origin AS of the address.
    pub asn: AsnId,
    /// Operational class of the origin AS.
    pub asn_kind: AsnKind,
    /// Geolocation of the address.
    pub country: Country,
}

impl HostAddr {
    /// The /24 block of the address — the granularity the honey app
    /// reports upstream.
    pub fn block(&self) -> Block24 {
        Block24::containing(self.ip)
    }
}

/// Descriptor of one simulated AS.
#[derive(Debug, Clone)]
pub struct AsnRecord {
    /// The AS number.
    pub id: AsnId,
    /// Human-readable operator name ("Comcast", "Digital Ocean", …).
    pub name: String,
    /// Operational class.
    pub kind: AsnKind,
    /// Country the AS serves.
    pub country: Country,
}

/// Registry of ASNs and allocator of /24 blocks and host addresses.
///
/// Allocation is strictly sequential and therefore deterministic: the
/// n-th block requested from a given registry is always the same,
/// regardless of what other subsystems do.
#[derive(Debug, Default)]
pub struct AsnRegistry {
    records: Vec<AsnRecord>,
    by_id: BTreeMap<u32, usize>,
    /// Next /24 index per ASN (blocks are carved out of a per-ASN /8-ish
    /// space derived from the ASN id).
    next_block: BTreeMap<u32, u32>,
    /// Next host index per allocated block.
    next_host: BTreeMap<Block24, u8>,
}

impl AsnRegistry {
    /// Creates an empty registry.
    pub fn new() -> AsnRegistry {
        AsnRegistry::default()
    }

    /// Registers an AS. Returns an error if the id is already taken.
    pub fn register(
        &mut self,
        id: AsnId,
        name: impl Into<String>,
        kind: AsnKind,
        country: Country,
    ) -> iiscope_types::Result<()> {
        if self.by_id.contains_key(&id.0) {
            return Err(iiscope_types::Error::InvalidState(format!(
                "{id} already registered"
            )));
        }
        self.by_id.insert(id.0, self.records.len());
        self.records.push(AsnRecord {
            id,
            name: name.into(),
            kind,
            country,
        });
        self.next_block.insert(id.0, 0);
        Ok(())
    }

    /// Looks up an AS record.
    pub fn get(&self, id: AsnId) -> Option<&AsnRecord> {
        self.by_id.get(&id.0).map(|i| &self.records[*i])
    }

    /// Iterates over all registered ASes.
    pub fn iter(&self) -> impl Iterator<Item = &AsnRecord> {
        self.records.iter()
    }

    /// Allocates a fresh /24 inside the given AS.
    ///
    /// Address plan: the AS with id `a` owns `10.(a % 256).x.0/24` …
    /// carved from a synthetic space `(a * 4096 + block_index) << 8`,
    /// guaranteeing no two ASes ever share a block (up to 4096 blocks
    /// per AS — far beyond anything the study needs).
    pub fn alloc_block(&mut self, id: AsnId) -> iiscope_types::Result<Block24> {
        let next = self
            .next_block
            .get_mut(&id.0)
            .ok_or_else(|| iiscope_types::Error::NotFound(id.to_string()))?;
        if *next >= 4096 {
            return Err(iiscope_types::Error::InvalidState(format!(
                "{id} exhausted its block space"
            )));
        }
        let prefix = (id.0 * 4096 + *next) << 8;
        *next += 1;
        let block = Block24(prefix);
        self.next_host.insert(block, 1);
        Ok(block)
    }

    /// Allocates a host address inside a previously allocated block.
    pub fn alloc_host(&mut self, id: AsnId, block: Block24) -> iiscope_types::Result<HostAddr> {
        let record = self
            .get(id)
            .ok_or_else(|| iiscope_types::Error::NotFound(id.to_string()))?
            .clone();
        let next = self
            .next_host
            .get_mut(&block)
            .ok_or_else(|| iiscope_types::Error::NotFound(block.to_string()))?;
        if *next > 254 {
            return Err(iiscope_types::Error::InvalidState(format!(
                "{block} is full"
            )));
        }
        let ip = block.host(*next);
        *next += 1;
        Ok(HostAddr {
            ip,
            asn: id,
            asn_kind: record.kind,
            country: record.country,
        })
    }

    /// Convenience: allocates a fresh block *and* a first host in it.
    pub fn alloc_host_fresh_block(&mut self, id: AsnId) -> iiscope_types::Result<HostAddr> {
        let block = self.alloc_block(id)?;
        self.alloc_host(id, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> AsnRegistry {
        let mut r = AsnRegistry::new();
        r.register(AsnId(7922), "Comcast", AsnKind::Eyeball, Country::Us)
            .unwrap();
        r.register(
            AsnId(14061),
            "Digital Ocean",
            AsnKind::Datacenter,
            Country::Us,
        )
        .unwrap();
        r.register(AsnId(9009), "Luminati DE", AsnKind::VpnExit, Country::De)
            .unwrap();
        r
    }

    #[test]
    fn register_rejects_duplicates() {
        let mut r = registry();
        assert!(r
            .register(AsnId(7922), "dup", AsnKind::Eyeball, Country::Us)
            .is_err());
    }

    #[test]
    fn blocks_are_disjoint_across_asns() {
        let mut r = registry();
        let b1 = r.alloc_block(AsnId(7922)).unwrap();
        let b2 = r.alloc_block(AsnId(14061)).unwrap();
        let b3 = r.alloc_block(AsnId(7922)).unwrap();
        assert_ne!(b1, b2);
        assert_ne!(b1, b3);
        assert_ne!(b2, b3);
    }

    #[test]
    fn hosts_share_block_prefix() {
        let mut r = registry();
        let block = r.alloc_block(AsnId(7922)).unwrap();
        let h1 = r.alloc_host(AsnId(7922), block).unwrap();
        let h2 = r.alloc_host(AsnId(7922), block).unwrap();
        assert_ne!(h1.ip, h2.ip);
        assert_eq!(h1.block(), h2.block());
        assert_eq!(h1.block(), block);
        assert_eq!(h1.asn_kind, AsnKind::Eyeball);
        assert_eq!(h1.country, Country::Us);
    }

    #[test]
    fn block_exhaustion_is_detected() {
        let mut r = registry();
        let block = r.alloc_block(AsnId(9009)).unwrap();
        for _ in 0..254 {
            r.alloc_host(AsnId(9009), block).unwrap();
        }
        assert!(r.alloc_host(AsnId(9009), block).is_err());
    }

    #[test]
    fn block24_math() {
        let b = Block24::containing(Ipv4Addr::new(10, 1, 2, 200));
        assert_eq!(b.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(b.host(7), Ipv4Addr::new(10, 1, 2, 7));
        assert_eq!(b.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn allocation_is_deterministic() {
        let mut a = registry();
        let mut b = registry();
        for _ in 0..10 {
            assert_eq!(
                a.alloc_host_fresh_block(AsnId(14061)).unwrap(),
                b.alloc_host_fresh_block(AsnId(14061)).unwrap()
            );
        }
    }

    #[test]
    fn unknown_asn_errors() {
        let mut r = registry();
        assert!(r.alloc_block(AsnId(1)).is_err());
        let block = r.alloc_block(AsnId(7922)).unwrap();
        assert!(r.alloc_host(AsnId(1), block).is_err());
    }
}
