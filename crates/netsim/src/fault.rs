//! Fault injection for the simulated network.
//!
//! Modelled on smoltcp's example fault injectors: a drop chance, a
//! corruption chance (one flipped octet), a size limit, and a latency
//! model. The TLS layer in `iiscope-wire` authenticates records, so an
//! injected corruption surfaces exactly like real-world tampering — as
//! a MAC failure — which the monitoring pipeline must tolerate.

use iiscope_types::SimDuration;
use rand::Rng;

/// Per-link fault and latency plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability that a delivery attempt is dropped entirely.
    pub drop_chance: f64,
    /// Probability that one octet of a delivered payload is flipped.
    pub corrupt_chance: f64,
    /// Deliveries larger than this are dropped (None = unlimited).
    pub size_limit: Option<usize>,
    /// Base one-way latency.
    pub base_latency: SimDuration,
    /// Max uniform extra jitter added on top of the base latency.
    pub jitter: SimDuration,
}

impl Default for FaultPlan {
    /// A well-behaved link: no faults, 40 ms-class latency rounded to
    /// the 1-second clock resolution (i.e. zero), so tests that don't
    /// care about time see a still clock.
    fn default() -> FaultPlan {
        FaultPlan {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            size_limit: None,
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A perfect link (alias of [`FaultPlan::default`]).
    pub fn perfect() -> FaultPlan {
        FaultPlan::default()
    }

    /// A lossy link with the given drop and corruption chances.
    pub fn lossy(drop_chance: f64, corrupt_chance: f64) -> FaultPlan {
        FaultPlan {
            drop_chance,
            corrupt_chance,
            ..FaultPlan::default()
        }
    }

    /// A link with fixed latency and uniform jitter.
    pub fn with_latency(mut self, base: SimDuration, jitter: SimDuration) -> FaultPlan {
        self.base_latency = base;
        self.jitter = jitter;
        self
    }

    /// Sets a maximum delivery size.
    pub fn with_size_limit(mut self, limit: usize) -> FaultPlan {
        self.size_limit = Some(limit);
        self
    }

    /// Decides the fate of one delivery. Mutates `payload` in place on
    /// corruption and returns the verdict.
    pub fn apply(&self, rng: &mut impl Rng, payload: &mut [u8]) -> Verdict {
        if let Some(limit) = self.size_limit {
            if payload.len() > limit {
                return Verdict::Dropped(DropReason::TooLarge);
            }
        }
        if iiscope_types::rng::chance(rng, self.drop_chance) {
            return Verdict::Dropped(DropReason::Random);
        }
        let mut corrupted = false;
        if !payload.is_empty() && iiscope_types::rng::chance(rng, self.corrupt_chance) {
            let idx = rng.gen_range(0..payload.len());
            let bit = 1u8 << rng.gen_range(0..8);
            payload[idx] ^= bit;
            corrupted = true;
        }
        Verdict::Delivered {
            corrupted,
            latency: self.sample_latency(rng),
        }
    }

    /// Samples a one-way latency for this link.
    pub fn sample_latency(&self, rng: &mut impl Rng) -> SimDuration {
        let jitter = if self.jitter.secs() == 0 {
            0
        } else {
            rng.gen_range(0..=self.jitter.secs())
        };
        SimDuration::from_secs(self.base_latency.secs() + jitter)
    }
}

/// Why a delivery was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss.
    Random,
    /// Payload exceeded the link's size limit.
    TooLarge,
}

/// Outcome of one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The payload was (possibly corrupted and) delivered after
    /// `latency`.
    Delivered {
        /// Whether a corruption fault fired.
        corrupted: bool,
        /// Sampled one-way latency.
        latency: SimDuration,
    },
    /// The payload was dropped.
    Dropped(DropReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_types::SeedFork;

    #[test]
    fn perfect_link_never_mutates() {
        let plan = FaultPlan::perfect();
        let mut rng = SeedFork::new(1).rng();
        for _ in 0..100 {
            let mut payload = vec![1, 2, 3];
            match plan.apply(&mut rng, &mut payload) {
                Verdict::Delivered { corrupted, latency } => {
                    assert!(!corrupted);
                    assert_eq!(latency, SimDuration::ZERO);
                    assert_eq!(payload, vec![1, 2, 3]);
                }
                v => panic!("unexpected {v:?}"),
            }
        }
    }

    #[test]
    fn drop_chance_roughly_honoured() {
        let plan = FaultPlan::lossy(0.3, 0.0);
        let mut rng = SeedFork::new(2).rng();
        let n = 10_000;
        let drops = (0..n)
            .filter(|_| {
                matches!(
                    plan.apply(&mut rng, &mut [0u8; 4]),
                    Verdict::Dropped(DropReason::Random)
                )
            })
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let plan = FaultPlan::lossy(0.0, 1.0);
        let mut rng = SeedFork::new(3).rng();
        let original = vec![0xAAu8; 16];
        let mut payload = original.clone();
        match plan.apply(&mut rng, &mut payload) {
            Verdict::Delivered { corrupted, .. } => assert!(corrupted),
            v => panic!("unexpected {v:?}"),
        }
        let flipped_bits: u32 = original
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped_bits, 1);
    }

    #[test]
    fn size_limit_drops_large_payloads() {
        let plan = FaultPlan::perfect().with_size_limit(8);
        let mut rng = SeedFork::new(4).rng();
        let mut small = vec![0u8; 8];
        let mut big = vec![0u8; 9];
        assert!(matches!(
            plan.apply(&mut rng, &mut small),
            Verdict::Delivered { .. }
        ));
        assert_eq!(
            plan.apply(&mut rng, &mut big),
            Verdict::Dropped(DropReason::TooLarge)
        );
    }

    #[test]
    fn latency_within_bounds() {
        let plan =
            FaultPlan::perfect().with_latency(SimDuration::from_secs(2), SimDuration::from_secs(3));
        let mut rng = SeedFork::new(5).rng();
        for _ in 0..200 {
            let l = plan.sample_latency(&mut rng).secs();
            assert!((2..=5).contains(&l), "latency {l}");
        }
    }

    #[test]
    fn empty_payload_never_corrupts() {
        let plan = FaultPlan::lossy(0.0, 1.0);
        let mut rng = SeedFork::new(6).rng();
        let mut payload = Vec::new();
        match plan.apply(&mut rng, &mut payload) {
            Verdict::Delivered { corrupted, .. } => assert!(!corrupted),
            v => panic!("unexpected {v:?}"),
        }
    }
}
