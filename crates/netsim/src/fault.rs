//! Fault injection for the simulated network.
//!
//! Grown from smoltcp-style memoryless coin flips into schedulable
//! adversarial plans. A [`FaultPlan`] can model:
//!
//! * memoryless loss and one-octet corruption (the original knobs);
//! * **bursty loss** via a two-state [`GilbertElliott`] channel — the
//!   classic model for the correlated drop trains real mobile links
//!   exhibit;
//! * **outage windows** ([`OutageWindow`]) — scheduled partitions
//!   during which the link delivers nothing, keyed on simulated time;
//! * **stalls** — the link accepts a payload and then never answers
//!   (the accepted-then-never-answered failure of flaky proxies);
//! * **truncation** and **garbage** injection — payloads cut mid-stream
//!   or overwritten below the TLS layer;
//! * a **bandwidth cap** that converts payload size into extra latency.
//!
//! Every probabilistic decision draws from the per-link seeded RNG the
//! caller passes in, so any failure reproduces exactly from
//! `(seed, plan)`. Features that are disabled consume **no** RNG draws:
//! a plan with only the original knobs set produces the identical draw
//! sequence the pre-chaos injector did, which keeps clean-network runs
//! byte-for-byte stable. The TLS layer in `iiscope-wire` authenticates
//! records, so injected damage surfaces exactly like real-world
//! tampering — as a MAC failure — which the pipeline must tolerate.

use iiscope_types::{chaosstats, SimDuration, SimTime};
use rand::Rng;

/// Two-state Gilbert–Elliott loss channel: a `good` state with low
/// loss and a `bad` (burst) state with high loss, with per-delivery
/// transition probabilities between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    p_enter: f64,
    p_exit: f64,
    loss_good: f64,
    loss_bad: f64,
    bad: bool,
}

impl GilbertElliott {
    /// Creates a channel starting in the good state. All four rates are
    /// clamped into `[0, 1]`, so a plan built from arbitrary inputs is
    /// always a valid probability model.
    pub fn new(p_enter: f64, p_exit: f64, loss_good: f64, loss_bad: f64) -> GilbertElliott {
        GilbertElliott {
            p_enter: p_enter.clamp(0.0, 1.0),
            p_exit: p_exit.clamp(0.0, 1.0),
            loss_good: loss_good.clamp(0.0, 1.0),
            loss_bad: loss_bad.clamp(0.0, 1.0),
            bad: false,
        }
    }

    /// Probability of entering the burst state per delivery.
    pub fn p_enter(&self) -> f64 {
        self.p_enter
    }

    /// Probability of leaving the burst state per delivery.
    pub fn p_exit(&self) -> f64 {
        self.p_exit
    }

    /// Loss rate while in the good state.
    pub fn loss_good(&self) -> f64 {
        self.loss_good
    }

    /// Loss rate while in the burst state.
    pub fn loss_bad(&self) -> f64 {
        self.loss_bad
    }

    /// Whether the channel is currently bursting.
    pub fn is_bursting(&self) -> bool {
        self.bad
    }

    /// Advances the channel one delivery and returns whether that
    /// delivery is lost. Always exactly two RNG draws.
    fn step(&mut self, rng: &mut impl Rng) -> bool {
        let flip = if self.bad { self.p_exit } else { self.p_enter };
        if iiscope_types::rng::chance(rng, flip) {
            self.bad = !self.bad;
        }
        let loss = if self.bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        iiscope_types::rng::chance(rng, loss)
    }
}

/// A scheduled link outage: nothing is delivered while the link-local
/// time is within `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First instant of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

impl OutageWindow {
    /// Creates a window covering `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> OutageWindow {
        OutageWindow { from, until }
    }

    /// Whether `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// Per-link fault and latency plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability that a delivery attempt is dropped entirely.
    pub drop_chance: f64,
    /// Probability that one octet of a delivered payload is flipped.
    pub corrupt_chance: f64,
    /// Probability that a delivered payload is truncated mid-stream.
    pub truncate_chance: f64,
    /// Probability that a delivered payload is overwritten with
    /// RNG garbage.
    pub garbage_chance: f64,
    /// Probability that the link accepts the payload and then never
    /// answers (the exchange times out after side effects happened).
    pub stall_chance: f64,
    /// Deliveries larger than this are dropped (None = unlimited).
    pub size_limit: Option<usize>,
    /// Bandwidth cap in bytes per simulated second: payload size adds
    /// `ceil(len / bandwidth)` seconds of latency (None = unlimited).
    pub bandwidth: Option<u64>,
    /// Bursty-loss channel (None = memoryless only).
    pub burst: Option<GilbertElliott>,
    /// Scheduled outage windows, checked against link-local time.
    pub outages: Vec<OutageWindow>,
    /// Base one-way latency.
    pub base_latency: SimDuration,
    /// Max uniform extra jitter added on top of the base latency.
    pub jitter: SimDuration,
}

impl Default for FaultPlan {
    /// A well-behaved link: no faults, 40 ms-class latency rounded to
    /// the 1-second clock resolution (i.e. zero), so tests that don't
    /// care about time see a still clock.
    fn default() -> FaultPlan {
        FaultPlan {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            truncate_chance: 0.0,
            garbage_chance: 0.0,
            stall_chance: 0.0,
            size_limit: None,
            bandwidth: None,
            burst: None,
            outages: Vec::new(),
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A perfect link (alias of [`FaultPlan::default`]).
    pub fn perfect() -> FaultPlan {
        FaultPlan::default()
    }

    /// A lossy link with the given drop and corruption chances.
    pub fn lossy(drop_chance: f64, corrupt_chance: f64) -> FaultPlan {
        FaultPlan {
            drop_chance,
            corrupt_chance,
            ..FaultPlan::default()
        }
    }

    /// A link with fixed latency and uniform jitter.
    pub fn with_latency(mut self, base: SimDuration, jitter: SimDuration) -> FaultPlan {
        self.base_latency = base;
        self.jitter = jitter;
        self
    }

    /// Sets a maximum delivery size.
    pub fn with_size_limit(mut self, limit: usize) -> FaultPlan {
        self.size_limit = Some(limit);
        self
    }

    /// Adds a Gilbert–Elliott bursty-loss channel.
    pub fn with_burst(mut self, burst: GilbertElliott) -> FaultPlan {
        self.burst = Some(burst);
        self
    }

    /// Schedules an outage window (may be called repeatedly).
    pub fn with_outage(mut self, window: OutageWindow) -> FaultPlan {
        self.outages.push(window);
        self
    }

    /// Sets the stall probability.
    pub fn with_stall(mut self, chance: f64) -> FaultPlan {
        self.stall_chance = chance;
        self
    }

    /// Sets the mid-stream truncation probability.
    pub fn with_truncation(mut self, chance: f64) -> FaultPlan {
        self.truncate_chance = chance;
        self
    }

    /// Sets the garbage-overwrite probability.
    pub fn with_garbage(mut self, chance: f64) -> FaultPlan {
        self.garbage_chance = chance;
        self
    }

    /// Caps the link at `bytes_per_sec` (slow-link model).
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> FaultPlan {
        self.bandwidth = Some(bytes_per_sec.max(1));
        self
    }

    /// Decides the fate of one delivery at link-local time `now`.
    /// Mutates `payload` in place on damage and returns the verdict.
    ///
    /// `&mut self` because the burst channel carries state between
    /// deliveries; each connection owns a clone of the plan, so burst
    /// state is per-link. Disabled features consume no RNG draws — a
    /// plan using only drop/corrupt produces the legacy draw sequence.
    pub fn apply(
        &mut self,
        rng: &mut impl Rng,
        now: SimTime,
        payload: &mut bytes::BytesMut,
    ) -> Verdict {
        if self.outages.iter().any(|w| w.contains(now)) {
            chaosstats::add_drops_outage(1);
            return Verdict::Dropped(DropReason::Outage);
        }
        if let Some(limit) = self.size_limit {
            if payload.len() > limit {
                chaosstats::add_drops_oversize(1);
                return Verdict::Dropped(DropReason::TooLarge);
            }
        }
        if iiscope_types::rng::chance(rng, self.drop_chance) {
            chaosstats::add_drops_random(1);
            return Verdict::Dropped(DropReason::Random);
        }
        if let Some(burst) = &mut self.burst {
            if burst.step(rng) {
                chaosstats::add_drops_burst(1);
                return Verdict::Dropped(DropReason::Burst);
            }
        }
        let mut corrupted = false;
        if !payload.is_empty() && iiscope_types::rng::chance(rng, self.corrupt_chance) {
            let idx = rng.gen_range(0..payload.len());
            let bit = 1u8 << rng.gen_range(0..8);
            payload[idx] ^= bit;
            corrupted = true;
            chaosstats::add_corruptions(1);
        }
        if self.truncate_chance > 0.0
            && payload.len() > 1
            && iiscope_types::rng::chance(rng, self.truncate_chance)
        {
            let keep = rng.gen_range(1..payload.len());
            payload.truncate(keep);
            corrupted = true;
            chaosstats::add_truncations(1);
        }
        if self.garbage_chance > 0.0
            && !payload.is_empty()
            && iiscope_types::rng::chance(rng, self.garbage_chance)
        {
            rng.fill(&mut payload[..]);
            corrupted = true;
            chaosstats::add_garbage(1);
        }
        if self.stall_chance > 0.0 && iiscope_types::rng::chance(rng, self.stall_chance) {
            chaosstats::add_stalls(1);
            return Verdict::Stalled;
        }
        let latency = self.delivery_latency(rng, payload.len());
        Verdict::Delivered { corrupted, latency }
    }

    /// Samples a one-way latency for this link (propagation only; the
    /// bandwidth term is added per delivery by [`FaultPlan::apply`]).
    pub fn sample_latency(&self, rng: &mut impl Rng) -> SimDuration {
        let jitter = if self.jitter.secs() == 0 {
            0
        } else {
            rng.gen_range(0..=self.jitter.secs())
        };
        SimDuration::from_secs(self.base_latency.secs() + jitter)
    }

    /// Propagation latency plus the slow-link transfer time for a
    /// `len`-byte payload.
    fn delivery_latency(&self, rng: &mut impl Rng, len: usize) -> SimDuration {
        let mut latency = self.sample_latency(rng);
        if let Some(bps) = self.bandwidth {
            latency = latency + SimDuration::from_secs((len as u64).div_ceil(bps.max(1)));
        }
        latency
    }
}

/// Why a delivery was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random (memoryless) loss.
    Random,
    /// Loss during a Gilbert–Elliott burst.
    Burst,
    /// The link was inside a scheduled outage window.
    Outage,
    /// Payload exceeded the link's size limit.
    TooLarge,
}

/// Outcome of one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The payload was (possibly damaged and) delivered after
    /// `latency`.
    Delivered {
        /// Whether a corruption/truncation/garbage fault fired.
        corrupted: bool,
        /// Sampled one-way latency (including slow-link transfer time).
        latency: SimDuration,
    },
    /// The link accepted the payload but will never answer; the
    /// exchange times out after delivery-side effects happened.
    Stalled,
    /// The payload was dropped.
    Dropped(DropReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use iiscope_types::SeedFork;

    fn buf(bytes: &[u8]) -> BytesMut {
        let mut b = BytesMut::new();
        b.extend_from_slice(bytes);
        b
    }

    const NOW: SimTime = SimTime::EPOCH;

    #[test]
    fn perfect_link_never_mutates() {
        let mut plan = FaultPlan::perfect();
        let mut rng = SeedFork::new(1).rng();
        for _ in 0..100 {
            let mut payload = buf(&[1, 2, 3]);
            match plan.apply(&mut rng, NOW, &mut payload) {
                Verdict::Delivered { corrupted, latency } => {
                    assert!(!corrupted);
                    assert_eq!(latency, SimDuration::ZERO);
                    assert_eq!(&payload[..], &[1, 2, 3]);
                }
                v => panic!("unexpected {v:?}"),
            }
        }
    }

    #[test]
    fn legacy_draw_sequence_is_preserved() {
        // A drop/corrupt-only plan must consume the RNG exactly as the
        // pre-chaos injector did: [drop, corrupt] per non-empty
        // delivery. Verified by checking the rng positions directly.
        let mut plan = FaultPlan::lossy(0.25, 0.25);
        let mut rng = SeedFork::new(9).rng();
        let mut reference = SeedFork::new(9).rng();
        for _ in 0..200 {
            let mut payload = buf(&[7u8; 5]);
            let verdict = plan.apply(&mut rng, NOW, &mut payload);
            // Reference replays the legacy logic with its own rng.
            let dropped = iiscope_types::rng::chance(&mut reference, 0.25);
            if dropped {
                assert_eq!(verdict, Verdict::Dropped(DropReason::Random));
                continue;
            }
            let corrupt = iiscope_types::rng::chance(&mut reference, 0.25);
            if corrupt {
                let _idx: usize = reference.gen_range(0..5);
                let _bit: u32 = reference.gen_range(0..8);
            }
            match verdict {
                Verdict::Delivered { corrupted, .. } => assert_eq!(corrupted, corrupt),
                v => panic!("unexpected {v:?}"),
            }
        }
    }

    #[test]
    fn drop_chance_roughly_honoured() {
        let mut plan = FaultPlan::lossy(0.3, 0.0);
        let mut rng = SeedFork::new(2).rng();
        let n = 10_000;
        let drops = (0..n)
            .filter(|_| {
                matches!(
                    plan.apply(&mut rng, NOW, &mut buf(&[0u8; 4])),
                    Verdict::Dropped(DropReason::Random)
                )
            })
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut plan = FaultPlan::lossy(0.0, 1.0);
        let mut rng = SeedFork::new(3).rng();
        let original = vec![0xAAu8; 16];
        let mut payload = buf(&original);
        match plan.apply(&mut rng, NOW, &mut payload) {
            Verdict::Delivered { corrupted, .. } => assert!(corrupted),
            v => panic!("unexpected {v:?}"),
        }
        let flipped_bits: u32 = original
            .iter()
            .zip(payload.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped_bits, 1);
    }

    #[test]
    fn size_limit_drops_large_payloads() {
        let mut plan = FaultPlan::perfect().with_size_limit(8);
        let mut rng = SeedFork::new(4).rng();
        assert!(matches!(
            plan.apply(&mut rng, NOW, &mut buf(&[0u8; 8])),
            Verdict::Delivered { .. }
        ));
        assert_eq!(
            plan.apply(&mut rng, NOW, &mut buf(&[0u8; 9])),
            Verdict::Dropped(DropReason::TooLarge)
        );
    }

    #[test]
    fn latency_within_bounds() {
        let plan =
            FaultPlan::perfect().with_latency(SimDuration::from_secs(2), SimDuration::from_secs(3));
        let mut rng = SeedFork::new(5).rng();
        for _ in 0..200 {
            let l = plan.sample_latency(&mut rng).secs();
            assert!((2..=5).contains(&l), "latency {l}");
        }
    }

    #[test]
    fn empty_payload_never_corrupts() {
        let mut plan = FaultPlan::lossy(0.0, 1.0);
        let mut rng = SeedFork::new(6).rng();
        let mut payload = BytesMut::new();
        match plan.apply(&mut rng, NOW, &mut payload) {
            Verdict::Delivered { corrupted, .. } => assert!(!corrupted),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn burst_losses_are_correlated() {
        // Deterministic burst channel: no loss in good, total loss in
        // bad. Losses must arrive in runs, not scattered singles.
        let mut plan = FaultPlan::perfect().with_burst(GilbertElliott::new(0.05, 0.25, 0.0, 1.0));
        let mut rng = SeedFork::new(7).rng();
        let outcomes: Vec<bool> = (0..4000)
            .map(|_| {
                matches!(
                    plan.apply(&mut rng, NOW, &mut buf(&[0u8; 4])),
                    Verdict::Dropped(DropReason::Burst)
                )
            })
            .collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        assert!(losses > 200, "bursts never fired ({losses})");
        // Count loss runs: correlated loss means far fewer runs than
        // losses (mean burst length 1/p_exit = 4).
        let runs = outcomes.windows(2).filter(|w| !w[0] && w[1]).count().max(1);
        let mean_run = losses as f64 / runs as f64;
        assert!(mean_run > 2.0, "losses not bursty: mean run {mean_run}");
    }

    #[test]
    fn gilbert_elliott_clamps_rates() {
        let ge = GilbertElliott::new(-0.5, 1.5, 2.0, -1.0);
        assert_eq!(ge.p_enter(), 0.0);
        assert_eq!(ge.p_exit(), 1.0);
        assert_eq!(ge.loss_good(), 1.0);
        assert_eq!(ge.loss_bad(), 0.0);
    }

    #[test]
    fn outage_window_blocks_all_deliveries() {
        let window = OutageWindow::new(SimTime::from_secs(100), SimTime::from_secs(200));
        let mut plan = FaultPlan::perfect().with_outage(window);
        let mut rng = SeedFork::new(8).rng();
        assert!(matches!(
            plan.apply(&mut rng, SimTime::from_secs(99), &mut buf(b"x")),
            Verdict::Delivered { .. }
        ));
        for t in [100u64, 150, 199] {
            assert_eq!(
                plan.apply(&mut rng, SimTime::from_secs(t), &mut buf(b"x")),
                Verdict::Dropped(DropReason::Outage)
            );
        }
        assert!(matches!(
            plan.apply(&mut rng, SimTime::from_secs(200), &mut buf(b"x")),
            Verdict::Delivered { .. }
        ));
    }

    #[test]
    fn stall_returns_stalled() {
        let mut plan = FaultPlan::perfect().with_stall(1.0);
        let mut rng = SeedFork::new(10).rng();
        assert_eq!(
            plan.apply(&mut rng, NOW, &mut buf(b"req")),
            Verdict::Stalled
        );
    }

    #[test]
    fn truncation_shortens_but_keeps_a_prefix() {
        let mut plan = FaultPlan::perfect().with_truncation(1.0);
        let mut rng = SeedFork::new(11).rng();
        let original = vec![0x55u8; 64];
        let mut payload = buf(&original);
        match plan.apply(&mut rng, NOW, &mut payload) {
            Verdict::Delivered { corrupted, .. } => assert!(corrupted),
            v => panic!("unexpected {v:?}"),
        }
        assert!(
            !payload.is_empty() && payload.len() < 64,
            "len {}",
            payload.len()
        );
        assert_eq!(&payload[..], &original[..payload.len()]);
    }

    #[test]
    fn garbage_rewrites_payload() {
        let mut plan = FaultPlan::perfect().with_garbage(1.0);
        let mut rng = SeedFork::new(12).rng();
        let mut payload = buf(&[0u8; 32]);
        match plan.apply(&mut rng, NOW, &mut payload) {
            Verdict::Delivered { corrupted, .. } => assert!(corrupted),
            v => panic!("unexpected {v:?}"),
        }
        assert_eq!(payload.len(), 32);
        assert!(payload.iter().any(|&b| b != 0), "garbage left zeros intact");
    }

    #[test]
    fn bandwidth_cap_adds_transfer_time() {
        let mut plan = FaultPlan::perfect().with_bandwidth(10);
        let mut rng = SeedFork::new(13).rng();
        match plan.apply(&mut rng, NOW, &mut buf(&[0u8; 25])) {
            Verdict::Delivered { latency, .. } => {
                assert_eq!(latency, SimDuration::from_secs(3)); // ceil(25/10)
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn same_seed_and_plan_reproduce_verdicts() {
        let plan = FaultPlan::lossy(0.2, 0.1)
            .with_burst(GilbertElliott::new(0.1, 0.3, 0.0, 0.9))
            .with_stall(0.05)
            .with_truncation(0.05);
        let run = |seed: u64| -> Vec<Verdict> {
            let mut plan = plan.clone();
            let mut rng = SeedFork::new(seed).rng();
            (0..500)
                .map(|i| plan.apply(&mut rng, SimTime::from_secs(i), &mut buf(&[3u8; 10])))
                .collect()
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(1235));
    }
}
