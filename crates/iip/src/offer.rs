//! Offers and their human-readable descriptions.
//!
//! The offer is the unit the whole measurement pipeline revolves
//! around: it is what the milkers scrape, what the paper's authors
//! manually labelled into no-activity vs activity{registration,
//! purchase, usage} (§4.1: "We manually label offer descriptions"),
//! and what Table 3/Table 4 aggregate. Descriptions are generated from
//! the conversion goal through several phrasing templates, so the
//! classifier in `iiscope-analysis` faces realistic textual variety
//! rather than a fixed string per class.

use iiscope_attribution::ConversionGoal;
use iiscope_types::{CampaignId, Country, IipId, OfferId, PackageName, SimTime, Usd};
use rand::Rng;

/// Lifecycle state of an offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferStatus {
    /// Live on the wall.
    Active,
    /// Budget or cap exhausted / withdrawn by the developer.
    Ended,
}

/// One incentivized install offer.
#[derive(Debug, Clone, PartialEq)]
pub struct Offer {
    /// Platform-scoped offer id.
    pub id: OfferId,
    /// The campaign that published it.
    pub campaign: CampaignId,
    /// The platform it runs on.
    pub iip: IipId,
    /// Advertised app.
    pub package: PackageName,
    /// Play Store URL shown to users.
    pub store_url: String,
    /// Human-readable task description.
    pub description: String,
    /// Payout the *developer* pays per completion (the user receives
    /// this minus the IIP and affiliate cuts).
    pub payout: Usd,
    /// Machine-checkable completion goal.
    pub goal: ConversionGoal,
    /// Geo targeting; empty = worldwide.
    pub countries: Vec<Country>,
    /// When the offer went live.
    pub created: SimTime,
    /// Maximum completions the budget allows.
    pub cap: u64,
    /// Completions so far.
    pub completed: u64,
    /// Current status.
    pub status: OfferStatus,
}

impl Offer {
    /// Whether the offer is visible to a user in `country`.
    pub fn targets(&self, country: Country) -> bool {
        self.status == OfferStatus::Active
            && (self.countries.is_empty() || self.countries.contains(&country))
    }

    /// Remaining completions before the cap.
    pub fn remaining(&self) -> u64 {
        self.cap.saturating_sub(self.completed)
    }
}

/// Renders a goal into one of several natural phrasings, picked by the
/// campaign's RNG. The phrasings deliberately cover the literal
/// examples quoted in the paper.
pub fn describe_goal(goal: &ConversionGoal, rng: &mut impl Rng) -> String {
    let pick = |rng: &mut dyn rand::RngCore, options: &[String]| -> String {
        options[rng.gen_range(0..options.len())].clone()
    };
    match goal {
        ConversionGoal::InstallAndOpen => pick(
            rng,
            &[
                "Install and Launch".to_string(),
                "Install and open the app".to_string(),
                "Install and run the application".to_string(),
                "Free install - just open once".to_string(),
            ],
        ),
        ConversionGoal::Register => pick(
            rng,
            &[
                "Install and Register".to_string(),
                "Install and create an account".to_string(),
                "Install, sign up with email".to_string(),
                "Install and register a new account".to_string(),
            ],
        ),
        ConversionGoal::ReachLevel(l) => pick(
            rng,
            &[
                format!("Install and Reach level {l}"),
                format!("Install & complete level {l}"),
                format!("Reach level {l} in the game"),
            ],
        ),
        ConversionGoal::SessionTime(secs) => {
            let mins = (secs / 60).max(1);
            pick(
                rng,
                &[
                    format!("Install and play for {mins} minutes"),
                    format!("Use the app for {mins} minutes"),
                    format!("Install, spend {mins} minutes in the app"),
                ],
            )
        }
        ConversionGoal::Purchase(min) => {
            if min.micros() <= 10_000 {
                pick(
                    rng,
                    &[
                        "Install & Make any purchase".to_string(),
                        "Install and buy any item".to_string(),
                    ],
                )
            } else {
                pick(
                    rng,
                    &[
                        format!("Install and make a {min} in-app purchase"),
                        format!("Install & purchase at least {min}"),
                    ],
                )
            }
        }
        ConversionGoal::CompleteSubOffers(n) => pick(
            rng,
            &[
                format!("Install and complete {n} tasks (surveys, videos, deals)"),
                format!("Reach {} points by completing tasks in the app", n * 283),
                format!("Install, then finish {n} offers inside the app"),
            ],
        ),
        ConversionGoal::RateApp(stars) => pick(
            rng,
            &[
                format!("Install and rate {stars} stars"),
                format!("Install, leave a {stars}-star rating"),
                format!("Rate the app {stars} stars on the store"),
            ],
        ),
        ConversionGoal::AllOf(goals) => {
            let parts: Vec<String> = goals.iter().map(|g| describe_goal(g, rng)).collect();
            parts.join(", then ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_types::SeedFork;

    fn offer(countries: Vec<Country>) -> Offer {
        Offer {
            id: OfferId(1),
            campaign: CampaignId(1),
            iip: IipId::Fyber,
            package: PackageName::new("com.x.y").unwrap(),
            store_url: "https://play.iiscope/store/apps/details?id=com.x.y".into(),
            description: "Install and Launch".into(),
            payout: Usd::from_cents(6),
            goal: ConversionGoal::InstallAndOpen,
            countries,
            created: SimTime::EPOCH,
            cap: 500,
            completed: 0,
            status: OfferStatus::Active,
        }
    }

    #[test]
    fn geo_targeting() {
        let worldwide = offer(vec![]);
        assert!(worldwide.targets(Country::Us));
        assert!(worldwide.targets(Country::In));
        let us_only = offer(vec![Country::Us]);
        assert!(us_only.targets(Country::Us));
        assert!(!us_only.targets(Country::In));
    }

    #[test]
    fn ended_offers_target_nobody() {
        let mut o = offer(vec![]);
        o.status = OfferStatus::Ended;
        assert!(!o.targets(Country::Us));
    }

    #[test]
    fn remaining_saturates() {
        let mut o = offer(vec![]);
        o.completed = 499;
        assert_eq!(o.remaining(), 1);
        o.completed = 600;
        assert_eq!(o.remaining(), 0);
    }

    #[test]
    fn descriptions_cover_paper_examples() {
        let mut rng = SeedFork::new(1).rng();
        // Exhaust the small template pools to check the canonical
        // paper phrases appear.
        let mut install_launch = false;
        let mut register = false;
        for _ in 0..100 {
            install_launch |=
                describe_goal(&ConversionGoal::InstallAndOpen, &mut rng) == "Install and Launch";
            register |=
                describe_goal(&ConversionGoal::Register, &mut rng) == "Install and Register";
        }
        assert!(install_launch && register);
        let lvl = describe_goal(&ConversionGoal::ReachLevel(10), &mut rng);
        assert!(lvl.contains("level 10"), "{lvl}");
    }

    #[test]
    fn composite_descriptions_join() {
        let mut rng = SeedFork::new(2).rng();
        let goal = ConversionGoal::AllOf(vec![
            ConversionGoal::Register,
            ConversionGoal::SessionTime(600),
        ]);
        let d = describe_goal(&goal, &mut rng);
        assert!(d.contains(", then "), "{d}");
    }

    #[test]
    fn descriptions_vary_across_rng_draws() {
        let mut rng = SeedFork::new(3).rng();
        let set: std::collections::BTreeSet<String> = (0..50)
            .map(|_| describe_goal(&ConversionGoal::Register, &mut rng))
            .collect();
        assert!(set.len() >= 3, "expected phrasing variety, got {set:?}");
    }
}
