//! The IIP platform state machine: accounts, escrowed campaign
//! budgets, offers, postback settlement.

use crate::economics::{PayoutSplit, Settlement};
use crate::offer::{describe_goal, Offer, OfferStatus};
use crate::vetting::{DeveloperApplication, IipProfile, VettingOutcome};
use iiscope_attribution::{ConversionGoal, Postback};
use iiscope_types::{
    CampaignId, Country, DeveloperId, Error, IipId, OfferId, PackageName, Result, SeedFork,
    SimTime, Usd,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// What a developer submits to start a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The paying developer (must hold an account on the platform).
    pub developer: DeveloperId,
    /// Advertised app.
    pub package: PackageName,
    /// Play Store URL placed in the offer.
    pub store_url: String,
    /// Completion requirement.
    pub goal: ConversionGoal,
    /// Payout per completion.
    pub payout: Usd,
    /// Number of completions to buy.
    pub cap: u64,
    /// Geo targeting (empty = worldwide).
    pub countries: Vec<Country>,
}

/// A running (or finished) campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Platform-scoped id.
    pub id: CampaignId,
    /// The spec it was created from.
    pub spec: CampaignSpec,
    /// The attribution tag the mediator certifies against.
    pub tag: String,
    /// The published offer.
    pub offer: OfferId,
    /// Creation instant.
    pub created: SimTime,
    /// Completions accepted so far.
    pub completions: u64,
    /// Conversions rejected by anti-fraud.
    pub rejected: u64,
}

struct Account {
    balance: Usd,
}

struct Inner {
    accounts: BTreeMap<DeveloperId, Account>,
    campaigns: BTreeMap<CampaignId, Campaign>,
    by_tag: BTreeMap<String, CampaignId>,
    offers: BTreeMap<OfferId, Offer>,
    settlement: Settlement,
    next_campaign: u64,
    next_offer: u64,
}

/// One incentivized install platform. Share via `Arc`.
pub struct IipPlatform {
    /// Operating profile (vetting rules, cuts, audience).
    pub profile: IipProfile,
    /// Default affiliate cut of the post-IIP remainder (percent).
    pub affiliate_cut_percent: u8,
    inner: Mutex<Inner>,
    seed: SeedFork,
}

impl IipPlatform {
    /// Creates the platform for `iip` with its Table 1 profile.
    pub fn new(iip: IipId, seed: SeedFork) -> IipPlatform {
        IipPlatform {
            profile: IipProfile::for_iip(iip),
            affiliate_cut_percent: 25,
            inner: Mutex::new(Inner {
                accounts: BTreeMap::new(),
                campaigns: BTreeMap::new(),
                by_tag: BTreeMap::new(),
                offers: BTreeMap::new(),
                settlement: Settlement::new(),
                next_campaign: 1,
                next_offer: 1,
            }),
            seed,
        }
    }

    /// Which platform this is.
    pub fn id(&self) -> IipId {
        self.profile.iip
    }

    /// Registers a developer; on acceptance the deposit becomes the
    /// account balance.
    pub fn register_developer(&self, application: &DeveloperApplication) -> Result<()> {
        match self.profile.review(application) {
            VettingOutcome::Accepted => {
                let mut inner = self.inner.lock();
                inner
                    .accounts
                    .entry(application.developer)
                    .or_insert(Account { balance: Usd::ZERO })
                    .balance += application.deposit;
                Ok(())
            }
            VettingOutcome::Rejected(reason) => Err(Error::Denied(format!(
                "{} rejected registration: {reason}",
                self.profile.iip
            ))),
        }
    }

    /// Tops up an existing account.
    pub fn deposit(&self, developer: DeveloperId, amount: Usd) -> Result<()> {
        let mut inner = self.inner.lock();
        let account = inner
            .accounts
            .get_mut(&developer)
            .ok_or_else(|| Error::NotFound(format!("no account for {developer}")))?;
        account.balance += amount;
        Ok(())
    }

    /// Account balance.
    pub fn balance(&self, developer: DeveloperId) -> Option<Usd> {
        self.inner
            .lock()
            .accounts
            .get(&developer)
            .map(|a| a.balance)
    }

    /// Creates a campaign, escrowing `payout × cap` from the account,
    /// and publishes its offer. Returns the campaign id and the
    /// attribution tag the developer must register with the mediator.
    pub fn create_campaign(
        &self,
        spec: CampaignSpec,
        now: SimTime,
    ) -> Result<(CampaignId, String)> {
        if spec.cap == 0 {
            return Err(Error::InvalidState("campaign cap must be positive".into()));
        }
        if spec.payout <= Usd::ZERO {
            return Err(Error::InvalidState("payout must be positive".into()));
        }
        let mut inner = self.inner.lock();
        let budget = spec.payout * spec.cap as i64;
        let account = inner
            .accounts
            .get_mut(&spec.developer)
            .ok_or_else(|| Error::Denied(format!("no account for {}", spec.developer)))?;
        if account.balance < budget {
            return Err(Error::Denied(format!(
                "insufficient balance: need {budget}, have {}",
                account.balance
            )));
        }
        account.balance -= budget;

        let campaign_id = CampaignId(inner.next_campaign);
        inner.next_campaign += 1;
        let offer_id = OfferId(inner.next_offer);
        inner.next_offer += 1;
        let tag = format!(
            "{}-c{}",
            self.profile
                .iip
                .name()
                .to_ascii_lowercase()
                .replace('-', ""),
            campaign_id.raw()
        );
        let mut rng = self.seed.fork_idx("campaign", campaign_id.raw()).rng();
        let description = describe_goal(&spec.goal, &mut rng);
        let offer = Offer {
            id: offer_id,
            campaign: campaign_id,
            iip: self.profile.iip,
            package: spec.package.clone(),
            store_url: spec.store_url.clone(),
            description,
            payout: spec.payout,
            goal: spec.goal.clone(),
            countries: spec.countries.clone(),
            created: now,
            cap: spec.cap,
            completed: 0,
            status: OfferStatus::Active,
        };
        inner.offers.insert(offer_id, offer);
        inner.by_tag.insert(tag.clone(), campaign_id);
        inner.campaigns.insert(
            campaign_id,
            Campaign {
                id: campaign_id,
                spec,
                tag: tag.clone(),
                offer: offer_id,
                created: now,
                completions: 0,
                rejected: 0,
            },
        );
        Ok((campaign_id, tag))
    }

    /// Offers currently visible to a user browsing from `country`.
    pub fn offers_for(&self, country: Country) -> Vec<Offer> {
        self.inner
            .lock()
            .offers
            .values()
            .filter(|o| o.targets(country))
            .cloned()
            .collect()
    }

    /// All offers ever published (for analysis ground truth).
    pub fn all_offers(&self) -> Vec<Offer> {
        self.inner.lock().offers.values().cloned().collect()
    }

    /// Campaign accessor.
    pub fn campaign(&self, id: CampaignId) -> Option<Campaign> {
        self.inner.lock().campaigns.get(&id).cloned()
    }

    /// Campaign by attribution tag.
    pub fn campaign_by_tag(&self, tag: &str) -> Option<Campaign> {
        let inner = self.inner.lock();
        inner
            .by_tag
            .get(tag)
            .and_then(|id| inner.campaigns.get(id))
            .cloned()
    }

    /// Processes one mediator postback: settle the payout chain or
    /// reject the conversion. Returns the accepted split, or `None`
    /// when rejected (fraud flag on a vetting platform, exhausted cap,
    /// or ended offer).
    pub fn process_postback(&self, postback: &Postback) -> Result<Option<PayoutSplit>> {
        let mut inner = self.inner.lock();
        let campaign_id = *inner
            .by_tag
            .get(&postback.conversion.tag)
            .ok_or_else(|| Error::NotFound(format!("tag {:?}", postback.conversion.tag)))?;
        let offer_id = inner.campaigns[&campaign_id].offer;

        if postback.conversion.fraud_flag && self.profile.rejects_flagged_conversions {
            inner
                .campaigns
                .get_mut(&campaign_id)
                .expect("exists")
                .rejected += 1;
            // Rejected completions release their escrow back.
            let payout = inner.offers[&offer_id].payout;
            let dev = inner.campaigns[&campaign_id].spec.developer;
            inner.accounts.get_mut(&dev).expect("exists").balance += payout;
            return Ok(None);
        }

        let offer = inner.offers.get_mut(&offer_id).expect("exists");
        if offer.status != OfferStatus::Active || offer.remaining() == 0 {
            return Ok(None);
        }
        offer.completed += 1;
        if offer.remaining() == 0 {
            offer.status = OfferStatus::Ended;
        }
        let payout = offer.payout;
        let split = PayoutSplit::compute(
            payout,
            self.profile.iip_cut_percent,
            self.affiliate_cut_percent,
        );
        inner.settlement.settle(split);
        inner
            .campaigns
            .get_mut(&campaign_id)
            .expect("exists")
            .completions += 1;
        Ok(Some(split))
    }

    /// Ends a campaign early, refunding un-spent escrow.
    pub fn end_campaign(&self, id: CampaignId) -> Result<Usd> {
        let mut inner = self.inner.lock();
        let campaign = inner
            .campaigns
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(id.to_string()))?;
        let offer = inner.offers.get_mut(&campaign.offer).expect("exists");
        if offer.status == OfferStatus::Ended {
            return Ok(Usd::ZERO);
        }
        offer.status = OfferStatus::Ended;
        let refund = offer.payout * offer.remaining() as i64;
        inner
            .accounts
            .get_mut(&campaign.spec.developer)
            .expect("exists")
            .balance += refund;
        Ok(refund)
    }

    /// Platform-wide settlement snapshot.
    pub fn settlement(&self) -> Settlement {
        self.inner.lock().settlement.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_attribution::Conversion;

    fn developer_on(platform: &IipPlatform, deposit_dollars: i64) -> DeveloperId {
        let dev = DeveloperId(1);
        platform
            .register_developer(&DeveloperApplication {
                developer: dev,
                has_tax_id: true,
                has_bank_account: true,
                deposit: Usd::from_dollars(deposit_dollars),
            })
            .unwrap();
        dev
    }

    fn spec(dev: DeveloperId, payout_cents: i64, cap: u64) -> CampaignSpec {
        CampaignSpec {
            developer: dev,
            package: PackageName::new("com.adv.app").unwrap(),
            store_url: "https://play.iiscope/store/apps/details?id=com.adv.app".into(),
            goal: ConversionGoal::InstallAndOpen,
            payout: Usd::from_cents(payout_cents),
            cap,
            countries: vec![],
        }
    }

    fn postback(tag: &str, fraud: bool) -> Postback {
        Postback {
            conversion: Conversion {
                tag: tag.into(),
                device: iiscope_types::DeviceId(1),
                at: SimTime::EPOCH,
                fraud_flag: fraud,
            },
        }
    }

    #[test]
    fn campaign_lifecycle_with_escrow() {
        let p = IipPlatform::new(IipId::Fyber, SeedFork::new(1));
        let dev = developer_on(&p, 3_000);
        let (id, tag) = p
            .create_campaign(spec(dev, 6, 500), SimTime::EPOCH)
            .unwrap();
        // $30 escrowed out of $3000.
        assert_eq!(p.balance(dev).unwrap(), Usd::from_dollars(2_970));
        assert_eq!(tag, "fyber-c1");
        let c = p.campaign(id).unwrap();
        assert_eq!(c.completions, 0);
        let offers = p.offers_for(Country::Us);
        assert_eq!(offers.len(), 1);
        assert_eq!(offers[0].payout, Usd::from_cents(6));
        assert!(!offers[0].description.is_empty());
    }

    #[test]
    fn insufficient_balance_rejected() {
        let p = IipPlatform::new(IipId::RankApp, SeedFork::new(2));
        let dev = DeveloperId(1);
        p.register_developer(&DeveloperApplication {
            developer: dev,
            has_tax_id: false,
            has_bank_account: false,
            deposit: Usd::from_dollars(20),
        })
        .unwrap();
        // 2000 completions × $0.02 = $40 > $20.
        assert!(p
            .create_campaign(spec(dev, 2, 2_000), SimTime::EPOCH)
            .is_err());
        assert!(p
            .create_campaign(spec(dev, 2, 1_000), SimTime::EPOCH)
            .is_ok());
    }

    #[test]
    fn postbacks_settle_until_cap() {
        let p = IipPlatform::new(IipId::Fyber, SeedFork::new(3));
        let dev = developer_on(&p, 3_000);
        let (id, tag) = p.create_campaign(spec(dev, 10, 3), SimTime::EPOCH).unwrap();
        for _ in 0..3 {
            assert!(p
                .process_postback(&postback(&tag, false))
                .unwrap()
                .is_some());
        }
        // Cap reached: further conversions are not paid.
        assert!(p
            .process_postback(&postback(&tag, false))
            .unwrap()
            .is_none());
        let c = p.campaign(id).unwrap();
        assert_eq!(c.completions, 3);
        assert!(p.offers_for(Country::Us).is_empty(), "offer left the wall");
        let s = p.settlement();
        assert_eq!(s.completions, 3);
        assert_eq!(s.gross(), Usd::from_cents(30));
    }

    #[test]
    fn vetted_platform_rejects_flagged_conversions_and_refunds() {
        let p = IipPlatform::new(IipId::Fyber, SeedFork::new(4));
        let dev = developer_on(&p, 3_000);
        let (id, tag) = p
            .create_campaign(spec(dev, 100, 10), SimTime::EPOCH)
            .unwrap();
        let before = p.balance(dev).unwrap();
        assert!(p.process_postback(&postback(&tag, true)).unwrap().is_none());
        assert_eq!(p.campaign(id).unwrap().rejected, 1);
        assert_eq!(p.balance(dev).unwrap(), before + Usd::from_dollars(1));
    }

    #[test]
    fn unvetted_platform_pays_flagged_conversions() {
        let p = IipPlatform::new(IipId::RankApp, SeedFork::new(5));
        let dev = DeveloperId(2);
        p.register_developer(&DeveloperApplication {
            developer: dev,
            has_tax_id: false,
            has_bank_account: false,
            deposit: Usd::from_dollars(20),
        })
        .unwrap();
        let (_, tag) = p
            .create_campaign(
                CampaignSpec {
                    developer: dev,
                    ..spec(dev, 2, 500)
                },
                SimTime::EPOCH,
            )
            .unwrap();
        assert!(p.process_postback(&postback(&tag, true)).unwrap().is_some());
    }

    #[test]
    fn end_campaign_refunds_remaining_escrow() {
        let p = IipPlatform::new(IipId::Fyber, SeedFork::new(6));
        let dev = developer_on(&p, 3_000);
        let (id, tag) = p
            .create_campaign(spec(dev, 10, 100), SimTime::EPOCH)
            .unwrap();
        p.process_postback(&postback(&tag, false)).unwrap();
        let refund = p.end_campaign(id).unwrap();
        assert_eq!(refund, Usd::from_cents(990));
        // Ending again refunds nothing.
        assert_eq!(p.end_campaign(id).unwrap(), Usd::ZERO);
        assert!(p.offers_for(Country::Us).is_empty());
    }

    #[test]
    fn geo_targeted_campaign() {
        let p = IipPlatform::new(IipId::Fyber, SeedFork::new(7));
        let dev = developer_on(&p, 3_000);
        let mut s = spec(dev, 10, 10);
        s.countries = vec![Country::De, Country::Us];
        p.create_campaign(s, SimTime::EPOCH).unwrap();
        assert_eq!(p.offers_for(Country::De).len(), 1);
        assert_eq!(p.offers_for(Country::In).len(), 0);
    }

    #[test]
    fn zero_cap_and_zero_payout_rejected() {
        let p = IipPlatform::new(IipId::Fyber, SeedFork::new(8));
        let dev = developer_on(&p, 3_000);
        assert!(p.create_campaign(spec(dev, 10, 0), SimTime::EPOCH).is_err());
        assert!(p.create_campaign(spec(dev, 0, 10), SimTime::EPOCH).is_err());
    }
}
