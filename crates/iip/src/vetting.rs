//! Developer vetting: the Table 1 split.
//!
//! "On one end, we find vetted IIPs … that have a stringent review
//! process to vet developers. In most cases, they require developers to
//! provide extensive documentation (e.g., valid TAX id, bank account)
//! and make significant upfront monetary commitments (sometimes as high
//! as thousands of dollars). … On the other end, we find unvetted IIPs
//! … a developer can pay as little as 20 dollars to start a campaign."
//! (§2.1)

use iiscope_types::{DeveloperId, IipId, Usd};

/// What a developer submits when registering with an IIP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeveloperApplication {
    /// Applying developer.
    pub developer: DeveloperId,
    /// Provided a valid tax id.
    pub has_tax_id: bool,
    /// Provided a bank account.
    pub has_bank_account: bool,
    /// Upfront deposit offered.
    pub deposit: Usd,
}

/// The result of a registration attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VettingOutcome {
    /// Account opened with the deposited balance.
    Accepted,
    /// Rejected with the platform's reason.
    Rejected(&'static str),
}

/// Per-IIP operating profile: the review process, fee structure and
/// delivery characteristics the paper observed.
#[derive(Debug, Clone)]
pub struct IipProfile {
    /// Which platform.
    pub iip: IipId,
    /// Documentation (tax id + bank account) required to register.
    pub requires_documents: bool,
    /// Minimum upfront deposit.
    pub min_deposit: Usd,
    /// Platform's cut of each completed offer payout (percent).
    pub iip_cut_percent: u8,
    /// Whether the platform rejects conversions carrying the
    /// mediator's fraud flag (vetted platforms do; unvetted pay out
    /// anyway).
    pub rejects_flagged_conversions: bool,
    /// Rough size of the worker audience reachable through the
    /// platform's affiliate network — drives delivery speed (§3.2:
    /// Fyber/ayeT deliver 500 installs within two hours, RankApp takes
    /// more than 24).
    pub audience_size: u32,
}

impl IipProfile {
    /// The calibrated profile for each of the seven platforms.
    pub fn for_iip(iip: IipId) -> IipProfile {
        let vetted = iip.is_vetted();
        let (min_deposit, audience_size) = match iip {
            IipId::Fyber => (Usd::from_dollars(3_000), 60_000),
            IipId::OfferToro => (Usd::from_dollars(1_500), 25_000),
            IipId::AdscendMedia => (Usd::from_dollars(1_000), 20_000),
            IipId::HangMyAds => (Usd::from_dollars(1_000), 8_000),
            IipId::AdGem => (Usd::from_dollars(2_000), 6_000),
            IipId::AyetStudios => (Usd::from_dollars(50), 30_000),
            IipId::RankApp => (Usd::from_dollars(20), 4_000),
        };
        IipProfile {
            iip,
            requires_documents: vetted,
            min_deposit,
            iip_cut_percent: if vetted { 30 } else { 40 },
            rejects_flagged_conversions: vetted,
            audience_size,
        }
    }

    /// Reviews an application.
    pub fn review(&self, app: &DeveloperApplication) -> VettingOutcome {
        if self.requires_documents && !(app.has_tax_id && app.has_bank_account) {
            return VettingOutcome::Rejected("documentation required (tax id, bank account)");
        }
        if app.deposit < self.min_deposit {
            return VettingOutcome::Rejected("deposit below platform minimum");
        }
        VettingOutcome::Accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn application(docs: bool, deposit: Usd) -> DeveloperApplication {
        DeveloperApplication {
            developer: DeveloperId(1),
            has_tax_id: docs,
            has_bank_account: docs,
            deposit,
        }
    }

    #[test]
    fn vetted_requires_documents() {
        let fyber = IipProfile::for_iip(IipId::Fyber);
        assert_eq!(
            fyber.review(&application(false, Usd::from_dollars(10_000))),
            VettingOutcome::Rejected("documentation required (tax id, bank account)")
        );
        assert_eq!(
            fyber.review(&application(true, Usd::from_dollars(10_000))),
            VettingOutcome::Accepted
        );
    }

    #[test]
    fn unvetted_takes_20_dollars_no_questions() {
        // §2.1's literal claim: "a developer can pay as little as 20
        // dollars to start a campaign".
        let rankapp = IipProfile::for_iip(IipId::RankApp);
        assert_eq!(
            rankapp.review(&application(false, Usd::from_dollars(20))),
            VettingOutcome::Accepted
        );
        assert!(matches!(
            rankapp.review(&application(false, Usd::from_dollars(5))),
            VettingOutcome::Rejected(_)
        ));
    }

    #[test]
    fn deposit_floors_differ_by_class() {
        for iip in IipId::ALL {
            let p = IipProfile::for_iip(iip);
            if iip.is_vetted() {
                assert!(p.min_deposit >= Usd::from_dollars(1_000), "{iip}");
                assert!(p.requires_documents);
                assert!(p.rejects_flagged_conversions);
            } else {
                assert!(p.min_deposit <= Usd::from_dollars(50), "{iip}");
                assert!(!p.requires_documents);
                assert!(!p.rejects_flagged_conversions);
            }
        }
    }

    #[test]
    fn vetted_reach_includes_the_biggest_audiences() {
        // Fyber's audience dwarfs RankApp's — the delivery-speed gap of
        // §3.2 falls out of this.
        assert!(
            IipProfile::for_iip(IipId::Fyber).audience_size
                > 10 * IipProfile::for_iip(IipId::RankApp).audience_size
        );
    }
}
