//! # iiscope-iip
//!
//! The incentivized install platforms (IIPs) of Table 1 — the paper's
//! central object of study. An IIP:
//!
//! * **vets developers** (or doesn't): vetted platforms demand
//!   documentation and four-figure deposits; unvetted ones take $20 and
//!   a dream (§2.1, [`vetting`]);
//! * runs **campaigns** that publish **offers** — app, store URL,
//!   payout, human-readable task description, conversion goal, geo
//!   targeting ([`offer`], [`platform`]);
//! * serves an **offer wall** to affiliate apps over HTTPS, each IIP
//!   with its own JSON schema and reward currency ([`wall`]) — the
//!   surface the §4.1 monitoring pipeline milks;
//! * settles the **payout chain** of Figure 1 on certified postbacks:
//!   IIP cut → affiliate cut → user reward ([`economics`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod economics;
pub mod offer;
pub mod platform;
pub mod vetting;
pub mod wall;

pub use economics::{PayoutSplit, Settlement};
pub use offer::{describe_goal, Offer, OfferStatus};
pub use platform::{Campaign, CampaignSpec, IipPlatform};
pub use vetting::{DeveloperApplication, IipProfile, VettingOutcome};
pub use wall::{OfferWallHandler, OFFERS_PATH};
