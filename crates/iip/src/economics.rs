//! The payout chain of Figure 1.
//!
//! "After a user completes an offer listed in the offer wall, the IIP
//! keeps a fraction of the payout and releases the remaining payout to
//! the affiliate app which, in turn, keeps a fraction of the payout and
//! releases the remaining payout to the user." (§2.1)
//!
//! Splits are exact: the three parts always reconcile to the
//! developer's payout, with rounding absorbed down-chain.

use iiscope_types::Usd;

/// The exact three-way division of one completed offer's payout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayoutSplit {
    /// Kept by the IIP.
    pub iip_share: Usd,
    /// Kept by the affiliate app.
    pub affiliate_share: Usd,
    /// Paid to the user (in the affiliate's point currency).
    pub user_share: Usd,
}

impl PayoutSplit {
    /// Splits `payout`: the IIP takes `iip_cut_percent`, the affiliate
    /// takes `affiliate_cut_percent` of what remains, the user gets the
    /// rest.
    pub fn compute(payout: Usd, iip_cut_percent: u8, affiliate_cut_percent: u8) -> PayoutSplit {
        let (iip_share, rest) = payout.split_percent(iip_cut_percent);
        let (affiliate_share, user_share) = rest.split_percent(affiliate_cut_percent);
        PayoutSplit {
            iip_share,
            affiliate_share,
            user_share,
        }
    }

    /// Sum of the three parts (always the original payout).
    pub fn total(&self) -> Usd {
        self.iip_share + self.affiliate_share + self.user_share
    }
}

/// Running settlement ledger for one platform: who has earned what.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Settlement {
    /// Revenue retained by the IIP.
    pub iip_revenue: Usd,
    /// Total released to affiliate apps.
    pub affiliate_revenue: Usd,
    /// Total released to users.
    pub user_payouts: Usd,
    /// Number of settled completions.
    pub completions: u64,
}

impl Settlement {
    /// Empty ledger.
    pub fn new() -> Settlement {
        Settlement::default()
    }

    /// Applies one split.
    pub fn settle(&mut self, split: PayoutSplit) {
        self.iip_revenue += split.iip_share;
        self.affiliate_revenue += split.affiliate_share;
        self.user_payouts += split.user_share;
        self.completions += 1;
    }

    /// Total money that has flowed through the platform.
    pub fn gross(&self) -> Usd {
        self.iip_revenue + self.affiliate_revenue + self.user_payouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_reconciles_exactly() {
        for payout_micros in [1i64, 7, 60_000, 520_000, 2_980_001] {
            let payout = Usd::from_micros(payout_micros);
            for iip_cut in [0u8, 30, 40, 100] {
                for aff_cut in [0u8, 25, 50] {
                    let s = PayoutSplit::compute(payout, iip_cut, aff_cut);
                    assert_eq!(s.total(), payout, "{payout} {iip_cut} {aff_cut}");
                    assert!(!s.user_share.is_negative());
                }
            }
        }
    }

    #[test]
    fn typical_offer_split() {
        // A $0.06 no-activity offer (Table 3's average) with a 30% IIP
        // cut and 25% affiliate cut: the user sees about three cents.
        let s = PayoutSplit::compute(Usd::from_cents(6), 30, 25);
        assert_eq!(s.iip_share, Usd::from_micros(18_000));
        assert_eq!(s.affiliate_share, Usd::from_micros(10_500));
        assert_eq!(s.user_share, Usd::from_micros(31_500));
    }

    #[test]
    fn settlement_accumulates() {
        let mut ledger = Settlement::new();
        let split = PayoutSplit::compute(Usd::from_cents(52), 30, 25);
        for _ in 0..10 {
            ledger.settle(split);
        }
        assert_eq!(ledger.completions, 10);
        assert_eq!(ledger.gross(), Usd::from_cents(520));
        assert_eq!(
            ledger.gross(),
            ledger.iip_revenue + ledger.affiliate_revenue + ledger.user_payouts
        );
    }
}
