//! The offer wall HTTP API — one JSON dialect per IIP.
//!
//! §4.1: the milkers "parse the HTTP responses … These responses
//! typically include offer details in JSON format containing offer
//! description, payout, and the advertised app's Google Play Store
//! profile." In reality every platform has its own schema and its own
//! reward currency (USD, cents, or affiliate points), which is why the
//! paper needed per-wall parsing and payout normalization ("We
//! normalize offer payouts of different affiliate apps by converting
//! their points to equivalent dollar amounts"). The seven dialects
//! below force the monitor in `iiscope-monitor` to do the same work.
//!
//! Rewards shown on a wall are the *user share* (after the IIP and
//! affiliate cuts), in the requesting affiliate's point currency —
//! affiliates register their `points_per_dollar` rate with the IIP.

use crate::economics::PayoutSplit;
use crate::offer::Offer;
use crate::platform::IipPlatform;
use iiscope_types::{IipId, Usd};
use iiscope_wire::http::RequestCtx;
use iiscope_wire::{Handler, Json, Request, Response};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// HTTP handler serving one platform's offer wall.
pub struct OfferWallHandler {
    platform: Arc<IipPlatform>,
    affiliates: Mutex<BTreeMap<String, u64>>,
}

impl OfferWallHandler {
    /// Wraps a platform.
    pub fn new(platform: Arc<IipPlatform>) -> OfferWallHandler {
        OfferWallHandler {
            platform,
            affiliates: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers an affiliate app and its point conversion rate.
    pub fn register_affiliate(&self, package: impl Into<String>, points_per_dollar: u64) {
        self.affiliates
            .lock()
            .insert(package.into(), points_per_dollar);
    }

    /// The user-visible reward for an offer, in USD.
    fn user_share(&self, offer: &Offer) -> Usd {
        PayoutSplit::compute(
            offer.payout,
            self.platform.profile.iip_cut_percent,
            self.platform.affiliate_cut_percent,
        )
        .user_share
    }

    fn points(&self, usd: Usd, points_per_dollar: u64) -> i64 {
        // Round to nearest point; walls never show fractions.
        ((usd.micros() as f64 / 1e6) * points_per_dollar as f64).round() as i64
    }

    fn render_wall(&self, offers: &[Offer], points_per_dollar: u64) -> Json {
        let iip = self.platform.id();
        let entries: Vec<Json> = offers
            .iter()
            .map(|o| {
                let usd = self.user_share(o);
                let pts = self.points(usd, points_per_dollar);
                match iip {
                    IipId::Fyber => Json::obj([
                        ("offer_id", Json::Int(o.id.raw() as i64)),
                        ("title", Json::str(&o.description)),
                        ("payout_usd", Json::Float(usd.dollars_f64())),
                        ("package", Json::str(o.package.as_str())),
                        ("play_url", Json::str(&o.store_url)),
                    ]),
                    IipId::OfferToro => Json::obj([
                        ("id", Json::Int(o.id.raw() as i64)),
                        ("offer_desc", Json::str(&o.description)),
                        ("amount", Json::Int(pts)),
                        ("package_name", Json::str(o.package.as_str())),
                        ("link", Json::str(&o.store_url)),
                    ]),
                    IipId::AdscendMedia => Json::obj([
                        ("uid", Json::Int(o.id.raw() as i64)),
                        ("description", Json::str(&o.description)),
                        ("currency_count", Json::Int(pts)),
                        (
                            "app",
                            Json::obj([
                                ("bundle", Json::str(o.package.as_str())),
                                ("market_url", Json::str(&o.store_url)),
                            ]),
                        ),
                    ]),
                    IipId::HangMyAds => Json::obj([
                        ("task", Json::str(&o.description)),
                        ("points", Json::Int(pts)),
                        ("pkg", Json::str(o.package.as_str())),
                        ("url", Json::str(&o.store_url)),
                        ("tid", Json::Int(o.id.raw() as i64)),
                    ]),
                    IipId::AdGem => Json::obj([
                        ("id", Json::Int(o.id.raw() as i64)),
                        ("text", Json::str(&o.description)),
                        ("reward", Json::obj([("points", Json::Int(pts))])),
                        ("bundle_id", Json::str(o.package.as_str())),
                        ("store_link", Json::str(&o.store_url)),
                    ]),
                    IipId::AyetStudios => Json::obj([
                        ("offer_key", Json::Int(o.id.raw() as i64)),
                        ("name", Json::str(&o.description)),
                        ("payout", Json::Int(pts)),
                        ("package_id", Json::str(o.package.as_str())),
                        ("tracking_link", Json::str(&o.store_url)),
                    ]),
                    IipId::RankApp => Json::obj([
                        ("task", Json::str(&o.description)),
                        // RankApp quotes the user reward in cents.
                        ("price_cents", Json::Int((usd.micros() / 10_000).max(0))),
                        ("gp_link", Json::str(&o.store_url)),
                        ("app", Json::str(o.package.as_str())),
                        ("rid", Json::Int(o.id.raw() as i64)),
                    ]),
                }
            })
            .collect();

        match iip {
            IipId::Fyber => Json::obj([(
                "ofw",
                Json::obj([
                    ("offers", Json::Array(entries.clone())),
                    ("count", Json::Int(entries.len() as i64)),
                ]),
            )]),
            IipId::OfferToro => {
                Json::obj([("response", Json::obj([("offers", Json::Array(entries))]))])
            }
            IipId::AdscendMedia => {
                Json::obj([("adscend", Json::obj([("entries", Json::Array(entries))]))])
            }
            IipId::HangMyAds => Json::obj([("result", Json::Array(entries))]),
            IipId::AdGem => Json::obj([("data", Json::obj([("wall", Json::Array(entries))]))]),
            IipId::AyetStudios => Json::obj([
                ("status", Json::str("ok")),
                ("offers", Json::Array(entries)),
            ]),
            IipId::RankApp => Json::Array(entries),
        }
    }
}

/// The wall's single route. Socket-server front-ends that multiplex
/// all walls behind one listener rewrite `/wall/<slug>/offers` to this
/// before dispatching.
pub const OFFERS_PATH: &str = "/offers";

impl Handler for OfferWallHandler {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        if req.path() != OFFERS_PATH {
            return Response::not_found();
        }
        let Some(affiliate) = req.query_param("affiliate") else {
            return Response::status(400);
        };
        let Some(points_per_dollar) = self.affiliates.lock().get(&affiliate).copied() else {
            return Response::status(403);
        };
        // Geo targeting uses the *connection's* country: the paper's
        // milkers change vantage points via VPN proxies precisely
        // because walls geo-filter on source address.
        let country = ctx.peer.addr.country;
        let mut offers = self.platform.offers_for(country);
        offers.sort_by_key(|o| o.id);
        // Pagination: walls return one page per request; the UI fuzzer
        // must scroll to load more (the coverage mechanic of §4.1).
        // Two addressing schemes share the sorted offer list:
        // `cursor=N&limit=M` slices offers [N, N+M); the legacy
        // `page=P` (fixed PAGE_SIZE rows) remains the default so
        // parameterless requests stay byte-identical.
        let cursor_mode = req.query_param("cursor").is_some() || req.query_param("limit").is_some();
        let page_items: Vec<Offer> = if cursor_mode {
            let cursor: usize = req
                .query_param("cursor")
                .and_then(|c| c.parse().ok())
                .unwrap_or(0);
            let limit: usize = req
                .query_param("limit")
                .and_then(|l| l.parse().ok())
                .unwrap_or(PAGE_SIZE)
                .min(CURSOR_MAX_LIMIT);
            offers.into_iter().skip(cursor).take(limit).collect()
        } else {
            let page: usize = req
                .query_param("page")
                .and_then(|p| p.parse().ok())
                .unwrap_or(0);
            offers
                .into_iter()
                .skip(page * PAGE_SIZE)
                .take(PAGE_SIZE)
                .collect()
        };
        Response::ok_json(&self.render_wall(&page_items, points_per_dollar))
    }
}

/// Number of offers per wall page (public for the fuzzer's tests).
pub const PAGE_SIZE: usize = 10;

/// Largest `limit` a cursor-mode request can ask for — bounds one
/// response's render cost regardless of query-string input.
pub const CURSOR_MAX_LIMIT: usize = 100;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CampaignSpec;
    use crate::vetting::DeveloperApplication;
    use iiscope_attribution::ConversionGoal;
    use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
    use iiscope_types::{Country, DeveloperId, PackageName, SeedFork, SimTime};

    fn rig(iip: IipId) -> (Arc<IipPlatform>, OfferWallHandler) {
        let p = Arc::new(IipPlatform::new(iip, SeedFork::new(11)));
        p.register_developer(&DeveloperApplication {
            developer: DeveloperId(1),
            has_tax_id: true,
            has_bank_account: true,
            deposit: Usd::from_dollars(5_000),
        })
        .unwrap();
        let wall = OfferWallHandler::new(Arc::clone(&p));
        wall.register_affiliate("com.cash.app", 1_000);
        (p, wall)
    }

    fn add_campaign(p: &IipPlatform, n: u64, payout_cents: i64, countries: Vec<Country>) {
        for i in 0..n {
            p.create_campaign(
                CampaignSpec {
                    developer: DeveloperId(1),
                    package: PackageName::new(format!("com.adv.app{i}")).unwrap(),
                    store_url: format!("https://play.iiscope/store/apps/details?id=com.adv.app{i}"),
                    goal: ConversionGoal::InstallAndOpen,
                    payout: Usd::from_cents(payout_cents),
                    cap: 100,
                    countries: countries.clone(),
                },
                SimTime::EPOCH,
            )
            .unwrap();
        }
    }

    fn ctx(country: Country) -> RequestCtx {
        RequestCtx {
            peer: PeerInfo {
                addr: HostAddr {
                    ip: std::net::Ipv4Addr::new(9, 9, 9, 9),
                    asn: AsnId(1),
                    asn_kind: AsnKind::Eyeball,
                    country,
                },
                opened_at: SimTime::EPOCH,
                link: iiscope_types::SeedFork::new(1),
            },
            now: SimTime::EPOCH,
        }
    }

    #[test]
    fn fyber_schema_shows_usd() {
        let (p, wall) = rig(IipId::Fyber);
        add_campaign(&p, 1, 100, vec![]);
        let resp = wall.handle(
            &Request::get("/offers?affiliate=com.cash.app"),
            &ctx(Country::Us),
        );
        let j = resp.body_json().unwrap();
        let offers = j
            .get("ofw")
            .unwrap()
            .get("offers")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(offers.len(), 1);
        let payout = offers[0].get("payout_usd").and_then(Json::as_f64).unwrap();
        // $1.00 payout, 30% IIP cut, 25% affiliate cut → $0.525 user share.
        assert!((payout - 0.525).abs() < 1e-9, "{payout}");
    }

    #[test]
    fn rankapp_schema_is_top_level_array_in_cents() {
        let (p, wall) = rig(IipId::RankApp);
        // RankApp registration (unvetted) uses a separate developer.
        p.create_campaign(
            CampaignSpec {
                developer: DeveloperId(1),
                package: PackageName::new("com.adv.solo").unwrap(),
                store_url: "https://play.iiscope/store/apps/details?id=com.adv.solo".into(),
                goal: ConversionGoal::InstallAndOpen,
                payout: Usd::from_cents(2),
                cap: 100,
                countries: vec![],
            },
            SimTime::EPOCH,
        )
        .unwrap();
        let resp = wall.handle(
            &Request::get("/offers?affiliate=com.cash.app"),
            &ctx(Country::In),
        );
        let j = resp.body_json().unwrap();
        let arr = j.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        // $0.02, 40% cut, 25% affiliate → $0.009 → 0 whole cents.
        let cents = arr[0].get("price_cents").and_then(Json::as_i64).unwrap();
        assert_eq!(cents, 0);
        assert_eq!(
            arr[0].get("app").and_then(Json::as_str),
            Some("com.adv.solo")
        );
    }

    #[test]
    fn points_currencies_scale_with_affiliate_rate() {
        let (p, wall) = rig(IipId::AyetStudios);
        wall.register_affiliate("com.other.app", 100);
        add_campaign(&p, 1, 100, vec![]);
        let get = |aff: &str| -> i64 {
            let resp = wall.handle(
                &Request::get(format!("/offers?affiliate={aff}")),
                &ctx(Country::Us),
            );
            resp.body_json()
                .unwrap()
                .get("offers")
                .unwrap()
                .as_array()
                .unwrap()[0]
                .get("payout")
                .and_then(Json::as_i64)
                .unwrap()
        };
        let pts_1000 = get("com.cash.app");
        let pts_100 = get("com.other.app");
        assert_eq!(pts_1000, 10 * pts_100);
    }

    #[test]
    fn unregistered_affiliate_forbidden() {
        let (_p, wall) = rig(IipId::Fyber);
        let resp = wall.handle(
            &Request::get("/offers?affiliate=com.unknown"),
            &ctx(Country::Us),
        );
        assert_eq!(resp.status, 403);
        let resp = wall.handle(&Request::get("/offers"), &ctx(Country::Us));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn geo_filtering_by_connection_country() {
        let (p, wall) = rig(IipId::Fyber);
        add_campaign(&p, 1, 50, vec![Country::De]);
        let de = wall.handle(
            &Request::get("/offers?affiliate=com.cash.app"),
            &ctx(Country::De),
        );
        let us = wall.handle(
            &Request::get("/offers?affiliate=com.cash.app"),
            &ctx(Country::Us),
        );
        let count = |r: &Response| {
            r.body_json()
                .unwrap()
                .get("ofw")
                .unwrap()
                .get("count")
                .and_then(Json::as_i64)
                .unwrap()
        };
        assert_eq!(count(&de), 1);
        assert_eq!(count(&us), 0);
    }

    #[test]
    fn pagination_requires_scrolling() {
        let (p, wall) = rig(IipId::Fyber);
        add_campaign(&p, 23, 50, vec![]);
        let fetch = |page: usize| -> usize {
            let resp = wall.handle(
                &Request::get(format!("/offers?affiliate=com.cash.app&page={page}")),
                &ctx(Country::Us),
            );
            resp.body_json()
                .unwrap()
                .get("ofw")
                .unwrap()
                .get("offers")
                .and_then(Json::as_array)
                .unwrap()
                .len()
        };
        assert_eq!(fetch(0), 10);
        assert_eq!(fetch(1), 10);
        assert_eq!(fetch(2), 3);
        assert_eq!(fetch(3), 0);
    }

    #[test]
    fn cursor_pagination_slices_and_defaults_match_page_zero() {
        let (p, wall) = rig(IipId::Fyber);
        add_campaign(&p, 23, 50, vec![]);
        let fetch = |query: &str| -> Vec<i64> {
            let resp = wall.handle(
                &Request::get(format!("/offers?affiliate=com.cash.app{query}")),
                &ctx(Country::Us),
            );
            assert_eq!(resp.status, 200);
            resp.body_json()
                .unwrap()
                .get("ofw")
                .unwrap()
                .get("offers")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|o| o.get("offer_id").and_then(Json::as_i64).unwrap())
                .collect()
        };
        // cursor walks the same sorted list page mode does.
        let all: Vec<i64> = (0..3).flat_map(|p| fetch(&format!("&page={p}"))).collect();
        assert_eq!(all.len(), 23);
        assert_eq!(fetch("&cursor=0&limit=23"), all);
        assert_eq!(fetch("&cursor=5&limit=4"), all[5..9].to_vec());
        // limit alone defaults cursor=0; cursor alone defaults
        // limit=PAGE_SIZE.
        assert_eq!(fetch("&limit=3"), all[..3].to_vec());
        assert_eq!(fetch("&cursor=20"), all[20..].to_vec());
        // Past the end is empty, not an error; limit is clamped.
        assert_eq!(fetch("&cursor=40&limit=5"), Vec::<i64>::new());
        assert_eq!(fetch("&cursor=0&limit=9999").len(), 23);
        // Unparsable values fall back silently, like `page` does.
        assert_eq!(fetch("&cursor=x&limit=y"), all[..PAGE_SIZE].to_vec());
    }

    #[test]
    fn parameterless_requests_ignore_cursor_code_path() {
        let (p, wall) = rig(IipId::Fyber);
        add_campaign(&p, 12, 50, vec![]);
        let plain = wall.handle(
            &Request::get("/offers?affiliate=com.cash.app"),
            &ctx(Country::Us),
        );
        let paged = wall.handle(
            &Request::get("/offers?affiliate=com.cash.app&page=0"),
            &ctx(Country::Us),
        );
        // Byte-identical to the legacy default page.
        assert_eq!(plain.encode(), paged.encode());
    }

    #[test]
    fn every_iip_schema_is_valid_json_with_description() {
        for iip in IipId::ALL {
            let (p, wall) = rig(iip);
            if !iip.is_vetted() {
                // re-rig already registered developer 1 with docs; fine
            }
            add_campaign(&p, 1, 75, vec![]);
            let resp = wall.handle(
                &Request::get("/offers?affiliate=com.cash.app"),
                &ctx(Country::Us),
            );
            assert!(resp.is_success(), "{iip}");
            let text = resp.body_text();
            assert!(
                text.to_lowercase().contains("install"),
                "{iip}: description missing in {text}"
            );
        }
    }
}
