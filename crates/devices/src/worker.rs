//! Crowd workers — the humans (and bots) behind incentivized installs.
//!
//! §3.2's conclusion: "most of the users are likely semi-professional
//! crowd workers who seek to earn money through these schemes", with a
//! minority of outright automation (emulators, cloud hosts) and device
//! farms ("20 installs from different devices behind the same /24
//! block. 18 out of these 20 installs are from rooted phones that also
//! share the same WiFi SSID").

use iiscope_types::{DeviceId, WorkerId};

/// The behavioural archetypes observed in §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerKind {
    /// Occasional earner with one ordinary phone and a couple of
    /// reward apps.
    Casual,
    /// Semi-professional earner: one or two phones packed with
    /// money-keyword affiliate apps; completes offers reliably.
    SemiPro,
    /// Automation operator: emulators and/or cloud-hosted devices;
    /// completes the bare minimum, never engages.
    BotOperator,
    /// Device-farm operator: many rooted handsets behind one /24 and
    /// one WiFi SSID.
    FarmOperator,
}

impl WorkerKind {
    /// Probability the worker opens the app at all after installing.
    /// Workers chasing the payout must open the app — the conversion
    /// requires it — so every human archetype opens nearly always.
    /// (§3.2's 45%-never-opened RankApp installs come from the
    /// platform-level `open_factor`, which models installs sold purely
    /// for the count metric.)
    pub fn open_prob(self) -> f64 {
        match self {
            WorkerKind::Casual => 0.97,
            WorkerKind::SemiPro => 0.99,
            WorkerKind::BotOperator => 0.60,
            WorkerKind::FarmOperator => 0.85,
        }
    }

    /// Probability of engaging beyond the paid minimum (the honey
    /// app's record-button click).
    pub fn extra_engagement_prob(self) -> f64 {
        match self {
            WorkerKind::Casual => 0.60,
            WorkerKind::SemiPro => 0.45,
            WorkerKind::BotOperator => 0.02,
            WorkerKind::FarmOperator => 0.05,
        }
    }

    /// Probability of returning to the app the next day (§3.2: "One
    /// day after installation, only a handful of users … clicked").
    pub fn day2_return_prob(self) -> f64 {
        match self {
            WorkerKind::Casual => 0.012,
            WorkerKind::SemiPro => 0.006,
            WorkerKind::BotOperator => 0.001,
            WorkerKind::FarmOperator => 0.002,
        }
    }

    /// Probability the worker actually finishes a task of the given
    /// effort (seconds). Heavier tasks lose more workers; bots only do
    /// trivial ones.
    pub fn completion_prob(self, effort_secs: u64) -> f64 {
        let base = match self {
            WorkerKind::Casual => 0.85,
            WorkerKind::SemiPro => 0.95,
            WorkerKind::BotOperator => 0.90,
            WorkerKind::FarmOperator => 0.92,
        };
        let fatigue = match self {
            // Humans tolerate longer tasks for pay; bots abandon
            // anything that needs a real account or purchase.
            WorkerKind::Casual => (-(effort_secs as f64) / 4_000.0).exp(),
            WorkerKind::SemiPro => (-(effort_secs as f64) / 10_000.0).exp(),
            WorkerKind::BotOperator | WorkerKind::FarmOperator => {
                if effort_secs > 90 {
                    0.05
                } else {
                    1.0
                }
            }
        };
        base * fatigue
    }
}

/// One worker and the devices they operate.
#[derive(Debug, Clone)]
pub struct Worker {
    /// Worker id.
    pub id: WorkerId,
    /// Archetype.
    pub kind: WorkerKind,
    /// Devices under this worker's control.
    pub devices: Vec<DeviceId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paid_work_requires_opening() {
        // Every human archetype opens most of the time (no open, no
        // payout); only unattended automation skips it noticeably.
        assert!(WorkerKind::FarmOperator.open_prob() >= 0.8);
        assert!(WorkerKind::SemiPro.open_prob() > 0.95);
        assert!(WorkerKind::BotOperator.open_prob() < 0.8);
    }

    #[test]
    fn engagement_ordering_matches_section3() {
        // Human workers engage far more than automation.
        assert!(
            WorkerKind::Casual.extra_engagement_prob()
                > 5.0 * WorkerKind::FarmOperator.extra_engagement_prob()
        );
        assert!(
            WorkerKind::SemiPro.extra_engagement_prob()
                > 10.0 * WorkerKind::BotOperator.extra_engagement_prob()
        );
    }

    #[test]
    fn day2_retention_is_tiny_for_everyone() {
        for k in [
            WorkerKind::Casual,
            WorkerKind::SemiPro,
            WorkerKind::BotOperator,
            WorkerKind::FarmOperator,
        ] {
            assert!(k.day2_return_prob() < 0.02, "{k:?}");
        }
    }

    #[test]
    fn completion_prob_decays_with_effort() {
        let k = WorkerKind::SemiPro;
        assert!(k.completion_prob(60) > k.completion_prob(3_600));
        assert!(k.completion_prob(60) > 0.9);
        // Bots abandon registration-grade tasks.
        assert!(WorkerKind::BotOperator.completion_prob(180) < 0.1);
        assert!(WorkerKind::BotOperator.completion_prob(60) > 0.8);
    }
}
