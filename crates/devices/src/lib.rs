//! # iiscope-devices
//!
//! The population substrate: Android devices, the crowd workers who
//! operate them, the affiliate apps they earn through, and the per-IIP
//! behaviour profiles that §3.2's measurements characterize.
//!
//! * [`device`] — devices with build strings (emulator markers like
//!   `generic`/`genymotion`), root state, WiFi SSIDs, network addresses
//!   and installed-package lists — every §3.1 telemetry field has a
//!   ground-truth source here.
//! * [`affiliate`] — affiliate apps: point currencies, offer-wall
//!   integrations, and the Table 2 catalog of the eight monitored apps
//!   with their exact IIP matrix.
//! * [`worker`] — crowd workers: casual users, semi-professional
//!   earners with money-keyword app collections, bot operators on cloud
//!   hosts, and device-farm operators (the 20-installs-one-/24 case).
//! * [`behavior`] — per-IIP behaviour profiles (open rates, extra
//!   engagement, day-2 retention, worker-quality mix) and the sampler
//!   that turns a profile into per-install execution plans.
//! * [`population`] — deterministic generation of per-IIP audiences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affiliate;
pub mod behavior;
pub mod device;
pub mod population;
pub mod worker;

pub use affiliate::{AffiliateApp, WallTab};
pub use behavior::{ExecutionPlan, IipBehaviorProfile};
pub use device::Device;
pub use population::IipAudience;
pub use worker::{Worker, WorkerKind};
