//! Affiliate apps and the Table 2 catalog.
//!
//! Affiliate apps distribute offers: each integrates one or more IIP
//! offer walls as tabs in its UI, pays users in its own point currency,
//! and redeems points for gift cards. The monitored set is the eight
//! apps of Table 2, reproduced here with their exact integration
//! matrix.

use iiscope_types::{IipId, PackageName};

/// A tab in an affiliate app's UI, hosting one IIP's offer wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallTab {
    /// Which IIP's wall the tab embeds.
    pub iip: IipId,
    /// The wall's hostname (the SDK's endpoint).
    pub hostname: String,
}

/// An affiliate app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffiliateApp {
    /// Package name.
    pub package: PackageName,
    /// Display name.
    pub title: String,
    /// Public install bin label (Table 2's Installs column).
    pub installs_label: &'static str,
    /// Offer-wall tabs, in UI order.
    pub tabs: Vec<WallTab>,
    /// Points per redeemed dollar (the §4.1 normalization target:
    /// "By analyzing affiliate apps, we convert these reward points to
    /// an equivalent offer payout in USD").
    pub points_per_dollar: u64,
    /// Whether the app pays monetary rewards (gift cards / PayPal).
    /// The study "primarily focus\[es\] on affiliate apps that offer
    /// monetary incentives" (§2.1).
    pub monetary: bool,
}

impl AffiliateApp {
    /// The offer-wall hostname used for an IIP in this world.
    pub fn wall_host(iip: IipId) -> String {
        format!("wall.{}.iiscope", iip.slug())
    }

    fn new(
        package: &str,
        title: &str,
        installs_label: &'static str,
        iips: &[IipId],
        points_per_dollar: u64,
    ) -> AffiliateApp {
        AffiliateApp {
            package: PackageName::new(package).expect("valid package"),
            title: title.into(),
            installs_label,
            tabs: iips
                .iter()
                .map(|&iip| WallTab {
                    iip,
                    hostname: AffiliateApp::wall_host(iip),
                })
                .collect(),
            points_per_dollar,
            monetary: true,
        }
    }

    /// The eight monitored affiliate apps with Table 2's integration
    /// matrix (✓ cells), install labels, and distinct point systems.
    pub fn table2_catalog() -> Vec<AffiliateApp> {
        use IipId::*;
        vec![
            AffiliateApp::new(
                "com.mobvantage.cashforapps",
                "CashForApps",
                "10M+",
                &[Fyber, AdGem, HangMyAds, AyetStudios],
                1_000,
            ),
            AffiliateApp::new(
                "proxima.makemoney.android",
                "Make Money",
                "5M+",
                &[Fyber, AdscendMedia],
                200,
            ),
            AffiliateApp::new(
                "proxima.moneyapp.android",
                "Money App",
                "1M+",
                &[Fyber],
                200,
            ),
            AffiliateApp::new(
                "com.bigcash.app",
                "BigCash",
                "1M+",
                &[AdscendMedia, OfferToro],
                500,
            ),
            AffiliateApp::new(
                "com.ayet.cashpirate",
                "CashPirate",
                "1M+",
                &[Fyber, AyetStudios],
                2_500,
            ),
            AffiliateApp::new(
                "eu.makemoney",
                "MakeMoney EU",
                "1M+",
                &[AdscendMedia, RankApp],
                100,
            ),
            AffiliateApp::new(
                "com.growrich.makemoney",
                "GrowRich",
                "1M+",
                &[AdscendMedia, RankApp],
                750,
            ),
            AffiliateApp::new(
                "make.money.easy",
                "Money Easy",
                "100K+",
                &[Fyber, AdscendMedia, AyetStudios],
                300,
            ),
        ]
    }

    /// IIPs integrated by this app.
    pub fn integrated_iips(&self) -> Vec<IipId> {
        self.tabs.iter().map(|t| t.iip).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn catalog_matches_table2_shape() {
        let apps = AffiliateApp::table2_catalog();
        assert_eq!(apps.len(), 8, "eight monitored affiliate apps");
        // All 7 IIPs are reachable through the catalog.
        let covered: BTreeSet<IipId> = apps.iter().flat_map(|a| a.integrated_iips()).collect();
        assert_eq!(covered.len(), 7);
        // Every app integrates at least one *vetted* wall (Table 2:
        // "all of the 8 affiliate apps integrate at least one offer
        // wall from vetted IIPs").
        for app in &apps {
            assert!(
                app.integrated_iips().iter().any(|i| i.is_vetted()),
                "{} lacks a vetted wall",
                app.package
            );
        }
        // Most (5 of 8) also integrate an unvetted wall.
        let with_unvetted = apps
            .iter()
            .filter(|a| a.integrated_iips().iter().any(|i| !i.is_vetted()))
            .count();
        assert_eq!(with_unvetted, 5);
        // The most popular app (10M+) integrates 4 walls.
        let top = apps.iter().find(|a| a.installs_label == "10M+").unwrap();
        assert_eq!(top.tabs.len(), 4);
    }

    #[test]
    fn table2_matrix_exact() {
        use IipId::*;
        let apps = AffiliateApp::table2_catalog();
        let get = |pkg: &str| -> BTreeSet<IipId> {
            apps.iter()
                .find(|a| a.package.as_str() == pkg)
                .unwrap()
                .integrated_iips()
                .into_iter()
                .collect()
        };
        assert_eq!(
            get("com.mobvantage.cashforapps"),
            [Fyber, AdGem, HangMyAds, AyetStudios].into_iter().collect()
        );
        assert_eq!(
            get("proxima.makemoney.android"),
            [Fyber, AdscendMedia].into_iter().collect()
        );
        assert_eq!(
            get("proxima.moneyapp.android"),
            [Fyber].into_iter().collect()
        );
        assert_eq!(
            get("com.bigcash.app"),
            [AdscendMedia, OfferToro].into_iter().collect()
        );
        assert_eq!(
            get("com.ayet.cashpirate"),
            [Fyber, AyetStudios].into_iter().collect()
        );
        assert_eq!(
            get("eu.makemoney"),
            [AdscendMedia, RankApp].into_iter().collect()
        );
        assert_eq!(
            get("com.growrich.makemoney"),
            [AdscendMedia, RankApp].into_iter().collect()
        );
        assert_eq!(
            get("make.money.easy"),
            [Fyber, AdscendMedia, AyetStudios].into_iter().collect()
        );
    }

    #[test]
    fn point_systems_differ() {
        let apps = AffiliateApp::table2_catalog();
        let rates: BTreeSet<u64> = apps.iter().map(|a| a.points_per_dollar).collect();
        assert!(
            rates.len() >= 5,
            "point systems must vary for normalization to matter"
        );
    }

    #[test]
    fn wall_hosts_are_wellformed() {
        assert_eq!(AffiliateApp::wall_host(IipId::Fyber), "wall.fyber.iiscope");
        assert_eq!(
            AffiliateApp::wall_host(IipId::AyetStudios),
            "wall.ayetstudios.iiscope"
        );
    }

    #[test]
    fn money_keywords_present_in_most_packages() {
        let apps = AffiliateApp::table2_catalog();
        let with_kw = apps
            .iter()
            .filter(|a| a.package.has_money_keyword())
            .count();
        assert!(with_kw >= 6, "affiliate package names should scream money");
    }
}
