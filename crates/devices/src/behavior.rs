//! Per-IIP behaviour profiles and per-install execution plans.
//!
//! Everything §3.2 measured about install quality is generated here,
//! calibrated so the honey-app experiment reproduces the paper's
//! shape:
//!
//! * **telemetry gap** — RankApp's worker pool is farm-heavy, and farm
//!   operators often never open the app (paper: 45% of RankApp installs
//!   produced no telemetry; Fyber/ayeT matched the console);
//! * **engagement** — ~44% of Fyber/ayeT users click the one button in
//!   the app vs ~6% for RankApp; day-2 returns are a handful of users;
//! * **automation** — a sprinkle of emulator builds and datacenter
//!   egress (4 emulators and 7 cloud-ASN devices out of 1,679);
//! * **worker economy** — money-keyword affiliate apps on 98% / 72% /
//!   42% of RankApp / ayeT / Fyber devices;
//! * **delivery speed** — audience-proportional: Fyber and ayeT fill
//!   500 installs within ~2 hours, RankApp needs >24.

use crate::worker::WorkerKind;
use iiscope_attribution::ConversionGoal;
use iiscope_types::rng::{chance, weighted_index};
use iiscope_types::IipId;
use rand::Rng;

/// Behavioural parameters of one IIP's reachable audience.
#[derive(Debug, Clone)]
pub struct IipBehaviorProfile {
    /// The platform.
    pub iip: IipId,
    /// Worker archetype mix — the probability that any given *install*
    /// is performed by each archetype (weights; normalized on
    /// sampling).
    pub kind_weights: [(WorkerKind, f64); 4],
    /// Fraction of worker devices carrying at least one money-keyword
    /// affiliate app.
    pub money_keyword_rate: f64,
    /// The platform's single most popular affiliate app and its share
    /// of worker devices (§3.2 names them per IIP).
    pub top_affiliate: (&'static str, f64),
    /// Devices per farm operator (min, max).
    pub farm_size: (usize, usize),
    /// Offer uptake rate: completions the audience can deliver per
    /// simulated hour.
    pub delivery_per_hour: f64,
    /// Audience-quality multiplier on the archetype's open
    /// probability. RankApp's ~0.57 produces §3.2's 45% missing
    /// telemetry.
    pub open_factor: f64,
    /// Audience-quality multiplier on the archetype's
    /// beyond-the-minimum engagement probability. RankApp's low value
    /// produces §3.2's 6%-click-rate (vs 44% on Fyber/ayeT).
    pub engagement_factor: f64,
}

impl IipBehaviorProfile {
    /// The calibrated profile per platform.
    pub fn for_iip(iip: IipId) -> IipBehaviorProfile {
        use WorkerKind::*;
        let (kind_weights, money_keyword_rate, top_affiliate, open_factor, engagement_factor) =
            match iip {
                IipId::Fyber => (
                    [
                        (Casual, 0.30),
                        (SemiPro, 0.68),
                        (BotOperator, 0.005),
                        (FarmOperator, 0.015),
                    ],
                    0.42,
                    ("proxima.makemoney.android", 0.09),
                    1.0,
                    1.0,
                ),
                IipId::AyetStudios => (
                    [
                        (Casual, 0.20),
                        (SemiPro, 0.7575),
                        (BotOperator, 0.0125),
                        (FarmOperator, 0.03),
                    ],
                    0.72,
                    ("com.ayet.cashpirate", 0.20),
                    1.0,
                    1.0,
                ),
                IipId::RankApp => (
                    [
                        (Casual, 0.10),
                        (SemiPro, 0.85),
                        (BotOperator, 0.005),
                        (FarmOperator, 0.045),
                    ],
                    0.98,
                    ("eu.gcashapp", 0.37),
                    // §3.2: 45% of RankApp installs never report; 6% click.
                    0.53,
                    0.15,
                ),
                IipId::OfferToro => (
                    [
                        (Casual, 0.28),
                        (SemiPro, 0.70),
                        (BotOperator, 0.005),
                        (FarmOperator, 0.015),
                    ],
                    0.50,
                    ("com.bigcash.app", 0.12),
                    0.95,
                    0.85,
                ),
                IipId::AdscendMedia => (
                    [
                        (Casual, 0.30),
                        (SemiPro, 0.68),
                        (BotOperator, 0.005),
                        (FarmOperator, 0.015),
                    ],
                    0.50,
                    ("proxima.makemoney.android", 0.10),
                    1.0,
                    0.9,
                ),
                IipId::HangMyAds => (
                    [
                        (Casual, 0.32),
                        (SemiPro, 0.66),
                        (BotOperator, 0.005),
                        (FarmOperator, 0.015),
                    ],
                    0.45,
                    ("com.mobvantage.cashforapps", 0.11),
                    0.95,
                    0.9,
                ),
                IipId::AdGem => (
                    [
                        (Casual, 0.33),
                        (SemiPro, 0.65),
                        (BotOperator, 0.005),
                        (FarmOperator, 0.015),
                    ],
                    0.45,
                    ("com.mobvantage.cashforapps", 0.10),
                    1.0,
                    0.95,
                ),
            };
        let audience = crate::population::audience_size(iip) as f64;
        IipBehaviorProfile {
            iip,
            kind_weights,
            money_keyword_rate,
            top_affiliate,
            farm_size: (10, 30),
            // Audience-proportional uptake: 60k-strong Fyber fills 500
            // completions in ~an hour; RankApp's 1.5k takes >24h.
            delivery_per_hour: audience / 120.0,
            open_factor,
            engagement_factor,
        }
    }

    /// Samples a worker archetype from the mix.
    pub fn sample_kind(&self, rng: &mut impl Rng) -> WorkerKind {
        let weights: Vec<f64> = self.kind_weights.iter().map(|(_, w)| *w).collect();
        let idx = weighted_index(rng, &weights).expect("non-empty weights");
        self.kind_weights[idx].0
    }

    /// Expected hours to deliver `n` completions.
    pub fn hours_to_deliver(&self, n: u64) -> f64 {
        n as f64 / self.delivery_per_hour
    }
}

/// What one worker actually does with one accepted offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// Whether the app is ever opened after install.
    pub opens_app: bool,
    /// Whether the conversion goal gets completed (implies
    /// `opens_app`).
    pub completes: bool,
    /// Whether the worker pokes at the app beyond the paid minimum.
    pub extra_engagement: bool,
    /// Whether the worker returns the next day.
    pub day2_return: bool,
    /// Seconds of in-app work from first open to goal completion (or
    /// abandonment).
    pub work_secs: u64,
}

/// Samples an execution plan for `kind` against `goal`, with neutral
/// audience-quality factors.
pub fn plan(kind: WorkerKind, goal: &ConversionGoal, rng: &mut impl Rng) -> ExecutionPlan {
    plan_scaled(kind, goal, 1.0, 1.0, rng)
}

/// Samples an execution plan under a platform's audience-quality
/// factors (see [`IipBehaviorProfile::open_factor`]).
pub fn plan_for(
    profile: &IipBehaviorProfile,
    kind: WorkerKind,
    goal: &ConversionGoal,
    rng: &mut impl Rng,
) -> ExecutionPlan {
    plan_scaled(
        kind,
        goal,
        profile.open_factor,
        profile.engagement_factor,
        rng,
    )
}

fn plan_scaled(
    kind: WorkerKind,
    goal: &ConversionGoal,
    open_factor: f64,
    engagement_factor: f64,
    rng: &mut impl Rng,
) -> ExecutionPlan {
    // The open_factor models installs sold purely for the install
    // count (never opened). Farm operators are exempt: their whole
    // business is collecting payouts, which requires the open.
    let open_factor = if kind == WorkerKind::FarmOperator {
        1.0
    } else {
        open_factor
    };
    let opens_app = chance(rng, kind.open_prob() * open_factor);
    let effort = goal.effort_secs();
    let completes = opens_app && chance(rng, kind.completion_prob(effort));
    let extra_engagement =
        opens_app && chance(rng, kind.extra_engagement_prob() * engagement_factor);
    let day2_return = opens_app && chance(rng, kind.day2_return_prob());
    // Workers take 0.8–2.0× the nominal effort.
    let factor = 0.8 + 1.2 * rng.gen::<f64>();
    let work_secs = if opens_app {
        ((effort as f64) * factor) as u64
    } else {
        0
    };
    ExecutionPlan {
        opens_app,
        completes,
        extra_engagement,
        day2_return,
        work_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_types::SeedFork;

    fn simulate(iip: IipId, n: usize) -> (f64, f64, f64) {
        // Returns (open rate, extra-engagement rate, completion rate)
        // for the no-activity goal over n simulated workers.
        let profile = IipBehaviorProfile::for_iip(iip);
        let mut rng = SeedFork::new(77).fork(iip.name()).rng();
        let goal = ConversionGoal::InstallAndOpen;
        let (mut opens, mut extra, mut completes) = (0, 0, 0);
        for _ in 0..n {
            let kind = profile.sample_kind(&mut rng);
            let p = plan_for(&profile, kind, &goal, &mut rng);
            opens += p.opens_app as usize;
            extra += p.extra_engagement as usize;
            completes += p.completes as usize;
        }
        (
            opens as f64 / n as f64,
            extra as f64 / n as f64,
            completes as f64 / n as f64,
        )
    }

    #[test]
    fn rankapp_loses_nearly_half_its_telemetry() {
        let (open, extra, _) = simulate(IipId::RankApp, 6_000);
        assert!((0.40..=0.62).contains(&open), "open rate {open}");
        assert!(extra < 0.13, "extra engagement {extra}");
    }

    #[test]
    fn fyber_and_ayet_report_and_engage_more() {
        for iip in [IipId::Fyber, IipId::AyetStudios] {
            let (open, extra, _) = simulate(iip, 6_000);
            assert!(open > 0.92, "{iip} open rate {open}");
            assert!((0.30..=0.55).contains(&extra), "{iip} extra {extra}");
        }
    }

    #[test]
    fn engagement_gap_between_classes() {
        let (_, fyber_extra, _) = simulate(IipId::Fyber, 6_000);
        let (_, rank_extra, _) = simulate(IipId::RankApp, 6_000);
        assert!(
            fyber_extra > 3.0 * rank_extra,
            "fyber {fyber_extra} vs rankapp {rank_extra}"
        );
    }

    #[test]
    fn delivery_speed_matches_section3() {
        // 500 installs: ≤2h for Fyber, ≤3h for ayeT, >24h for RankApp.
        assert!(IipBehaviorProfile::for_iip(IipId::Fyber).hours_to_deliver(500) <= 2.0);
        assert!(IipBehaviorProfile::for_iip(IipId::AyetStudios).hours_to_deliver(500) <= 3.0);
        assert!(IipBehaviorProfile::for_iip(IipId::RankApp).hours_to_deliver(500) > 24.0);
    }

    #[test]
    fn hard_goals_lose_automation() {
        let mut rng = SeedFork::new(5).rng();
        let goal = ConversionGoal::Register;
        let n = 2_000;
        let bot_done = (0..n)
            .filter(|_| plan(WorkerKind::BotOperator, &goal, &mut rng).completes)
            .count();
        let pro_done = (0..n)
            .filter(|_| plan(WorkerKind::SemiPro, &goal, &mut rng).completes)
            .count();
        assert!(pro_done > 5 * bot_done, "{pro_done} vs {bot_done}");
    }

    #[test]
    fn plans_are_internally_consistent() {
        let mut rng = SeedFork::new(9).rng();
        for _ in 0..2_000 {
            let p = plan(
                WorkerKind::FarmOperator,
                &ConversionGoal::InstallAndOpen,
                &mut rng,
            );
            if !p.opens_app {
                assert!(!p.completes && !p.extra_engagement && !p.day2_return);
                assert_eq!(p.work_secs, 0);
            }
        }
    }

    #[test]
    fn money_keyword_rates_match_paper() {
        assert!(
            (IipBehaviorProfile::for_iip(IipId::RankApp).money_keyword_rate - 0.98).abs() < 1e-9
        );
        assert!(
            (IipBehaviorProfile::for_iip(IipId::AyetStudios).money_keyword_rate - 0.72).abs()
                < 1e-9
        );
        assert!((IipBehaviorProfile::for_iip(IipId::Fyber).money_keyword_rate - 0.42).abs() < 1e-9);
    }
}
