//! Devices: the hardware (or emulator) behind every install.
//!
//! The honey app of §3.1 collects "device information (e.g., list of
//! other installed apps, device build, WiFi SSIDs, the /24 block of the
//! public IPv4 address, and signals to identify whether the device is
//! rooted)". Each of those observables has its ground truth on
//! [`Device`]; emulator detection works the way the paper's footnote
//! describes ("We look for strings (e.g., generic, genymotion) to
//! detect emulators").

use iiscope_netsim::{AsnKind, HostAddr};
use iiscope_playstore::InstallSignals;
use iiscope_types::{DeviceId, PackageName};

/// A simulated Android device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Device id.
    pub id: DeviceId,
    /// Network location (carries ASN kind and country).
    pub addr: HostAddr,
    /// Build fingerprint, e.g. `samsung/SM-G960F` or
    /// `generic/x86 sdk_gphone`.
    pub build: String,
    /// Rooted?
    pub rooted: bool,
    /// Connected WiFi network name, when on WiFi.
    pub wifi_ssid: Option<String>,
    /// Installed packages (beyond the app under test).
    pub installed: Vec<PackageName>,
}

impl Device {
    /// Emulator detection exactly as the honey app does it: substring
    /// scan of the build string.
    pub fn looks_like_emulator(&self) -> bool {
        const MARKERS: [&str; 4] = ["generic", "genymotion", "sdk_gphone", "emulator"];
        let lower = self.build.to_ascii_lowercase();
        MARKERS.iter().any(|m| lower.contains(m))
    }

    /// FNV-1a hash of the SSID — the honey app "only store\[s\] a hashed
    /// value" (§3.1 Ethics).
    pub fn ssid_hash(&self) -> Option<u64> {
        self.wifi_ssid.as_ref().map(|s| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in s.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        })
    }

    /// The /24 of the public address as a compact key.
    pub fn block24_key(&self) -> u32 {
        u32::from(self.addr.ip) >> 8
    }

    /// The install-quality signals the Play Store would record for an
    /// install from this device.
    pub fn install_signals(&self) -> InstallSignals {
        InstallSignals {
            emulator: self.looks_like_emulator(),
            rooted: self.rooted,
            datacenter_asn: self.addr.asn_kind == AsnKind::Datacenter,
            block24: self.block24_key(),
        }
    }

    /// Whether any installed package carries a money-making keyword
    /// (§3.2's affiliate-app heuristic).
    pub fn has_money_keyword_app(&self) -> bool {
        self.installed.iter().any(PackageName::has_money_keyword)
    }

    /// Whether a specific package is installed.
    pub fn has_package(&self, pkg: &PackageName) -> bool {
        self.installed.contains(pkg)
    }
}

/// Realistic handset build strings for the generator.
pub const HANDSET_BUILDS: [&str; 12] = [
    "samsung/SM-G960F",
    "samsung/SM-A505F",
    "xiaomi/Redmi Note 7",
    "xiaomi/MI 9",
    "huawei/P30 Lite",
    "oppo/CPH1923",
    "vivo/1904",
    "motorola/moto g(7)",
    "google/Pixel 3a",
    "oneplus/GM1903",
    "lge/LM-X420",
    "sony/H8324",
];

/// Emulator build strings for the generator.
pub const EMULATOR_BUILDS: [&str; 3] = [
    "generic/x86 sdk_gphone",
    "genymotion/vbox86p",
    "generic_x86_64/emulator64",
];

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_netsim::AsnId;
    use iiscope_types::Country;
    use std::net::Ipv4Addr;

    fn device(build: &str, kind: AsnKind) -> Device {
        Device {
            id: DeviceId(1),
            addr: HostAddr {
                ip: Ipv4Addr::new(10, 1, 2, 3),
                asn: AsnId(1),
                asn_kind: kind,
                country: Country::Us,
            },
            build: build.into(),
            rooted: false,
            wifi_ssid: Some("HomeNet-5G".into()),
            installed: vec![],
        }
    }

    #[test]
    fn emulator_markers_detected() {
        for b in EMULATOR_BUILDS {
            assert!(device(b, AsnKind::Eyeball).looks_like_emulator(), "{b}");
        }
        for b in HANDSET_BUILDS {
            assert!(!device(b, AsnKind::Eyeball).looks_like_emulator(), "{b}");
        }
    }

    #[test]
    fn signals_reflect_device_state() {
        let mut d = device("samsung/SM-G960F", AsnKind::Datacenter);
        d.rooted = true;
        let s = d.install_signals();
        assert!(s.datacenter_asn);
        assert!(s.rooted);
        assert!(!s.emulator);
        assert_eq!(s.block24, u32::from(Ipv4Addr::new(10, 1, 2, 3)) >> 8);
    }

    #[test]
    fn ssid_hashing_stable_and_private() {
        let d = device("samsung/SM-G960F", AsnKind::Eyeball);
        let h1 = d.ssid_hash().unwrap();
        let h2 = d.ssid_hash().unwrap();
        assert_eq!(h1, h2);
        let mut d2 = d.clone();
        d2.wifi_ssid = Some("OtherNet".into());
        assert_ne!(d2.ssid_hash(), d.ssid_hash());
        let mut d3 = d;
        d3.wifi_ssid = None;
        assert_eq!(d3.ssid_hash(), None);
    }

    #[test]
    fn money_keyword_scan() {
        let mut d = device("samsung/SM-G960F", AsnKind::Eyeball);
        assert!(!d.has_money_keyword_app());
        d.installed.push(PackageName::new("eu.gcashapp").unwrap());
        assert!(d.has_money_keyword_app());
        assert!(d.has_package(&PackageName::new("eu.gcashapp").unwrap()));
        assert!(!d.has_package(&PackageName::new("com.none.x").unwrap()));
    }
}
