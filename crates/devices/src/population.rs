//! Deterministic generation of per-IIP worker audiences.
//!
//! An audience is a pool of workers (each with one or more devices)
//! sampled from the platform's [`crate::behavior::IipBehaviorProfile`].
//! Farms materialize as one operator with many rooted devices sharing a
//! /24 block and a WiFi SSID — the §3.2 fingerprint. Device installed-
//! package lists embed the money-keyword affiliate apps at the
//! calibrated per-IIP rates, including each platform's signature app
//! (`eu.gcashapp` on 37% of RankApp devices, etc.).

use crate::behavior::IipBehaviorProfile;
use crate::device::{Device, EMULATOR_BUILDS, HANDSET_BUILDS};
use crate::worker::{Worker, WorkerKind};
use iiscope_netsim::{AsnId, AsnKind, AsnRegistry};
use iiscope_types::rng::{chance, weighted_index};
use iiscope_types::{Country, DeviceId, IipId, PackageName, SeedFork, WorkerId};
use rand::Rng;
use std::collections::BTreeMap;

/// Audience size per platform (drives delivery speed; see
/// `IipBehaviorProfile::delivery_per_hour`).
pub fn audience_size(iip: IipId) -> u32 {
    match iip {
        IipId::Fyber => 60_000,
        IipId::OfferToro => 25_000,
        IipId::AdscendMedia => 20_000,
        IipId::HangMyAds => 8_000,
        IipId::AdGem => 6_000,
        IipId::AyetStudios => 30_000,
        IipId::RankApp => 1_500,
    }
}

/// Where crowd workers live (weights loosely follow the usual
/// paid-install geographies).
const WORKER_COUNTRIES: [(Country, f64); 10] = [
    (Country::In, 0.22),
    (Country::Ph, 0.13),
    (Country::Id, 0.11),
    (Country::Br, 0.10),
    (Country::Us, 0.12),
    (Country::Ru, 0.08),
    (Country::Vn, 0.07),
    (Country::Ng, 0.06),
    (Country::De, 0.06),
    (Country::Uk, 0.05),
];

/// Money-keyword affiliate apps a worker may carry (beyond the
/// platform's signature app).
const MONEY_APP_POOL: [&str; 10] = [
    "com.mobvantage.cashforapps",
    "proxima.makemoney.android",
    "proxima.moneyapp.android",
    "com.bigcash.app",
    "com.ayet.cashpirate",
    "eu.makemoney",
    "com.growrich.makemoney",
    "make.money.easy",
    "eu.gcashapp",
    "com.apps.rewardz",
];

/// Innocuous apps for the rest of the installed list.
const MUNDANE_APP_POOL: [&str; 8] = [
    "com.whatsapp.clone",
    "com.instagraph.android",
    "com.spotify.like",
    "com.maps.navigator",
    "com.bank.wallet",
    "com.news.daily",
    "com.game.match3",
    "com.camera.filters",
];

/// Registers the standard AS inventory into a fresh registry:
/// one eyeball AS per country, three datacenter ASes, one VPN exit per
/// vantage-point country.
pub fn standard_registry() -> AsnRegistry {
    let mut reg = AsnRegistry::new();
    for (i, c) in Country::ALL.iter().enumerate() {
        reg.register(
            AsnId(10_000 + i as u32),
            format!("Eyeball-{}", c.code()),
            AsnKind::Eyeball,
            *c,
        )
        .expect("unique");
    }
    reg.register(
        AsnId(14_061),
        "Digital Ocean",
        AsnKind::Datacenter,
        Country::Us,
    )
    .expect("unique");
    reg.register(AsnId(16_509), "AWS", AsnKind::Datacenter, Country::Us)
        .expect("unique");
    reg.register(AsnId(24_940), "Hetzner", AsnKind::Datacenter, Country::De)
        .expect("unique");
    for (i, c) in Country::VANTAGE_POINTS.iter().enumerate() {
        reg.register(
            AsnId(9_000 + i as u32),
            format!("Luminati-{}", c.code()),
            AsnKind::VpnExit,
            *c,
        )
        .expect("unique");
    }
    reg
}

/// The eyeball AS serving a country in [`standard_registry`].
pub fn eyeball_asn(country: Country) -> AsnId {
    let idx = Country::ALL
        .iter()
        .position(|c| *c == country)
        .expect("known country");
    AsnId(10_000 + idx as u32)
}

/// The VPN exit AS for a vantage-point country.
pub fn vpn_asn(country: Country) -> Option<AsnId> {
    Country::VANTAGE_POINTS
        .iter()
        .position(|c| *c == country)
        .map(|i| AsnId(9_000 + i as u32))
}

/// A generated audience for one platform.
#[derive(Debug)]
pub struct IipAudience {
    /// The platform.
    pub iip: IipId,
    /// Workers in arrival order.
    pub workers: Vec<Worker>,
    /// Devices by id.
    pub devices: BTreeMap<DeviceId, Device>,
}

/// Device-id namespace span per population shard. Shard `k > 0` of an
/// audience allocates device ids from `id_base + k * SHARD_DEVICE_SPAN`
/// so shards of the same platform (and of different platforms, whose
/// `id_base`s are ~1M apart) can never collide.
pub const SHARD_DEVICE_SPAN: u64 = 1 << 40;

impl IipAudience {
    /// Generates `n_workers` workers (farm operators contribute many
    /// devices each). Ids are namespaced by `id_base` so audiences of
    /// different platforms never collide.
    pub fn generate(
        profile: &IipBehaviorProfile,
        n_workers: usize,
        registry: &mut AsnRegistry,
        seed: SeedFork,
        id_base: u64,
    ) -> IipAudience {
        Self::generate_shard(profile, n_workers, registry, seed, id_base, 0, 0, id_base)
    }

    /// Generates one shard of a sharded audience.
    ///
    /// Shard 0 draws from the legacy `audience` seed stream, so a
    /// single-shard generation reproduces [`IipAudience::generate`]
    /// bit-for-bit. Shard `k > 0` draws from an independent
    /// `fork_idx("shard", k)` stream — shard contents are a pure
    /// function of `(seed, shard, n_workers, worker_offset,
    /// device_base)` plus the registry allocation state, never of how
    /// many OS workers later simulate them. Worker ids stay globally
    /// indexed (`id_base + worker_offset + w`) so the audience-wide
    /// worker-id space is identical at any shard count.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_shard(
        profile: &IipBehaviorProfile,
        n_workers: usize,
        registry: &mut AsnRegistry,
        seed: SeedFork,
        id_base: u64,
        shard: usize,
        worker_offset: u64,
        device_base: u64,
    ) -> IipAudience {
        let audience_seed = seed.fork("audience");
        let mut rng = if shard == 0 {
            audience_seed.rng()
        } else {
            audience_seed.fork_idx("shard", shard as u64).rng()
        };
        let mut workers = Vec::with_capacity(n_workers);
        let mut devices = BTreeMap::new();
        let mut next_device = device_base;
        for w in 0..n_workers {
            let wid = id_base + worker_offset + w as u64;
            let kind = profile.sample_kind(&mut rng);
            let country = sample_country(&mut rng);
            let n_devices = match kind {
                WorkerKind::FarmOperator => {
                    rng.gen_range(profile.farm_size.0..=profile.farm_size.1)
                }
                WorkerKind::BotOperator => rng.gen_range(2..=5),
                _ => 1,
            };
            // Farms share one /24 and one SSID.
            let farm_block = if kind == WorkerKind::FarmOperator {
                Some(
                    registry
                        .alloc_block(eyeball_asn(country))
                        .expect("block space"),
                )
            } else {
                None
            };
            let farm_ssid = format!("FARM-AP-{wid}");
            let mut device_ids = Vec::with_capacity(n_devices);
            for _ in 0..n_devices {
                let id = DeviceId(next_device);
                next_device += 1;
                let device = spawn_device(
                    id, kind, country, profile, farm_block, &farm_ssid, registry, &mut rng,
                );
                device_ids.push(id);
                devices.insert(id, device);
            }
            workers.push(Worker {
                id: WorkerId(wid),
                kind,
                devices: device_ids,
            });
        }
        IipAudience {
            iip: profile.iip,
            workers,
            devices,
        }
    }

    /// Generates a full audience as `shards` independently-seeded
    /// shards merged in shard-index order. Workers are split into
    /// contiguous balanced chunks; registry allocations happen
    /// sequentially shard-by-shard so the address plan is a pure
    /// function of `(seed, shards)`. `shards = 1` is bit-identical to
    /// [`IipAudience::generate`].
    pub fn generate_sharded(
        profile: &IipBehaviorProfile,
        n_workers: usize,
        registry: &mut AsnRegistry,
        seed: SeedFork,
        id_base: u64,
        shards: usize,
    ) -> IipAudience {
        let shards = shards.max(1);
        let base = n_workers / shards;
        let rem = n_workers % shards;
        let mut workers = Vec::with_capacity(n_workers);
        let mut devices = BTreeMap::new();
        let mut worker_offset = 0u64;
        for k in 0..shards {
            let chunk = base + usize::from(k < rem);
            let part = Self::generate_shard(
                profile,
                chunk,
                registry,
                seed,
                id_base,
                k,
                worker_offset,
                id_base + k as u64 * SHARD_DEVICE_SPAN,
            );
            worker_offset += chunk as u64;
            workers.extend(part.workers);
            for (id, d) in part.devices {
                let prev = devices.insert(id, d);
                debug_assert!(prev.is_none(), "shard device namespaces are disjoint");
            }
        }
        IipAudience {
            iip: profile.iip,
            workers,
            devices,
        }
    }

    /// Device lookup.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(&id)
    }

    /// Total devices across all workers.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }
}

fn sample_country(rng: &mut impl Rng) -> Country {
    let weights: Vec<f64> = WORKER_COUNTRIES.iter().map(|(_, w)| *w).collect();
    WORKER_COUNTRIES[weighted_index(rng, &weights).expect("weights")].0
}

#[allow(clippy::too_many_arguments)]
fn spawn_device(
    id: DeviceId,
    kind: WorkerKind,
    country: Country,
    profile: &IipBehaviorProfile,
    farm_block: Option<iiscope_netsim::Block24>,
    farm_ssid: &str,
    registry: &mut AsnRegistry,
    rng: &mut impl Rng,
) -> Device {
    // Address + ASN.
    let addr = match kind {
        WorkerKind::BotOperator if chance(rng, 0.5) => {
            // Cloud-hosted: §3.2's "ASNs of popular cloud services".
            let asn = if chance(rng, 0.6) {
                AsnId(14_061)
            } else {
                AsnId(16_509)
            };
            registry.alloc_host_fresh_block(asn).expect("dc space")
        }
        WorkerKind::FarmOperator => registry
            .alloc_host(eyeball_asn(country), farm_block.expect("farm block"))
            .expect("farm space"),
        _ => registry
            .alloc_host_fresh_block(eyeball_asn(country))
            .expect("eyeball space"),
    };

    // Build string + root state.
    let (build, rooted) = match kind {
        WorkerKind::BotOperator => {
            if chance(rng, 0.5) {
                (
                    EMULATOR_BUILDS[rng.gen_range(0..EMULATOR_BUILDS.len())].to_string(),
                    true,
                )
            } else {
                (
                    HANDSET_BUILDS[rng.gen_range(0..HANDSET_BUILDS.len())].to_string(),
                    true,
                )
            }
        }
        WorkerKind::FarmOperator => (
            HANDSET_BUILDS[rng.gen_range(0..HANDSET_BUILDS.len())].to_string(),
            chance(rng, 0.9),
        ),
        WorkerKind::SemiPro => (
            HANDSET_BUILDS[rng.gen_range(0..HANDSET_BUILDS.len())].to_string(),
            chance(rng, 0.15),
        ),
        WorkerKind::Casual => (
            HANDSET_BUILDS[rng.gen_range(0..HANDSET_BUILDS.len())].to_string(),
            chance(rng, 0.02),
        ),
    };

    // SSID: farms share, others have their own (bots on wired DC have
    // none).
    let wifi_ssid = match kind {
        WorkerKind::FarmOperator => Some(farm_ssid.to_string()),
        WorkerKind::BotOperator if addr.asn_kind == AsnKind::Datacenter => None,
        _ => Some(format!("AP-{}", id.raw())),
    };

    // Installed packages: mundane base + money apps at the calibrated
    // rate, with the platform's signature app boosted.
    let mut installed = Vec::new();
    for _ in 0..rng.gen_range(2..6) {
        let p = MUNDANE_APP_POOL[rng.gen_range(0..MUNDANE_APP_POOL.len())];
        installed.push(PackageName::new(p).expect("valid"));
    }
    if chance(rng, profile.money_keyword_rate) {
        let n = rng.gen_range(1..4);
        for _ in 0..n {
            let p = MONEY_APP_POOL[rng.gen_range(0..MONEY_APP_POOL.len())];
            let pkg = PackageName::new(p).expect("valid");
            if !installed.contains(&pkg) {
                installed.push(pkg);
            }
        }
    }
    let (top_pkg, top_share) = profile.top_affiliate;
    // Conditional boost so the signature app hits its §3.2 share.
    if chance(rng, top_share) {
        let pkg = PackageName::new(top_pkg).expect("valid");
        if !installed.contains(&pkg) {
            installed.push(pkg);
        }
    }

    Device {
        id,
        addr,
        build,
        rooted,
        wifi_ssid,
        installed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audience(iip: IipId, n: usize) -> IipAudience {
        let mut reg = standard_registry();
        let profile = IipBehaviorProfile::for_iip(iip);
        IipAudience::generate(&profile, n, &mut reg, SeedFork::new(1).fork(iip.name()), 0)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = audience(IipId::Fyber, 50);
        let b = audience(IipId::Fyber, 50);
        assert_eq!(a.device_count(), b.device_count());
        for (id, d) in &a.devices {
            let other = b.device(*id).unwrap();
            assert_eq!(d.addr.ip, other.addr.ip);
            assert_eq!(d.build, other.build);
            assert_eq!(d.installed, other.installed);
        }
    }

    #[test]
    fn farms_share_block_and_ssid() {
        let a = audience(IipId::RankApp, 80);
        let farm = a
            .workers
            .iter()
            .find(|w| w.kind == WorkerKind::FarmOperator)
            .expect("RankApp is farm-heavy");
        assert!(farm.devices.len() >= 10);
        let first = a.device(farm.devices[0]).unwrap();
        let rooted = farm
            .devices
            .iter()
            .filter(|d| a.device(**d).unwrap().rooted)
            .count();
        for d in &farm.devices {
            let dev = a.device(*d).unwrap();
            assert_eq!(dev.block24_key(), first.block24_key(), "same /24");
            assert_eq!(dev.wifi_ssid, first.wifi_ssid, "same SSID");
        }
        assert!(
            rooted * 10 >= farm.devices.len() * 7,
            "farms are mostly rooted"
        );
    }

    #[test]
    fn rankapp_money_keyword_rate_near_98_percent() {
        let a = audience(IipId::RankApp, 120);
        let with_kw = a
            .devices
            .values()
            .filter(|d| d.has_money_keyword_app())
            .count();
        let rate = with_kw as f64 / a.device_count() as f64;
        assert!(rate > 0.93, "rate {rate}");
    }

    #[test]
    fn fyber_money_keyword_rate_much_lower() {
        let a = audience(IipId::Fyber, 400);
        // Only count single-device human workers to match §3.2's
        // per-user framing.
        let rate = a
            .devices
            .values()
            .filter(|d| d.has_money_keyword_app())
            .count() as f64
            / a.device_count() as f64;
        assert!((0.30..0.65).contains(&rate), "rate {rate}");
    }

    #[test]
    fn signature_app_share() {
        let a = audience(IipId::RankApp, 150);
        let pkg = PackageName::new("eu.gcashapp").unwrap();
        let share = a.devices.values().filter(|d| d.has_package(&pkg)).count() as f64
            / a.device_count() as f64;
        assert!((0.25..0.75).contains(&share), "gcashapp share {share}");
    }

    #[test]
    fn bots_sometimes_sit_in_datacenters() {
        let mut reg = standard_registry();
        let mut profile = IipBehaviorProfile::for_iip(IipId::Fyber);
        // Force an all-bot audience for the check.
        profile.kind_weights = [
            (WorkerKind::BotOperator, 1.0),
            (WorkerKind::Casual, 0.0),
            (WorkerKind::SemiPro, 0.0),
            (WorkerKind::FarmOperator, 0.0),
        ];
        let a = IipAudience::generate(&profile, 40, &mut reg, SeedFork::new(3), 0);
        let dc = a
            .devices
            .values()
            .filter(|d| d.addr.asn_kind == AsnKind::Datacenter)
            .count();
        let emu = a
            .devices
            .values()
            .filter(|d| d.looks_like_emulator())
            .count();
        assert!(dc > 0, "some bots on cloud hosts");
        assert!(emu > 0, "some bots on emulators");
    }

    #[test]
    fn ids_are_namespaced_by_base() {
        let mut reg = standard_registry();
        let profile = IipBehaviorProfile::for_iip(IipId::Fyber);
        let a = IipAudience::generate(&profile, 10, &mut reg, SeedFork::new(4), 0);
        let b = IipAudience::generate(&profile, 10, &mut reg, SeedFork::new(4), 1_000_000);
        for id in a.devices.keys() {
            assert!(!b.devices.contains_key(id), "collision at {id}");
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_legacy_generation() {
        let profile = IipBehaviorProfile::for_iip(IipId::Fyber);
        let seed = SeedFork::new(11).fork("fyber");
        let mut reg_a = standard_registry();
        let a = IipAudience::generate(&profile, 60, &mut reg_a, seed, 5_000);
        let mut reg_b = standard_registry();
        let b = IipAudience::generate_sharded(&profile, 60, &mut reg_b, seed, 5_000, 1);
        assert_eq!(a.workers.len(), b.workers.len());
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.id, wb.id);
            assert_eq!(wa.kind, wb.kind);
            assert_eq!(wa.devices, wb.devices);
        }
        for (id, da) in &a.devices {
            let db = b.device(*id).expect("same device set");
            assert_eq!(da.addr.ip, db.addr.ip);
            assert_eq!(da.build, db.build);
            assert_eq!(da.wifi_ssid, db.wifi_ssid);
            assert_eq!(da.installed, db.installed);
        }
    }

    #[test]
    fn sharded_generation_is_deterministic_and_disjoint() {
        let profile = IipBehaviorProfile::for_iip(IipId::AyetStudios);
        let seed = SeedFork::new(12).fork("ayet");
        let gen = |shards| {
            let mut reg = standard_registry();
            IipAudience::generate_sharded(&profile, 70, &mut reg, seed, 9_000, shards)
        };
        let a = gen(4);
        let b = gen(4);
        assert_eq!(a.workers.len(), 70, "worker count preserved");
        assert_eq!(a.device_count(), b.device_count(), "deterministic");
        for (id, d) in &a.devices {
            assert_eq!(b.device(*id).unwrap().addr.ip, d.addr.ip);
        }
        // Worker-id space is the legacy one regardless of shard count.
        let ids: Vec<u64> = a.workers.iter().map(|w| w.id.0).collect();
        assert_eq!(ids, (9_000..9_070).collect::<Vec<u64>>());
        // Device ids land in per-shard namespaces; every worker's
        // devices exist in the merged map.
        for w in &a.workers {
            for d in &w.devices {
                assert!(a.device(*d).is_some());
            }
        }
        // A different shard count is a *different* (still valid)
        // population — shard streams are independent.
        let c = gen(2);
        assert_eq!(c.workers.len(), 70);
    }

    #[test]
    fn shard_generation_is_pure_in_its_inputs() {
        let profile = IipBehaviorProfile::for_iip(IipId::OfferToro);
        let seed = SeedFork::new(13).fork("otoro");
        let mut reg_a = standard_registry();
        let a = IipAudience::generate_shard(
            &profile,
            20,
            &mut reg_a,
            seed,
            100,
            3,
            40,
            100 + 3 * SHARD_DEVICE_SPAN,
        );
        let mut reg_b = standard_registry();
        let b = IipAudience::generate_shard(
            &profile,
            20,
            &mut reg_b,
            seed,
            100,
            3,
            40,
            100 + 3 * SHARD_DEVICE_SPAN,
        );
        assert_eq!(a.workers.len(), b.workers.len());
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.id, wb.id);
            assert_eq!(wa.devices, wb.devices);
        }
        // Device ids sit in shard 3's namespace.
        for id in a.devices.keys() {
            assert!(id.raw() >= 3 * SHARD_DEVICE_SPAN);
        }
    }

    #[test]
    fn registry_helpers() {
        let reg = standard_registry();
        assert!(reg.get(eyeball_asn(Country::In)).is_some());
        assert_eq!(
            reg.get(eyeball_asn(Country::De)).unwrap().kind,
            AsnKind::Eyeball
        );
        assert!(vpn_asn(Country::Us).is_some());
        assert!(vpn_asn(Country::Br).is_none());
        assert_eq!(reg.get(AsnId(14_061)).unwrap().name, "Digital Ocean");
    }
}
