//! §3.2's analyses over the collected telemetry.
//!
//! Campaigns are "spread over time such that no two campaigns deliver
//! installs at the same time", so records are attributed to an IIP by
//! time window — exactly the paper's attribution logic.

use crate::app::{TelemetryEvent, TelemetryRecord};
use crate::campaign::CampaignOutcome;
use crate::collector::Collector;
use iiscope_types::{IipId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// The observation window of one campaign: delivery plus two days of
/// residual engagement.
fn window(outcome: &CampaignOutcome) -> (SimTime, SimTime) {
    (
        outcome.started_at,
        outcome.finished_at + SimDuration::from_days(2),
    )
}

fn records_in(
    records: &[TelemetryRecord],
    w: (SimTime, SimTime),
) -> impl Iterator<Item = &TelemetryRecord> {
    records.iter().filter(move |r| r.at >= w.0 && r.at < w.1)
}

/// User-acquisition findings (§3.2, first bullet).
#[derive(Debug, Clone, PartialEq)]
pub struct AcquisitionFindings {
    /// Per IIP: (delivered installs, installs that produced telemetry,
    /// missing-telemetry fraction, delivery duration).
    pub per_iip: Vec<(IipId, u64, u64, f64, SimDuration)>,
    /// Total installs across all campaigns (the paper's 1,679).
    pub total_installs: u64,
}

impl AcquisitionFindings {
    /// Computes the acquisition table from campaign outcomes and the
    /// collector's records.
    pub fn compute(outcomes: &[CampaignOutcome], collector: &Collector) -> AcquisitionFindings {
        let records = collector.records();
        let per_iip = outcomes
            .iter()
            .map(|o| {
                let ids: BTreeSet<u64> = records_in(&records, window(o))
                    .map(|r| r.install_id)
                    .collect();
                let reported = ids.len() as u64;
                let missing = if o.installs_delivered == 0 {
                    0.0
                } else {
                    1.0 - reported as f64 / o.installs_delivered as f64
                };
                (
                    o.iip,
                    o.installs_delivered,
                    reported,
                    missing,
                    o.delivery_duration(),
                )
            })
            .collect();
        AcquisitionFindings {
            per_iip,
            total_installs: outcomes.iter().map(|o| o.installs_delivered).sum(),
        }
    }
}

/// Engagement findings (§3.2, second bullet).
#[derive(Debug, Clone, PartialEq)]
pub struct EngagementFindings {
    /// Per IIP: fraction of *delivered* installs that clicked the
    /// record button during the campaign window.
    pub click_rate: Vec<(IipId, f64)>,
    /// Per IIP: number of distinct installs clicking the record button
    /// one day or more after their first appearance.
    pub day2_clickers: Vec<(IipId, u64)>,
}

impl EngagementFindings {
    /// Computes engagement metrics.
    pub fn compute(outcomes: &[CampaignOutcome], collector: &Collector) -> EngagementFindings {
        let records = collector.records();
        let mut click_rate = Vec::new();
        let mut day2 = Vec::new();
        for o in outcomes {
            let w = window(o);
            // First-seen day per install.
            let mut first_seen: BTreeMap<u64, u64> = BTreeMap::new();
            for r in records_in(&records, w) {
                let e = first_seen.entry(r.install_id).or_insert(r.at.days());
                *e = (*e).min(r.at.days());
            }
            let clickers: BTreeSet<u64> = records_in(&records, w)
                .filter(|r| r.event == TelemetryEvent::RecordClick)
                .map(|r| r.install_id)
                .collect();
            let rate = if o.installs_delivered == 0 {
                0.0
            } else {
                clickers.len() as f64 / o.installs_delivered as f64
            };
            click_rate.push((o.iip, rate));
            let late: BTreeSet<u64> = records_in(&records, w)
                .filter(|r| {
                    r.event == TelemetryEvent::RecordClick
                        && first_seen
                            .get(&r.install_id)
                            .is_some_and(|d| r.at.days() > *d)
                })
                .map(|r| r.install_id)
                .collect();
            day2.push((o.iip, late.len() as u64));
        }
        EngagementFindings {
            click_rate,
            day2_clickers: day2,
        }
    }

    /// Click rate for one IIP.
    pub fn rate_for(&self, iip: IipId) -> Option<f64> {
        self.click_rate
            .iter()
            .find(|(i, _)| *i == iip)
            .map(|(_, r)| *r)
    }
}

/// A detected device farm: many installs behind one /24.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmSighting {
    /// The shared /24 label.
    pub block24: String,
    /// Installs from the block.
    pub installs: u64,
    /// How many of them are rooted.
    pub rooted: u64,
    /// How many share the block's dominant SSID hash.
    pub same_ssid: u64,
}

/// Install forensics (§3.2, "Incentivized Users").
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicFindings {
    /// Installs flagged as emulators.
    pub emulator_installs: u64,
    /// Installs connecting from datacenter ASNs.
    pub datacenter_installs: u64,
    /// Device farms (≥ `FARM_THRESHOLD` installs in one /24).
    pub farms: Vec<FarmSighting>,
    /// Per IIP: fraction of reporting installs with ≥1 money-keyword
    /// app installed.
    pub money_keyword_rate: Vec<(IipId, f64)>,
    /// Per IIP: the most installed money-keyword package and its share
    /// of reporting installs.
    pub top_affiliate: Vec<(IipId, String, f64)>,
}

/// Installs behind a single /24 needed to call it a farm (the paper's
/// observed farm had 20).
pub const FARM_THRESHOLD: u64 = 10;

fn has_money_keyword(pkg: &str) -> bool {
    const KW: [&str; 5] = ["money", "reward", "cash", "earn", "rich"];
    let lower = pkg.to_ascii_lowercase();
    KW.iter().any(|k| lower.contains(k))
}

impl ForensicFindings {
    /// Computes the forensic summary.
    pub fn compute(outcomes: &[CampaignOutcome], collector: &Collector) -> ForensicFindings {
        let records = collector.records();
        // Deduplicate to one representative record per install (its
        // first upload).
        let mut first: BTreeMap<u64, &TelemetryRecord> = BTreeMap::new();
        for r in &records {
            first
                .entry(r.install_id)
                .and_modify(|cur| {
                    if r.at < cur.at {
                        *cur = r;
                    }
                })
                .or_insert(r);
        }
        let installs: Vec<&TelemetryRecord> = first.values().copied().collect();

        let emulator_installs = installs.iter().filter(|r| r.emulator_suspected).count() as u64;
        let datacenter_installs = installs
            .iter()
            .filter(|r| r.asn_kind == "datacenter")
            .count() as u64;

        // Farms: group by /24.
        let mut per_block: BTreeMap<&str, Vec<&TelemetryRecord>> = BTreeMap::new();
        for r in &installs {
            per_block.entry(r.block24.as_str()).or_default().push(r);
        }
        let mut farms = Vec::new();
        for (block, group) in per_block {
            if (group.len() as u64) < FARM_THRESHOLD {
                continue;
            }
            let rooted = group.iter().filter(|r| r.rooted).count() as u64;
            // Dominant SSID hash.
            let mut ssids: BTreeMap<u64, u64> = BTreeMap::new();
            for r in &group {
                if let Some(h) = r.ssid_hash {
                    *ssids.entry(h).or_default() += 1;
                }
            }
            let same_ssid = ssids.values().copied().max().unwrap_or(0);
            farms.push(FarmSighting {
                block24: block.to_string(),
                installs: group.len() as u64,
                rooted,
                same_ssid,
            });
        }
        farms.sort_by(|a, b| b.installs.cmp(&a.installs).then(a.block24.cmp(&b.block24)));

        // Per-IIP keyword and top-affiliate analysis over the windows.
        let mut money_keyword_rate = Vec::new();
        let mut top_affiliate = Vec::new();
        for o in outcomes {
            let w = window(o);
            let in_window: Vec<&&TelemetryRecord> = installs
                .iter()
                .filter(|r| r.at >= w.0 && r.at < w.1)
                .collect();
            if in_window.is_empty() {
                money_keyword_rate.push((o.iip, 0.0));
                top_affiliate.push((o.iip, String::new(), 0.0));
                continue;
            }
            let with_kw = in_window
                .iter()
                .filter(|r| r.installed.iter().any(|p| has_money_keyword(p)))
                .count();
            money_keyword_rate.push((o.iip, with_kw as f64 / in_window.len() as f64));

            let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
            for r in &in_window {
                for p in &r.installed {
                    if has_money_keyword(p) {
                        *counts.entry(p.as_str()).or_default() += 1;
                    }
                }
            }
            let (top, n) = counts
                .into_iter()
                .max_by_key(|(p, n)| (*n, std::cmp::Reverse(p.to_string())))
                .unwrap_or(("", 0));
            top_affiliate.push((o.iip, top.to_string(), n as f64 / in_window.len() as f64));
        }

        ForensicFindings {
            emulator_installs,
            datacenter_installs,
            farms,
            money_keyword_rate,
            top_affiliate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        install_id: u64,
        at_secs: u64,
        event: TelemetryEvent,
        block: &str,
        rooted: bool,
        ssid: Option<u64>,
        installed: Vec<&str>,
    ) -> TelemetryRecord {
        TelemetryRecord {
            at: SimTime::from_secs(at_secs),
            install_id,
            event,
            build: "samsung/SM-G960F".into(),
            emulator_suspected: false,
            rooted,
            ssid_hash: ssid,
            block24: block.into(),
            asn: 1,
            asn_kind: "eyeball".into(),
            installed: installed.into_iter().map(str::to_string).collect(),
        }
    }

    fn outcome(iip: IipId, start: u64, end: u64, delivered: u64) -> CampaignOutcome {
        CampaignOutcome {
            iip,
            purchased: delivered,
            started_at: SimTime::from_secs(start),
            finished_at: SimTime::from_secs(end),
            installs_delivered: delivered,
            completions_paid: delivered,
            tag: format!("{iip}-c1"),
            browse_misses: 0,
        }
    }

    #[test]
    fn acquisition_counts_missing_telemetry() {
        let c = Collector::new();
        // 4 delivered, 3 reported.
        for id in 0..3 {
            c.ingest(rec(
                id,
                100 + id,
                TelemetryEvent::Open,
                "1.2.3.0/24",
                false,
                None,
                vec![],
            ));
        }
        let o = outcome(IipId::RankApp, 0, 1_000, 4);
        let f = AcquisitionFindings::compute(&[o], &c);
        let (_, delivered, reported, missing, _) = f.per_iip[0];
        assert_eq!(delivered, 4);
        assert_eq!(reported, 3);
        assert!((missing - 0.25).abs() < 1e-9);
        assert_eq!(f.total_installs, 4);
    }

    #[test]
    fn engagement_click_rates_and_day2() {
        let c = Collector::new();
        let day = 86_400;
        // Install 1 opens and clicks on day 0, clicks again on day 1.
        c.ingest(rec(
            1,
            100,
            TelemetryEvent::Open,
            "a.0/24",
            false,
            None,
            vec![],
        ));
        c.ingest(rec(
            1,
            200,
            TelemetryEvent::RecordClick,
            "a.0/24",
            false,
            None,
            vec![],
        ));
        c.ingest(rec(
            1,
            day + 300,
            TelemetryEvent::RecordClick,
            "a.0/24",
            false,
            None,
            vec![],
        ));
        // Install 2 only opens.
        c.ingest(rec(
            2,
            400,
            TelemetryEvent::Open,
            "b.0/24",
            false,
            None,
            vec![],
        ));
        let o = outcome(IipId::Fyber, 0, 1_000, 2);
        let e = EngagementFindings::compute(&[o], &c);
        assert!((e.rate_for(IipId::Fyber).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(e.day2_clickers[0].1, 1);
    }

    #[test]
    fn forensics_find_farms() {
        let c = Collector::new();
        // A farm: 12 installs, one /24, 11 rooted, same SSID.
        for id in 0..12u64 {
            c.ingest(rec(
                id,
                100 + id,
                TelemetryEvent::Open,
                "10.9.9.0/24",
                id != 0,
                Some(0xFA51),
                vec!["eu.gcashapp"],
            ));
        }
        // Scattered ordinary installs.
        for id in 100..105u64 {
            c.ingest(rec(
                id,
                100 + id,
                TelemetryEvent::Open,
                &format!("10.0.{id}.0/24"),
                false,
                Some(id),
                vec!["com.whatsapp.clone"],
            ));
        }
        let o = outcome(IipId::RankApp, 0, 10_000, 17);
        let f = ForensicFindings::compute(&[o], &c);
        assert_eq!(f.farms.len(), 1);
        assert_eq!(f.farms[0].installs, 12);
        assert_eq!(f.farms[0].rooted, 11);
        assert_eq!(f.farms[0].same_ssid, 12);
        // Keyword rate: 12 of 17.
        let (_, rate) = f.money_keyword_rate[0];
        assert!((rate - 12.0 / 17.0).abs() < 1e-9);
        let (_, top, share) = f.top_affiliate[0].clone();
        assert_eq!(top, "eu.gcashapp");
        assert!((share - 12.0 / 17.0).abs() < 1e-9);
    }

    #[test]
    fn forensics_count_emulators_and_datacenters_once_per_install() {
        let c = Collector::new();
        let mut r = rec(1, 100, TelemetryEvent::Open, "x.0/24", false, None, vec![]);
        r.emulator_suspected = true;
        r.asn_kind = "datacenter".into();
        c.ingest(r.clone());
        r.at = SimTime::from_secs(200);
        r.event = TelemetryEvent::RecordClick;
        c.ingest(r);
        let f = ForensicFindings::compute(&[], &c);
        assert_eq!(f.emulator_installs, 1);
        assert_eq!(f.datacenter_installs, 1);
        assert!(f.farms.is_empty());
    }
}
