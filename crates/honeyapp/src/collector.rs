//! The researchers' telemetry collection server.
//!
//! §3.1: "This information is uploaded to our server … communication
//! with our server happens over encrypted channels." The collector is
//! an ordinary [`Handler`] served behind the workspace's TLS layer
//! (wired up by `iiscope-core`); it derives the AS facts from the
//! connection's peer info — which is how §3.2 can say installs
//! "connect from ASNs of popular cloud services".

use crate::app::{parse_payload, TelemetryRecord};
use iiscope_wire::http::RequestCtx;
use iiscope_wire::{Handler, Json, Request, Response};
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared telemetry store + HTTP ingestion endpoint.
#[derive(Clone, Default)]
pub struct Collector {
    records: Arc<Mutex<Vec<TelemetryRecord>>>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing was uploaded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<TelemetryRecord> {
        self.records.lock().clone()
    }

    /// Directly ingests a record (tests / offline replay).
    pub fn ingest(&self, record: TelemetryRecord) {
        self.records.lock().push(record);
    }

    /// Distinct install ids seen — §3.2's "installs our server knows
    /// about" (missing ids = the app was never opened).
    pub fn distinct_installs(&self) -> usize {
        let ids: std::collections::BTreeSet<u64> =
            self.records.lock().iter().map(|r| r.install_id).collect();
        ids.len()
    }
}

impl Handler for Collector {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        if req.path() != "/v1/telemetry" {
            return Response::not_found();
        }
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return Response::status(400);
        };
        let Ok(json) = Json::parse(body) else {
            return Response::status(400);
        };
        match parse_payload(&json, ctx.now, ctx.peer.addr.asn.0, ctx.peer.addr.asn_kind) {
            Some(record) => {
                self.records.lock().push(record);
                Response::status(204)
            }
            None => Response::status(400),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{telemetry_payload, TelemetryEvent};
    use iiscope_devices::Device;
    use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
    use iiscope_types::{Country, DeviceId, SimTime};
    use std::net::Ipv4Addr;

    fn ctx(kind: AsnKind) -> RequestCtx {
        RequestCtx {
            peer: PeerInfo {
                addr: HostAddr {
                    ip: Ipv4Addr::new(198, 51, 100, 20),
                    asn: AsnId(14061),
                    asn_kind: kind,
                    country: Country::Us,
                },
                opened_at: SimTime::EPOCH,
                link: iiscope_types::SeedFork::new(1),
            },
            now: SimTime::from_secs(99),
        }
    }

    fn device() -> Device {
        Device {
            id: DeviceId(1),
            addr: HostAddr {
                ip: Ipv4Addr::new(198, 51, 100, 20),
                asn: AsnId(14061),
                asn_kind: AsnKind::Datacenter,
                country: Country::Us,
            },
            build: "genymotion/vbox86p".into(),
            rooted: true,
            wifi_ssid: None,
            installed: vec![],
        }
    }

    #[test]
    fn ingestion_over_http() {
        let c = Collector::new();
        let payload = telemetry_payload(&device(), 7, TelemetryEvent::Open);
        let req = Request::post("/v1/telemetry", payload.to_bytes());
        let resp = c.handle(&req, &ctx(AsnKind::Datacenter));
        assert_eq!(resp.status, 204);
        assert_eq!(c.len(), 1);
        let rec = &c.records()[0];
        assert_eq!(rec.at, SimTime::from_secs(99));
        assert_eq!(rec.asn, 14061);
        assert_eq!(rec.asn_kind, "datacenter");
        assert!(rec.emulator_suspected);
    }

    #[test]
    fn bad_bodies_rejected() {
        let c = Collector::new();
        let ctx = ctx(AsnKind::Eyeball);
        assert_eq!(
            c.handle(&Request::post("/v1/telemetry", b"not json".to_vec()), &ctx)
                .status,
            400
        );
        assert_eq!(
            c.handle(&Request::post("/v1/telemetry", b"{}".to_vec()), &ctx)
                .status,
            400
        );
        assert_eq!(c.handle(&Request::get("/other"), &ctx).status, 404);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_installs_dedups_events() {
        let c = Collector::new();
        let d = device();
        for (id, ev) in [
            (1u64, TelemetryEvent::Open),
            (1, TelemetryEvent::RecordClick),
            (2, TelemetryEvent::Open),
        ] {
            let payload = telemetry_payload(&d, id, ev);
            c.handle(
                &Request::post("/v1/telemetry", payload.to_bytes()),
                &ctx(AsnKind::Eyeball),
            );
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.distinct_installs(), 2);
    }
}
