//! # iiscope-honeyapp
//!
//! The Section 3 apparatus: a purpose-built "voice memos saving" app
//! published on the (simulated) Play Store, instrumented to upload
//! metadata to a collection server, plus the campaign driver that
//! purchases incentivized installs from IIPs and the report generator
//! for §3.2's findings.
//!
//! * [`app`] — the honey app and its telemetry payload builder, with
//!   the paper's privacy measures baked in (hash the SSID, drop the
//!   last IPv4 octet, never collect IMEI/IMSI).
//! * [`collector`] — the researchers' HTTPS collection endpoint and
//!   queryable telemetry store.
//! * [`campaign`] — runs a purchase of N installs on one IIP end to
//!   end: worker arrivals at the platform's delivery rate, Play
//!   installs with device signals, mediator conversions, payouts, and
//!   telemetry uploads over the real (simulated) TLS network path.
//! * [`report`] — §3.2's analyses: user acquisition, engagement decay,
//!   and install forensics (emulators, cloud ASNs, device farms,
//!   money-keyword affiliate apps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod campaign;
pub mod collector;
pub mod report;

pub use app::{TelemetryEvent, TelemetryRecord, HONEY_PACKAGE, HONEY_TITLE};
pub use campaign::{CampaignDriver, CampaignOutcome};
pub use collector::Collector;
pub use report::{AcquisitionFindings, EngagementFindings, ForensicFindings};
