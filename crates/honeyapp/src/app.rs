//! The honey app and its telemetry.
//!
//! §3.1: "We customize an open-source 'voice memos saving' Android app
//! and publish it on the Google Play Store … our honey app collects
//! information about user in-app activity (e.g., clicks on voice memo
//! record button) and device information (e.g., list of other installed
//! apps, device build, WiFi SSIDs, the /24 block of the public IPv4
//! address, and signals to identify whether the device is rooted).
//! This information is uploaded to our server whenever the user opens
//! our honey app or clicks the voice memo record button."
//!
//! The Ethics paragraph's privacy measures are enforced structurally:
//! the payload type has no field that *could* carry an IMEI or a full
//! IP, and the SSID only exists in hashed form.

use iiscope_devices::Device;
use iiscope_netsim::AsnKind;
use iiscope_types::SimTime;
use iiscope_wire::Json;

/// Package name of the honey app.
pub const HONEY_PACKAGE: &str = "net.iiscope.voicememos";
/// Display title of the honey app.
pub const HONEY_TITLE: &str = "Voice Memos - Easy Recorder";

/// In-app events that trigger a telemetry upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// The app was opened.
    Open,
    /// The record button — the app's only functionality — was clicked.
    RecordClick,
}

impl TelemetryEvent {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            TelemetryEvent::Open => "open",
            TelemetryEvent::RecordClick => "record_click",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<TelemetryEvent> {
        match s {
            "open" => Some(TelemetryEvent::Open),
            "record_click" => Some(TelemetryEvent::RecordClick),
            _ => None,
        }
    }
}

/// One telemetry upload, as stored server-side.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Server receive time.
    pub at: SimTime,
    /// Install-scoped pseudonymous id (not a hardware id).
    pub install_id: u64,
    /// Which event fired.
    pub event: TelemetryEvent,
    /// Device build string.
    pub build: String,
    /// Client-side emulator heuristic result.
    pub emulator_suspected: bool,
    /// RootBeer-style root signal.
    pub rooted: bool,
    /// FNV hash of the WiFi SSID, if on WiFi.
    pub ssid_hash: Option<u64>,
    /// /24 block of the public address, e.g. `203.0.113.0/24`.
    pub block24: String,
    /// Origin AS number (from the server's connection log).
    pub asn: u32,
    /// Origin AS kind label (`eyeball` / `datacenter` / `vpn`).
    pub asn_kind: String,
    /// Installed packages reported by the app.
    pub installed: Vec<String>,
}

/// Builds the upload JSON the instrumented app sends for `event`.
///
/// The /24 truncation happens client-side conceptually (the app reports
/// its public address block); the AS fields are derived server-side
/// from the connection and are not part of the body.
pub fn telemetry_payload(device: &Device, install_id: u64, event: TelemetryEvent) -> Json {
    let block = device.addr.block();
    Json::obj([
        ("install_id", Json::Int(install_id as i64)),
        ("event", Json::str(event.label())),
        ("build", Json::str(&device.build)),
        ("emulator", Json::Bool(device.looks_like_emulator())),
        ("rooted", Json::Bool(device.rooted)),
        (
            "ssid_hash",
            match device.ssid_hash() {
                Some(h) => Json::str(format!("{h:016x}")),
                None => Json::Null,
            },
        ),
        ("block24", Json::str(block.to_string())),
        (
            "installed",
            Json::arr(device.installed.iter().map(|p| Json::str(p.as_str()))),
        ),
    ])
}

/// Parses an upload body back into a record (server side), attaching
/// the connection-derived fields.
pub fn parse_payload(
    body: &Json,
    at: SimTime,
    asn: u32,
    asn_kind: AsnKind,
) -> Option<TelemetryRecord> {
    let event = TelemetryEvent::parse(body.get("event")?.as_str()?)?;
    Some(TelemetryRecord {
        at,
        install_id: body.get("install_id")?.as_i64()? as u64,
        event,
        build: body.get("build")?.as_str()?.to_string(),
        emulator_suspected: body.get("emulator")?.as_bool()?,
        rooted: body.get("rooted")?.as_bool()?,
        ssid_hash: match body.get("ssid_hash") {
            Some(Json::Null) | None => None,
            Some(v) => Some(u64::from_str_radix(v.as_str()?, 16).ok()?),
        },
        block24: body.get("block24")?.as_str()?.to_string(),
        asn,
        asn_kind: match asn_kind {
            AsnKind::Eyeball => "eyeball".to_string(),
            AsnKind::Datacenter => "datacenter".to_string(),
            AsnKind::VpnExit => "vpn".to_string(),
        },
        installed: body
            .get("installed")?
            .as_array()?
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_netsim::{AsnId, HostAddr};
    use iiscope_types::{Country, DeviceId, PackageName};
    use std::net::Ipv4Addr;

    fn device() -> Device {
        Device {
            id: DeviceId(9),
            addr: HostAddr {
                ip: Ipv4Addr::new(203, 0, 113, 77),
                asn: AsnId(7922),
                asn_kind: AsnKind::Eyeball,
                country: Country::Us,
            },
            build: "samsung/SM-G960F".into(),
            rooted: true,
            wifi_ssid: Some("CoffeeShop".into()),
            installed: vec![PackageName::new("eu.gcashapp").unwrap()],
        }
    }

    #[test]
    fn payload_round_trips_through_parse() {
        let d = device();
        let payload = telemetry_payload(&d, 42, TelemetryEvent::RecordClick);
        let rec = parse_payload(&payload, SimTime::from_secs(5), 7922, AsnKind::Eyeball).unwrap();
        assert_eq!(rec.install_id, 42);
        assert_eq!(rec.event, TelemetryEvent::RecordClick);
        assert!(rec.rooted);
        assert!(!rec.emulator_suspected);
        assert_eq!(rec.block24, "203.0.113.0/24");
        assert_eq!(rec.ssid_hash, d.ssid_hash());
        assert_eq!(rec.installed, vec!["eu.gcashapp".to_string()]);
        assert_eq!(rec.asn_kind, "eyeball");
    }

    #[test]
    fn privacy_last_octet_never_leaves_the_device() {
        let d = device();
        let text = telemetry_payload(&d, 1, TelemetryEvent::Open).to_string();
        assert!(!text.contains("113.77"), "full IP leaked: {text}");
        assert!(text.contains("203.0.113.0/24"));
    }

    #[test]
    fn privacy_ssid_only_hashed() {
        let d = device();
        let text = telemetry_payload(&d, 1, TelemetryEvent::Open).to_string();
        assert!(!text.contains("CoffeeShop"), "raw SSID leaked");
        let mut no_wifi = device();
        no_wifi.wifi_ssid = None;
        let payload = telemetry_payload(&no_wifi, 1, TelemetryEvent::Open);
        assert!(payload.get("ssid_hash").unwrap().is_null());
    }

    #[test]
    fn event_labels_round_trip() {
        for e in [TelemetryEvent::Open, TelemetryEvent::RecordClick] {
            assert_eq!(TelemetryEvent::parse(e.label()), Some(e));
        }
        assert_eq!(TelemetryEvent::parse("imei_upload"), None);
    }

    #[test]
    fn malformed_payload_rejected() {
        let bad = Json::obj([("event", Json::str("open"))]);
        assert!(parse_payload(&bad, SimTime::EPOCH, 1, AsnKind::Eyeball).is_none());
    }
}
