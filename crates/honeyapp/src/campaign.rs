//! The §3.2 campaign driver: purchase N incentivized installs from one
//! IIP and watch what arrives.
//!
//! The driver wires every subsystem the real experiment touched:
//!
//! 1. a campaign is created on the platform (escrowed budget, offer on
//!    the wall) and its attribution tag registered with the mediator;
//! 2. workers from the platform's audience arrive at the platform's
//!    delivery rate; each worker's device installs the honey app on
//!    the Play Store (with its true quality signals and the campaign's
//!    attribution tag);
//! 3. workers who bother opening the app produce telemetry uploads
//!    over HTTPS to the collection server and conversion events at the
//!    mediator; completions become postbacks and settle the payout
//!    chain;
//! 4. the handful of next-day returns fire a day later.
//!
//! IIPs over-deliver a little (the paper bought 3 × 500 installs and
//! received 1,679), so delivery exceeds the purchased cap; only capped
//! completions are paid.

use crate::app::{telemetry_payload, TelemetryEvent, HONEY_PACKAGE};
use iiscope_attribution::{ConversionEvent, ConversionGoal, Mediator};
use iiscope_devices::AffiliateApp;
use iiscope_devices::{Device, ExecutionPlan, IipAudience};
use iiscope_iip::{CampaignSpec, IipPlatform};
use iiscope_netsim::Network;
use iiscope_playstore::{InstallSource, PlayStore};
use iiscope_types::rng::exponential;
use iiscope_types::{
    chaosstats, AppId, DeveloperId, Error, IipId, PackageName, Result, SeedFork, SimDuration,
    SimTime, Usd,
};
use iiscope_wire::tls::TrustStore;
use iiscope_wire::HttpClient;
use rand::Rng;
use std::sync::Arc;

/// Recursively searches a JSON tree for a string value equal to
/// `needle` — how a worker "sees" an app in whatever layout the wall
/// renders.
fn json_mentions(v: &iiscope_wire::Json, needle: &str) -> bool {
    use iiscope_wire::Json;
    match v {
        Json::Str(s) => s == needle,
        Json::Array(items) => items.iter().any(|i| json_mentions(i, needle)),
        Json::Object(map) => map.values().any(|i| json_mentions(i, needle)),
        _ => false,
    }
}

/// Result of one purchased campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// The platform the installs were bought from.
    pub iip: IipId,
    /// Installs purchased (the cap).
    pub purchased: u64,
    /// Campaign launch instant.
    pub started_at: SimTime,
    /// Instant of the last delivered install.
    pub finished_at: SimTime,
    /// Installs actually delivered (console view).
    pub installs_delivered: u64,
    /// Offer completions the platform paid out.
    pub completions_paid: u64,
    /// The campaign's attribution tag.
    pub tag: String,
    /// Workers who browsed the wall but never found the offer (geo
    /// filtering, pagination misses) and therefore did not install.
    pub browse_misses: u64,
}

impl CampaignOutcome {
    /// Wall-clock delivery duration.
    pub fn delivery_duration(&self) -> SimDuration {
        self.finished_at - self.started_at
    }
}

/// Everything a campaign needs access to.
pub struct CampaignDriver {
    /// The world's network (telemetry uploads travel on it).
    pub net: Network,
    /// The Play Store the honey app is published on.
    pub store: Arc<PlayStore>,
    /// The honey app's store id.
    pub honey_app: AppId,
    /// The developer account (ours) that pays for campaigns.
    pub developer: DeveloperId,
    /// The attribution mediator.
    pub mediator: Arc<Mediator>,
    /// Trust roots devices use for the telemetry upload.
    pub roots: TrustStore,
    /// Collector endpoint, e.g. `https://collector.iiscope/v1/telemetry`.
    pub collector_url: String,
    /// Determinism root.
    pub seed: SeedFork,
}

/// Over-delivery per platform, calibrated to §3.2's 626/550/503
/// deliveries on 500-install purchases.
fn overdelivery(iip: IipId) -> f64 {
    match iip {
        IipId::Fyber => 1.25,
        IipId::AyetStudios => 1.10,
        IipId::RankApp => 1.006,
        _ => 1.08,
    }
}

impl CampaignDriver {
    /// Purchases `purchased` no-activity installs on `platform` and
    /// simulates the delivery. The world clock ends past the last
    /// event.
    pub fn run(
        &self,
        platform: &IipPlatform,
        audience: &IipAudience,
        purchased: u64,
        payout: Usd,
        start: SimTime,
    ) -> Result<CampaignOutcome> {
        let iip = platform.id();
        let goal = ConversionGoal::InstallAndOpen;
        let (campaign_id, tag) = platform.create_campaign(
            CampaignSpec {
                developer: self.developer,
                package: PackageName::new(HONEY_PACKAGE).expect("valid package"),
                store_url: format!("https://play.iiscope/store/apps/details?id={HONEY_PACKAGE}"),
                goal: goal.clone(),
                payout,
                cap: purchased,
                countries: vec![],
            },
            start,
        )?;
        self.mediator.register_campaign(tag.clone(), goal.clone())?;

        // Arrival list: each *install* draws a worker archetype from
        // the platform's calibrated mix, then takes the next unused
        // device of that archetype. Farm devices therefore arrive in
        // /24-clustered bursts without farms dominating the install
        // share (§3.2 saw one 20-install farm among 503 installs).
        let mut rng = self.seed.fork("campaign").fork(iip.name()).rng();
        let profile = iiscope_devices::IipBehaviorProfile::for_iip(iip);
        let deliver = ((purchased as f64) * overdelivery(iip)).round() as usize;
        use iiscope_devices::WorkerKind;
        let mut queues: std::collections::BTreeMap<u8, Vec<&Device>> =
            std::collections::BTreeMap::new();
        let kind_slot = |k: WorkerKind| -> u8 {
            match k {
                WorkerKind::Casual => 0,
                WorkerKind::SemiPro => 1,
                WorkerKind::BotOperator => 2,
                WorkerKind::FarmOperator => 3,
            }
        };
        for worker in &audience.workers {
            let q = queues.entry(kind_slot(worker.kind)).or_default();
            for dev in &worker.devices {
                q.push(audience.device(*dev).expect("device exists"));
            }
        }
        // Shuffle inside each kind (farm devices stay grouped by
        // generation order within a farm thanks to stable ids).
        for q in queues.values_mut() {
            q.sort_by_key(|d| d.id);
        }
        let total_devices: usize = queues.values().map(Vec::len).sum();
        if total_devices < deliver {
            return Err(Error::InvalidState(format!(
                "audience too small: {total_devices} devices for {deliver} installs"
            )));
        }
        let mut arrivals: Vec<(WorkerKind, &Device)> = Vec::with_capacity(deliver);
        while arrivals.len() < deliver {
            let kind = profile.sample_kind(&mut rng);
            let slot = kind_slot(kind);
            // Fall back to the largest remaining pool when a kind runs
            // dry.
            let slot = if queues.get(&slot).is_some_and(|q| !q.is_empty()) {
                slot
            } else {
                match queues
                    .iter()
                    .max_by_key(|(_, q)| q.len())
                    .filter(|(_, q)| !q.is_empty())
                {
                    Some((s, _)) => *s,
                    None => break,
                }
            };
            let q = queues.get_mut(&slot).expect("slot exists");
            arrivals.push((
                match slot {
                    0 => WorkerKind::Casual,
                    1 => WorkerKind::SemiPro,
                    2 => WorkerKind::BotOperator,
                    _ => WorkerKind::FarmOperator,
                },
                q.pop().expect("non-empty"),
            ));
        }
        let mean_gap_secs = 3_600.0 / profile.delivery_per_hour;

        // Phase 1: schedule all events.
        let mut t = start;
        let mut last_install = start;
        let mut day2: Vec<(SimTime, &Device, bool)> = Vec::new();
        let mut installs = 0u64;
        let mut browse_misses = 0u64;
        for (i, (kind, device)) in arrivals.iter().enumerate() {
            t += SimDuration::from_secs(exponential(&mut rng, mean_gap_secs).ceil() as u64);
            self.net.clock().advance_to(t);
            // The worker opens an affiliate app on their own phone and
            // scrolls the wall until the offer shows up (§2.1: "users
            // browse offers and select an offer to work on"). No
            // sighting, no install.
            if !self.worker_sees_offer(device, iip, i as u64)? {
                browse_misses += 1;
                continue;
            }
            last_install = t;
            // The Play install, attributed to the campaign tag.
            self.store.record_install(
                self.honey_app,
                t,
                device.install_signals(),
                &InstallSource::Tagged(tag.clone()),
            )?;
            installs += 1;
            let suspicious = device.install_signals().is_suspicious();
            self.mediator
                .track(&tag, device.id, ConversionEvent::Installed, t, suspicious)?;

            let plan = iiscope_devices::behavior::plan_for(&profile, *kind, &goal, &mut rng);
            self.execute_plan(device, &tag, &plan, t, suspicious, i as u64)?;
            if plan.day2_return {
                day2.push((t + SimDuration::from_days(1), device, true));
            }
        }

        // Phase 2: day-2 returns, in time order.
        day2.sort_by_key(|(at, d, _)| (*at, d.id));
        for (at, device, click) in day2 {
            self.net.clock().advance_to(at);
            self.try_upload(device, TelemetryEvent::Open, at)?;
            self.store.record_session(self.honey_app, at, 60)?;
            if click {
                self.try_upload(device, TelemetryEvent::RecordClick, at)?;
            }
        }

        // Phase 3: settle postbacks, then conclude the campaign (the
        // purchased delivery is over; the offer leaves the wall and
        // any unspent escrow returns).
        let mut paid = 0;
        for pb in self.mediator.drain_postbacks() {
            if pb.conversion.tag == tag && platform.process_postback(&pb)?.is_some() {
                paid += 1;
            }
        }
        platform.end_campaign(campaign_id)?;

        Ok(CampaignOutcome {
            iip,
            purchased,
            started_at: start,
            finished_at: last_install,
            installs_delivered: installs,
            completions_paid: paid,
            tag,
            browse_misses,
        })
    }

    /// One worker's wall-browsing session: fetch pages of an affiliate
    /// app's offer wall (over TLS, from the worker's own device) until
    /// the honey app shows up or the wall runs out.
    fn worker_sees_offer(&self, device: &Device, iip: IipId, salt: u64) -> Result<bool> {
        // Pick an affiliate app that integrates this platform's wall.
        let catalog = AffiliateApp::table2_catalog();
        let Some(affiliate) = catalog.iter().find(|a| a.integrated_iips().contains(&iip)) else {
            return Ok(false);
        };
        let host = AffiliateApp::wall_host(iip);
        let mut client = HttpClient::new(
            self.net.clone(),
            device.addr,
            self.roots.clone(),
            self.seed.fork_idx("browse", device.id.raw() ^ salt),
        );
        for page in 0..50 {
            let url = format!(
                "https://{host}/offers?affiliate={}&page={page}",
                affiliate.package.as_str()
            );
            let resp = match client.get(&url) {
                Ok(r) if r.is_success() => r,
                _ => return Ok(false),
            };
            let Ok(body) = resp.body_json() else {
                return Ok(false);
            };
            if json_mentions(&body, HONEY_PACKAGE) {
                return Ok(true);
            }
            // Pages with no offer entries are tiny (the bare envelope
            // stays well under 120 bytes in every wall dialect):
            // reaching one means the scroll is exhausted.
            if resp.body.len() < 120 {
                return Ok(false);
            }
        }
        Ok(false)
    }

    fn execute_plan(
        &self,
        device: &Device,
        tag: &str,
        plan: &ExecutionPlan,
        install_at: SimTime,
        suspicious: bool,
        salt: u64,
    ) -> Result<()> {
        if !plan.opens_app {
            return Ok(());
        }
        let mut rng = self.seed.fork_idx("open-delay", salt).rng();
        let open_at = install_at + SimDuration::from_secs(10 + rng.gen_range(0..110));
        self.net.clock().advance_to(open_at);
        self.try_upload(device, TelemetryEvent::Open, open_at)?;
        self.mediator
            .track(tag, device.id, ConversionEvent::Opened, open_at, suspicious)?;
        let session_secs = plan.work_secs.clamp(20, 900);
        self.store
            .record_session(self.honey_app, open_at, session_secs)?;
        if plan.extra_engagement {
            let click_at = open_at + SimDuration::from_secs(5);
            self.try_upload(device, TelemetryEvent::RecordClick, click_at)?;
        }
        Ok(())
    }

    /// An upload the campaign survives losing: a network-level failure
    /// (retries exhausted, stalled exchange, outage) only means this
    /// device's telemetry never lands — exactly what §3.2 measured as
    /// the telemetry gap. Any other failure class still aborts.
    fn try_upload(&self, device: &Device, event: TelemetryEvent, at: SimTime) -> Result<()> {
        match self.upload(device, event, at) {
            Err(Error::Network(_)) => {
                chaosstats::add_uploads_abandoned(1);
                Ok(())
            }
            other => other,
        }
    }

    /// One telemetry upload over the real simulated network path
    /// (TLS handshake, HTTP POST, fault plan and all).
    fn upload(&self, device: &Device, event: TelemetryEvent, at: SimTime) -> Result<()> {
        self.net.clock().advance_to(at);
        let mut client = HttpClient::new(
            self.net.clone(),
            device.addr,
            self.roots.clone(),
            self.seed.fork_idx("upload", device.id.raw()),
        );
        let payload = telemetry_payload(device, device.id.raw(), event);
        let resp = client.post_json(&self.collector_url, &payload)?;
        if resp.status == 204 {
            Ok(())
        } else {
            Err(Error::Network(format!(
                "collector answered {} for {}",
                resp.status, device.id
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use iiscope_devices::population::{standard_registry, IipAudience};
    use iiscope_devices::IipBehaviorProfile;
    use iiscope_iip::DeveloperApplication;
    use iiscope_playstore::apk::ApkInfo;
    use iiscope_types::{Country, Genre};
    use iiscope_wire::server::HttpsFactory;
    use iiscope_wire::tls::{CertAuthority, ServerIdentity};
    use std::net::Ipv4Addr;

    struct Rig {
        driver: CampaignDriver,
        platform: Arc<IipPlatform>,
        audience: IipAudience,
        collector: Collector,
    }

    fn rig(iip: IipId, n_workers: usize) -> Rig {
        let seed = SeedFork::new(2020);
        let net = Network::new(seed.fork("net"));
        let store = Arc::new(PlayStore::new(seed.fork("store")));
        let dev = store.register_developer(
            "iiscope research",
            Country::Us,
            "research@iiscope.net",
            None,
        );
        let honey_app = store
            .publish(
                PackageName::new(HONEY_PACKAGE).unwrap(),
                crate::app::HONEY_TITLE,
                dev,
                Genre::Tools,
                SimTime::EPOCH,
                ApkInfo::bare(),
            )
            .unwrap();

        // PKI + collector service.
        let mut ca = CertAuthority::new("iiscope Public CA", seed.fork("ca"));
        let mut roots = TrustStore::new();
        roots.install_root(ca.root_cert());
        let collector = Collector::new();
        let identity = ServerIdentity::issue(&mut ca, "collector.iiscope", seed.fork("col-id"));
        let ip = Ipv4Addr::new(10, 10, 0, 1);
        net.bind(
            ip,
            443,
            Arc::new(HttpsFactory::new(
                Arc::new(collector.clone()),
                identity,
                seed.fork("col-tls"),
            )),
        )
        .unwrap();
        net.register_host("collector.iiscope", ip);

        // Platform + our account + its offer wall (workers browse it
        // to find the offer).
        let platform = Arc::new(IipPlatform::new(iip, seed.fork("iip")));
        let developer = DeveloperId(777);
        platform
            .register_developer(&DeveloperApplication {
                developer,
                has_tax_id: true,
                has_bank_account: true,
                deposit: Usd::from_dollars(5_000),
            })
            .unwrap();
        let wall = iiscope_iip::OfferWallHandler::new(Arc::clone(&platform));
        for app in iiscope_devices::AffiliateApp::table2_catalog() {
            wall.register_affiliate(app.package.as_str(), app.points_per_dollar);
        }
        let wall_host = iiscope_devices::AffiliateApp::wall_host(iip);
        let wall_identity = ServerIdentity::issue(&mut ca, &wall_host, seed.fork("wall-id"));
        let wall_ip = Ipv4Addr::new(10, 10, 0, 2);
        net.bind(
            wall_ip,
            443,
            Arc::new(HttpsFactory::new(
                Arc::new(wall),
                wall_identity,
                seed.fork("wall-tls"),
            )),
        )
        .unwrap();
        net.register_host(&wall_host, wall_ip);

        // Audience.
        let mut registry = standard_registry();
        let audience = IipAudience::generate(
            &IipBehaviorProfile::for_iip(iip),
            n_workers,
            &mut registry,
            seed.fork("aud"),
            1,
        );

        let mediator = Arc::new(Mediator::new("appsflyer.iiscope"));
        Rig {
            driver: CampaignDriver {
                net,
                store,
                honey_app,
                developer,
                mediator,
                roots,
                collector_url: "https://collector.iiscope/v1/telemetry".into(),
                seed: seed.fork("driver"),
            },
            platform,
            audience,
            collector,
        }
    }

    #[test]
    fn small_fyber_campaign_end_to_end() {
        let r = rig(IipId::Fyber, 80);
        let outcome = r
            .driver
            .run(
                &r.platform,
                &r.audience,
                40,
                Usd::from_cents(6),
                iiscope_types::time::study::STUDY_START,
            )
            .unwrap();
        assert_eq!(outcome.purchased, 40);
        assert_eq!(outcome.installs_delivered, 50, "25% over-delivery");
        assert!(outcome.completions_paid <= 40);
        assert!(
            outcome.completions_paid >= 30,
            "{}",
            outcome.completions_paid
        );
        // Telemetry arrived over the wire for nearly every install.
        assert!(
            r.collector.distinct_installs() >= 44,
            "{}",
            r.collector.distinct_installs()
        );
        // Play recorded the installs under the campaign tag.
        let report = r.driver.store.acquisition_report(
            r.driver.honey_app,
            iiscope_types::time::study::STUDY_START,
            outcome.finished_at + SimDuration::from_days(3),
        );
        assert_eq!(report.tagged(&outcome.tag), 50);
        assert_eq!(report.organic, 0, "no organic contamination (§3.2 check)");
    }

    #[test]
    fn rankapp_campaign_loses_telemetry_and_time() {
        let r = rig(IipId::RankApp, 60); // farm-heavy: plenty of devices
        let outcome = r
            .driver
            .run(
                &r.platform,
                &r.audience,
                100,
                Usd::from_cents(2),
                iiscope_types::time::study::STUDY_START,
            )
            .unwrap();
        assert_eq!(outcome.installs_delivered, 101);
        let gap = outcome.installs_delivered as f64 - r.collector.distinct_installs() as f64;
        let gap_rate = gap / outcome.installs_delivered as f64;
        assert!(
            (0.25..=0.70).contains(&gap_rate),
            "telemetry gap {gap_rate} should be large for RankApp"
        );
        // >24h delivery for a full 500 purchase; scale: 100 installs
        // should still take >5h at RankApp's rate.
        assert!(outcome.delivery_duration() > SimDuration::from_hours(5));
    }

    #[test]
    fn fyber_delivers_fast() {
        let r = rig(IipId::Fyber, 80);
        let outcome = r
            .driver
            .run(
                &r.platform,
                &r.audience,
                40,
                Usd::from_cents(6),
                iiscope_types::time::study::STUDY_START,
            )
            .unwrap();
        // 40 installs at ~500/hour: minutes, not days.
        assert!(outcome.delivery_duration() < SimDuration::from_hours(2));
    }

    #[test]
    fn audience_too_small_is_an_error() {
        let r = rig(IipId::Fyber, 3);
        let err = r
            .driver
            .run(
                &r.platform,
                &r.audience,
                500,
                Usd::from_cents(6),
                SimTime::EPOCH,
            )
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_state");
    }
}
