//! The Play Store facade: catalog + ledgers + charts + enforcement
//! behind one thread-safe handle.

use crate::apk::ApkInfo;
use crate::catalog::{AppProfile, AppRecord, Catalog, DeveloperRecord};
use crate::charts::{self, ChartEntry, ChartKind, ChartRanking};
use crate::console::{acquisition_report, AcquisitionReport};
use crate::engagement::{EngagementLedger, InstallSignals};
use crate::policy::{self, EnforcementConfig};
use iiscope_types::{
    AppId, Country, DeveloperId, Error, Genre, PackageName, Result, SeedFork, SimTime, Usd,
};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Where an install came from, as seen by attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallSource {
    /// Store search / charts / browsing.
    Organic,
    /// A tracking link with an attribution tag (campaign installs).
    Tagged(String),
}

impl InstallSource {
    fn tag(&self) -> &str {
        match self {
            InstallSource::Organic => "",
            InstallSource::Tagged(t) => t,
        }
    }
}

/// Days of trailing activity considered by chart ranking.
pub const CHART_WINDOW_DAYS: u64 = 7;

/// Play-internal observables for one app, aggregated for detection
/// models (see [`PlayStore::detector_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorSnapshot {
    /// Public (post-filter) install count, including organic bulk.
    pub total_installs: u64,
    /// Installs with per-event records (campaign-attributed traffic).
    pub event_installs: u64,
    /// Event installs with hard fraud signals.
    pub suspicious_installs: u64,
    /// Largest number of event installs sharing one /24.
    pub max_block_installs: u64,
    /// Distinct /24 blocks across event installs.
    pub distinct_blocks: u64,
    /// Daily install counts over the event window (≤ 400 days).
    pub daily_installs: Vec<u64>,
    /// Total sessions over that window.
    pub sessions: u64,
    /// Total session seconds over that window.
    pub session_secs: u64,
}

struct Inner {
    catalog: Catalog,
    ledgers: BTreeMap<AppId, EngagementLedger>,
    enforcement: EnforcementConfig,
    ranking: ChartRanking,
    next_app: u64,
    next_dev: u64,
}

/// The store. Clone-free: share via `Arc<PlayStore>`.
pub struct PlayStore {
    inner: RwLock<Inner>,
    seed: SeedFork,
}

impl PlayStore {
    /// Creates an empty store.
    pub fn new(seed: SeedFork) -> PlayStore {
        PlayStore {
            inner: RwLock::new(Inner {
                catalog: Catalog::new(),
                ledgers: BTreeMap::new(),
                enforcement: EnforcementConfig::default(),
                ranking: ChartRanking::EngagementWeighted,
                next_app: 1,
                next_dev: 1,
            }),
            seed,
        }
    }

    // -----------------------------------------------------------------
    // Publishing
    // -----------------------------------------------------------------

    /// Creates a developer account.
    pub fn register_developer(
        &self,
        name: impl Into<String>,
        country: Country,
        email: impl Into<String>,
        website: Option<String>,
    ) -> DeveloperId {
        let mut inner = self.inner.write();
        let id = DeveloperId(inner.next_dev);
        inner.next_dev += 1;
        inner
            .catalog
            .register_developer(DeveloperRecord {
                id,
                name: name.into(),
                country,
                email: email.into(),
                website,
            })
            .expect("fresh id cannot collide");
        id
    }

    /// Publishes an app and returns its id.
    pub fn publish(
        &self,
        package: PackageName,
        title: impl Into<String>,
        developer: DeveloperId,
        genre: Genre,
        released: SimTime,
        apk: ApkInfo,
    ) -> Result<AppId> {
        let mut inner = self.inner.write();
        let id = AppId(inner.next_app);
        inner.catalog.publish(AppRecord {
            id,
            package,
            title: title.into(),
            developer,
            genre,
            released,
            apk,
        })?;
        inner.next_app += 1;
        inner.ledgers.insert(id, EngagementLedger::new());
        Ok(id)
    }

    // -----------------------------------------------------------------
    // Event ingestion
    // -----------------------------------------------------------------

    /// Records an install.
    pub fn record_install(
        &self,
        app: AppId,
        at: SimTime,
        signals: InstallSignals,
        source: &InstallSource,
    ) -> Result<()> {
        let mut inner = self.inner.write();
        let ledger = inner
            .ledgers
            .get_mut(&app)
            .ok_or_else(|| Error::NotFound(app.to_string()))?;
        ledger.record_install(at, signals, source.tag());
        Ok(())
    }

    /// Records `n` organic installs in aggregate (no per-event record;
    /// see `EngagementLedger::record_installs_bulk`). Unknown apps are
    /// ignored (bulk feeds run before/after app lifecycles).
    pub fn record_organic_installs(&self, app: AppId, at: SimTime, n: u64) {
        if let Some(l) = self.inner.write().ledgers.get_mut(&app) {
            l.record_installs_bulk(at, n);
        }
    }

    /// Records aggregate background engagement.
    pub fn record_engagement_bulk(&self, app: AppId, at: SimTime, sessions: u64, secs: u64) {
        if let Some(l) = self.inner.write().ledgers.get_mut(&app) {
            l.record_sessions_bulk(at, sessions, secs);
        }
    }

    /// Records aggregate purchase revenue.
    pub fn record_revenue_bulk(&self, app: AppId, at: SimTime, purchases: u64, amount: Usd) {
        if let Some(l) = self.inner.write().ledgers.get_mut(&app) {
            l.record_revenue_bulk(at, purchases, amount);
        }
    }

    /// Records one star rating.
    pub fn record_rating(&self, app: AppId, stars: u8) {
        if let Some(l) = self.inner.write().ledgers.get_mut(&app) {
            l.record_rating(stars);
        }
    }

    /// Records `count` ratings totalling `total_stars` in aggregate.
    pub fn record_ratings_bulk(&self, app: AppId, count: u64, total_stars: u64) {
        if let Some(l) = self.inner.write().ledgers.get_mut(&app) {
            l.record_ratings_bulk(count, total_stars);
        }
    }

    /// Records an app session.
    pub fn record_session(&self, app: AppId, at: SimTime, secs: u64) -> Result<()> {
        let mut inner = self.inner.write();
        let ledger = inner
            .ledgers
            .get_mut(&app)
            .ok_or_else(|| Error::NotFound(app.to_string()))?;
        ledger.record_session(at, secs);
        Ok(())
    }

    /// Records an account registration.
    pub fn record_registration(&self, app: AppId, at: SimTime) -> Result<()> {
        let mut inner = self.inner.write();
        let ledger = inner
            .ledgers
            .get_mut(&app)
            .ok_or_else(|| Error::NotFound(app.to_string()))?;
        ledger.record_registration(at);
        Ok(())
    }

    /// Records an in-app purchase.
    pub fn record_purchase(&self, app: AppId, at: SimTime, amount: Usd) -> Result<()> {
        let mut inner = self.inner.write();
        let ledger = inner
            .ledgers
            .get_mut(&app)
            .ok_or_else(|| Error::NotFound(app.to_string()))?;
        ledger.record_purchase(at, amount);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Public observables (what the crawler sees)
    // -----------------------------------------------------------------

    /// Public profile by package name.
    pub fn profile(&self, package: &PackageName) -> Option<AppProfile> {
        let inner = self.inner.read();
        let app = inner.catalog.app_by_package(package)?;
        let ledger = inner.ledgers.get(&app.id);
        let installs = ledger.map_or(0, |l| l.public_installs());
        let rating = ledger.and_then(|l| l.average_rating());
        let rating_count = ledger.map_or(0, |l| l.rating_count());
        inner
            .catalog
            .profile(app.id, installs, rating, rating_count)
    }

    /// App id by package.
    pub fn app_id(&self, package: &PackageName) -> Option<AppId> {
        self.inner
            .read()
            .catalog
            .app_by_package(package)
            .map(|a| a.id)
    }

    /// Package by app id.
    pub fn package_of(&self, app: AppId) -> Option<PackageName> {
        self.inner
            .read()
            .catalog
            .app(app)
            .map(|a| a.package.clone())
    }

    /// The exact (unbinned) public install count — internal analytics
    /// only; the crawler sees the bin via [`PlayStore::profile`].
    pub fn exact_installs(&self, app: AppId) -> u64 {
        self.inner
            .read()
            .ledgers
            .get(&app)
            .map_or(0, |l| l.public_installs())
    }

    /// Current chart ranking for `kind` at time `now`.
    pub fn chart(&self, kind: ChartKind, now: SimTime) -> Vec<ChartEntry> {
        let inner = self.inner.read();
        let ranking = inner.ranking;
        let scored = inner.catalog.apps().filter_map(|app| {
            if !kind.eligible(app.genre) {
                return None;
            }
            let ledger = inner.ledgers.get(&app.id)?;
            let window = ledger.trailing(now, CHART_WINDOW_DAYS);
            Some((app.id, charts::score(ranking, kind, &window)))
        });
        charts::rank(scored)
    }

    /// Percentile rank of `app` on `kind` at `now` (Figure 5's y-axis).
    pub fn chart_percentile(&self, kind: ChartKind, now: SimTime, app: AppId) -> Option<f64> {
        charts::percentile(&self.chart(kind, now), app)
    }

    /// APK bytes for download/static analysis.
    pub fn apk_bytes(&self, package: &PackageName) -> Option<Vec<u8>> {
        let inner = self.inner.read();
        let app = inner.catalog.app_by_package(package)?;
        Some(app.apk.render(self.seed.fork("apk").fork(package.as_str())))
    }

    /// The app's APK metadata (ground truth; analysis code must use
    /// [`PlayStore::apk_bytes`] instead to stay honest).
    pub fn apk_info(&self, package: &PackageName) -> Option<ApkInfo> {
        let inner = self.inner.read();
        inner.catalog.app_by_package(package).map(|a| a.apk.clone())
    }

    /// Genre of an app.
    pub fn genre_of(&self, app: AppId) -> Option<Genre> {
        self.inner.read().catalog.app(app).map(|a| a.genre)
    }

    /// Developer record of an app.
    pub fn developer_of(&self, app: AppId) -> Option<DeveloperRecord> {
        let inner = self.inner.read();
        let a = inner.catalog.app(app)?;
        inner.catalog.developer(a.developer).cloned()
    }

    /// All published package names (world-building iterates these).
    pub fn packages(&self) -> Vec<PackageName> {
        self.inner
            .read()
            .catalog
            .apps()
            .map(|a| a.package.clone())
            .collect()
    }

    // -----------------------------------------------------------------
    // Console + policy
    // -----------------------------------------------------------------

    /// Developer-console acquisition report for `[from, to)`.
    pub fn acquisition_report(&self, app: AppId, from: SimTime, to: SimTime) -> AcquisitionReport {
        let inner = self.inner.read();
        match inner.ledgers.get(&app) {
            Some(l) => acquisition_report(l, from, to),
            None => acquisition_report(&EngagementLedger::new(), from, to),
        }
    }

    /// Replaces the enforcement configuration.
    pub fn set_enforcement(&self, cfg: EnforcementConfig) {
        self.inner.write().enforcement = cfg;
    }

    /// Replaces the chart-ranking policy (ablation knob).
    pub fn set_ranking(&self, ranking: ChartRanking) {
        self.inner.write().ranking = ranking;
    }

    /// Aggregates the Play-internal signals a detection model could
    /// legitimately see for one app (§5.2's proposal: "train machine
    /// learning models in detecting the lockstep behavior of users").
    /// Only store-side observables enter: per-event installs with
    /// network/device signals, daily volumes, engagement totals. No
    /// campaign ground truth.
    pub fn detector_snapshot(&self, app: AppId) -> Option<DetectorSnapshot> {
        let inner = self.inner.read();
        let ledger = inner.ledgers.get(&app)?;
        let events = ledger.install_events();
        let mut per_block: BTreeMap<u32, u64> = BTreeMap::new();
        let mut suspicious = 0u64;
        for e in events {
            *per_block.entry(e.signals.block24).or_default() += 1;
            suspicious += u64::from(e.signals.is_suspicious());
        }
        let event_installs = events.len() as u64;
        let max_block = per_block.values().copied().max().unwrap_or(0);
        // Daily install/session series over the ledger's lifetime.
        let mut daily_installs = Vec::new();
        let mut sessions = 0u64;
        let mut session_secs = 0u64;
        if let (Some(first), Some(last)) = (
            events.first().map(|e| e.at.days()),
            events.last().map(|e| e.at.days()),
        ) {
            for day in first..=last.min(first + 400) {
                let d = ledger.day(day);
                daily_installs.push(d.installs);
                sessions += d.sessions;
                session_secs += d.session_secs;
            }
        }
        Some(DetectorSnapshot {
            total_installs: ledger.public_installs(),
            event_installs,
            suspicious_installs: suspicious,
            max_block_installs: max_block,
            distinct_blocks: per_block.len() as u64,
            daily_installs,
            sessions,
            session_secs,
        })
    }

    /// Runs one enforcement sweep over every app; returns total
    /// installs removed. Deterministic per (`seed`, `day`).
    pub fn enforcement_sweep(&self, now: SimTime) -> u64 {
        let mut inner = self.inner.write();
        let cfg = inner.enforcement.clone();
        let mut removed = 0;
        let app_ids: Vec<AppId> = inner.ledgers.keys().copied().collect();
        for id in app_ids {
            let mut rng = self
                .seed
                .fork_idx("enforcement", now.days())
                .fork_idx("app", id.raw())
                .rng();
            if let Some(ledger) = inner.ledgers.get_mut(&id) {
                removed += policy::sweep(ledger, &cfg, &mut rng);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (PlayStore, AppId) {
        let store = PlayStore::new(SeedFork::new(42));
        let dev = store.register_developer("Acme", Country::Us, "acme@example.com", None);
        let app = store
            .publish(
                PackageName::new("com.acme.game").unwrap(),
                "Acme Game",
                dev,
                Genre::GamePuzzle,
                SimTime::from_days(10),
                ApkInfo::bare(),
            )
            .unwrap();
        (store, app)
    }

    #[test]
    fn publish_profile_and_bins() {
        let (store, app) = store();
        let pkg = PackageName::new("com.acme.game").unwrap();
        let p = store.profile(&pkg).unwrap();
        assert_eq!(p.installs.lower_bound(), 0);
        for _ in 0..1_200 {
            store
                .record_install(
                    app,
                    SimTime::from_days(20),
                    InstallSignals::clean(1),
                    &InstallSource::Organic,
                )
                .unwrap();
        }
        assert_eq!(store.profile(&pkg).unwrap().installs.lower_bound(), 1_000);
        assert_eq!(store.exact_installs(app), 1_200);
    }

    #[test]
    fn chart_reflects_recent_engagement_only() {
        let (store, app) = store();
        let now = SimTime::from_days(50);
        assert!(store
            .chart_percentile(ChartKind::TopGames, now, app)
            .is_none());
        for _ in 0..100 {
            store.record_session(app, now, 300).unwrap();
            store.record_registration(app, now).unwrap();
        }
        assert!(store
            .chart_percentile(ChartKind::TopGames, now, app)
            .is_some());
        // Thirty days later the activity aged out of the window.
        let later = SimTime::from_days(80);
        assert!(store
            .chart_percentile(ChartKind::TopGames, later, app)
            .is_none());
    }

    #[test]
    fn grossing_chart_needs_revenue() {
        let (store, app) = store();
        let now = SimTime::from_days(30);
        for _ in 0..500 {
            store
                .record_install(app, now, InstallSignals::clean(2), &InstallSource::Organic)
                .unwrap();
        }
        assert!(store
            .chart_percentile(ChartKind::TopGrossing, now, app)
            .is_none());
        store
            .record_purchase(app, now, Usd::from_dollars(5))
            .unwrap();
        assert!(store
            .chart_percentile(ChartKind::TopGrossing, now, app)
            .is_some());
    }

    #[test]
    fn console_report_distinguishes_tags() {
        let (store, app) = store();
        let t = SimTime::from_days(21);
        store
            .record_install(
                app,
                t,
                InstallSignals::clean(1),
                &InstallSource::Tagged("fyber-7".into()),
            )
            .unwrap();
        store
            .record_install(app, t, InstallSignals::clean(1), &InstallSource::Organic)
            .unwrap();
        let r = store.acquisition_report(app, SimTime::from_days(21), SimTime::from_days(22));
        assert_eq!(r.organic, 1);
        assert_eq!(r.tagged("fyber-7"), 1);
    }

    #[test]
    fn strict_enforcement_shows_public_decrease() {
        let (store, app) = store();
        let t = SimTime::from_days(22);
        for i in 0..700u32 {
            // Distinct /24s: genuinely organic users come from all over.
            store
                .record_install(app, t, InstallSignals::clean(i), &InstallSource::Organic)
                .unwrap();
        }
        for _ in 0..600 {
            store
                .record_install(
                    app,
                    t,
                    InstallSignals {
                        emulator: true,
                        rooted: true,
                        datacenter_asn: false,
                        block24: 999_999,
                    },
                    &InstallSource::Tagged("rankapp-1".into()),
                )
                .unwrap();
        }
        let pkg = PackageName::new("com.acme.game").unwrap();
        assert_eq!(store.profile(&pkg).unwrap().installs.lower_bound(), 1_000);
        store.set_enforcement(EnforcementConfig::strict());
        let removed = store.enforcement_sweep(SimTime::from_days(23));
        assert_eq!(removed, 600);
        // 1,300 → 700: the bin visibly dropped, §5.2's signal.
        assert_eq!(store.profile(&pkg).unwrap().installs.lower_bound(), 500);
    }

    #[test]
    fn unknown_app_errors() {
        let (store, _) = store();
        assert!(store
            .record_install(
                AppId(999),
                SimTime::EPOCH,
                InstallSignals::clean(0),
                &InstallSource::Organic
            )
            .is_err());
        assert!(store.record_session(AppId(999), SimTime::EPOCH, 1).is_err());
    }

    #[test]
    fn apk_bytes_are_deterministic_per_package() {
        let (store, _) = store();
        let pkg = PackageName::new("com.acme.game").unwrap();
        assert_eq!(store.apk_bytes(&pkg), store.apk_bytes(&pkg));
        assert!(store
            .apk_bytes(&PackageName::new("com.none.x").unwrap())
            .is_none());
    }
}
