//! The APK model: what a downloaded package "contains".
//!
//! §4.3.2 downloads APKs of baseline and advertised apps and runs
//! LibRadar static analysis to count embedded advertising libraries
//! (Figure 6). Our APK is a synthetic binary blob whose bytes embed
//! detectable fingerprints of the libraries the app integrates —
//! unless the app obfuscates or loads code dynamically, which is
//! exactly the miss-model the paper acknowledges ("static analysis may
//! miss some advertising libraries due to code obfuscation and dynamic
//! code loading", §4.3.2 fn 9).

use iiscope_types::SeedFork;

/// Advertising / monetization SDK vendors that can be embedded in an
/// APK. The list mirrors the vendors the paper names (AdMob, AppLovin,
/// ChartBoost, Fyber-as-advertiser) plus the usual mobile-ads long
/// tail; Figure 6 counts *unique* libraries per app, reaching ~30 for
/// the most ad-saturated apps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum AdLibrary {
    AdMob,
    AppLovin,
    ChartBoost,
    UnityAds,
    IronSource,
    Vungle,
    TapJoy,
    FyberSdk,
    AdColony,
    InMobi,
    StartApp,
    MoPub,
    Facebook,
    Smaato,
    Pubmatic,
    CriteoSdk,
    Mintegral,
    Pangle,
    MyTarget,
    YandexAds,
    HuaweiAds,
    Flurry,
    Leadbolt,
    AirPush,
    OfferToroSdk,
    AdscendSdk,
    AyetSdk,
    HangMyAdsSdk,
    AdGemSdk,
    KiipSdk,
    PollfishSdk,
    TapResearch,
}

impl AdLibrary {
    /// All known vendors.
    pub const ALL: [AdLibrary; 32] = [
        AdLibrary::AdMob,
        AdLibrary::AppLovin,
        AdLibrary::ChartBoost,
        AdLibrary::UnityAds,
        AdLibrary::IronSource,
        AdLibrary::Vungle,
        AdLibrary::TapJoy,
        AdLibrary::FyberSdk,
        AdLibrary::AdColony,
        AdLibrary::InMobi,
        AdLibrary::StartApp,
        AdLibrary::MoPub,
        AdLibrary::Facebook,
        AdLibrary::Smaato,
        AdLibrary::Pubmatic,
        AdLibrary::CriteoSdk,
        AdLibrary::Mintegral,
        AdLibrary::Pangle,
        AdLibrary::MyTarget,
        AdLibrary::YandexAds,
        AdLibrary::HuaweiAds,
        AdLibrary::Flurry,
        AdLibrary::Leadbolt,
        AdLibrary::AirPush,
        AdLibrary::OfferToroSdk,
        AdLibrary::AdscendSdk,
        AdLibrary::AyetSdk,
        AdLibrary::HangMyAdsSdk,
        AdLibrary::AdGemSdk,
        AdLibrary::KiipSdk,
        AdLibrary::PollfishSdk,
        AdLibrary::TapResearch,
    ];

    /// The dex-path-style fingerprint a static analyzer greps for.
    pub fn fingerprint(self) -> &'static str {
        match self {
            AdLibrary::AdMob => "com/google/android/gms/ads",
            AdLibrary::AppLovin => "com/applovin/sdk",
            AdLibrary::ChartBoost => "com/chartboost/sdk",
            AdLibrary::UnityAds => "com/unity3d/ads",
            AdLibrary::IronSource => "com/ironsource/mediationsdk",
            AdLibrary::Vungle => "com/vungle/warren",
            AdLibrary::TapJoy => "com/tapjoy/sdk",
            AdLibrary::FyberSdk => "com/fyber/offerwall",
            AdLibrary::AdColony => "com/adcolony/sdk",
            AdLibrary::InMobi => "com/inmobi/ads",
            AdLibrary::StartApp => "com/startapp/android",
            AdLibrary::MoPub => "com/mopub/mobileads",
            AdLibrary::Facebook => "com/facebook/ads",
            AdLibrary::Smaato => "com/smaato/soma",
            AdLibrary::Pubmatic => "com/pubmatic/sdk",
            AdLibrary::CriteoSdk => "com/criteo/publisher",
            AdLibrary::Mintegral => "com/mintegral/msdk",
            AdLibrary::Pangle => "com/bytedance/sdk/openadsdk",
            AdLibrary::MyTarget => "com/my/target/ads",
            AdLibrary::YandexAds => "com/yandex/mobile/ads",
            AdLibrary::HuaweiAds => "com/huawei/hms/ads",
            AdLibrary::Flurry => "com/flurry/android",
            AdLibrary::Leadbolt => "com/apptracker/android",
            AdLibrary::AirPush => "com/airpush/android",
            AdLibrary::OfferToroSdk => "com/offertoro/sdk",
            AdLibrary::AdscendSdk => "com/adscendmedia/sdk",
            AdLibrary::AyetSdk => "com/ayetstudios/publishersdk",
            AdLibrary::HangMyAdsSdk => "com/hangmyads/sdk",
            AdLibrary::AdGemSdk => "com/adgem/android",
            AdLibrary::KiipSdk => "me/kiip/sdk",
            AdLibrary::PollfishSdk => "com/pollfish/main",
            AdLibrary::TapResearch => "com/tapr/sdk",
        }
    }

    /// Whether this vendor also operates an incentivized offer wall —
    /// §4.3.2: "We also find advertisers that serve the role of IIP
    /// (e.g., Fyber)."
    pub fn is_offerwall_vendor(self) -> bool {
        matches!(
            self,
            AdLibrary::FyberSdk
                | AdLibrary::TapJoy
                | AdLibrary::OfferToroSdk
                | AdLibrary::AdscendSdk
                | AdLibrary::AyetSdk
                | AdLibrary::HangMyAdsSdk
                | AdLibrary::AdGemSdk
                | AdLibrary::KiipSdk
        )
    }
}

/// The simulated package contents.
#[derive(Debug, Clone, PartialEq)]
pub struct ApkInfo {
    /// Ad/monetization libraries actually integrated by the app.
    pub ad_libraries: Vec<AdLibrary>,
    /// Fraction of library fingerprints hidden by obfuscation
    /// (0.0 = plain, 1.0 = fully obfuscated).
    pub obfuscation: f64,
    /// Libraries pulled in via dynamic code loading — present at run
    /// time but invisible to any static analyzer.
    pub dynamic_libraries: Vec<AdLibrary>,
}

impl ApkInfo {
    /// An APK with no monetization SDKs at all.
    pub fn bare() -> ApkInfo {
        ApkInfo {
            ad_libraries: Vec::new(),
            obfuscation: 0.0,
            dynamic_libraries: Vec::new(),
        }
    }

    /// Total unique libraries present at run time (static + dynamic) —
    /// the ground truth Figure 6's static analysis *under*-estimates.
    pub fn runtime_library_count(&self) -> usize {
        let mut set: std::collections::BTreeSet<AdLibrary> =
            self.ad_libraries.iter().copied().collect();
        set.extend(self.dynamic_libraries.iter().copied());
        set.len()
    }

    /// Renders the APK as bytes: a dex-like blob interleaving filler
    /// with the fingerprints of statically-present, non-obfuscated
    /// libraries. Obfuscation deterministically hides a prefix-hash
    /// selection of libraries; dynamically loaded libraries never
    /// appear.
    pub fn render(&self, seed: SeedFork) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(b"dex\n037\0");
        let mut filler_state = seed.seed() | 1;
        let mut push_filler = |out: &mut Vec<u8>, n: usize| {
            for _ in 0..n {
                filler_state ^= filler_state << 13;
                filler_state ^= filler_state >> 7;
                filler_state ^= filler_state << 17;
                // Printable filler so fingerprints can't appear by chance.
                out.push(b'A' + (filler_state % 20) as u8);
            }
        };
        push_filler(&mut out, 64);
        for (i, lib) in self.ad_libraries.iter().enumerate() {
            // Deterministic per-library obfuscation decision: hide the
            // library iff its position-hash falls below the ratio.
            let h = seed.fork_idx("obf", i as u64).seed() as f64 / u64::MAX as f64;
            if h < self.obfuscation {
                // Obfuscated: class path is renamed beyond recognition.
                push_filler(&mut out, lib.fingerprint().len());
            } else {
                out.extend_from_slice(lib.fingerprint().as_bytes());
            }
            out.push(0);
            push_filler(&mut out, 32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for lib in AdLibrary::ALL {
            assert!(seen.insert(lib.fingerprint()), "dup {lib:?}");
        }
        assert_eq!(AdLibrary::ALL.len(), 32);
    }

    #[test]
    fn plain_apk_embeds_all_fingerprints() {
        let apk = ApkInfo {
            ad_libraries: vec![AdLibrary::AdMob, AdLibrary::FyberSdk],
            obfuscation: 0.0,
            dynamic_libraries: vec![],
        };
        let bytes = apk.render(SeedFork::new(1));
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("com/google/android/gms/ads"));
        assert!(text.contains("com/fyber/offerwall"));
    }

    #[test]
    fn fully_obfuscated_apk_hides_everything() {
        let apk = ApkInfo {
            ad_libraries: vec![AdLibrary::AdMob, AdLibrary::Vungle],
            obfuscation: 1.0,
            dynamic_libraries: vec![],
        };
        let bytes = apk.render(SeedFork::new(2));
        let text = String::from_utf8_lossy(&bytes);
        assert!(!text.contains("com/google/android/gms/ads"));
        assert!(!text.contains("com/vungle/warren"));
    }

    #[test]
    fn dynamic_libraries_never_rendered() {
        let apk = ApkInfo {
            ad_libraries: vec![],
            obfuscation: 0.0,
            dynamic_libraries: vec![AdLibrary::TapJoy],
        };
        let bytes = apk.render(SeedFork::new(3));
        assert!(!String::from_utf8_lossy(&bytes).contains("com/tapjoy/sdk"));
        assert_eq!(apk.runtime_library_count(), 1);
    }

    #[test]
    fn runtime_count_dedups_static_and_dynamic() {
        let apk = ApkInfo {
            ad_libraries: vec![AdLibrary::AdMob, AdLibrary::TapJoy],
            obfuscation: 0.0,
            dynamic_libraries: vec![AdLibrary::TapJoy, AdLibrary::Vungle],
        };
        assert_eq!(apk.runtime_library_count(), 3);
    }

    #[test]
    fn render_is_deterministic() {
        let apk = ApkInfo {
            ad_libraries: vec![AdLibrary::AdMob],
            obfuscation: 0.5,
            dynamic_libraries: vec![],
        };
        assert_eq!(apk.render(SeedFork::new(7)), apk.render(SeedFork::new(7)));
        assert_ne!(apk.render(SeedFork::new(7)), apk.render(SeedFork::new(8)));
    }

    #[test]
    fn offerwall_vendor_flag() {
        assert!(AdLibrary::FyberSdk.is_offerwall_vendor());
        assert!(!AdLibrary::AdMob.is_offerwall_vendor());
    }
}
