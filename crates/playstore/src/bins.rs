//! Google-style install-count bins.
//!
//! The public Play profile never shows exact installs — only a
//! lower-bound bin ("100+", "1K+", "500K+"). Two analyses in the paper
//! depend on the binning being faithful:
//!
//! * Table 5 detects an "increase in install counts" only when an app
//!   crosses a bin boundary during its campaign window;
//! * §5.2's enforcement probe looks for *decreases* ("install count
//!   decreased from 1,000 to 500"), which likewise only shows when a
//!   boundary is re-crossed downward.

use std::fmt;

/// The ordered lower bounds Google uses: 1, 5, 10, 50 pattern per
/// decade, up to 10B+ (as of the study period).
const BOUNDS: [u64; 21] = [
    0,
    1,
    5,
    10,
    50,
    100,
    500,
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
];

/// A public install-count bin, identified by its lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstallBin(u64);

impl InstallBin {
    /// The bin containing an exact install count.
    pub fn for_count(count: u64) -> InstallBin {
        let mut bound = BOUNDS[0];
        for b in BOUNDS {
            if count >= b {
                bound = b;
            } else {
                break;
            }
        }
        InstallBin(bound)
    }

    /// The public lower-bound number ("minimum installs").
    pub fn lower_bound(self) -> u64 {
        self.0
    }

    /// All bins, ascending.
    pub fn all() -> impl Iterator<Item = InstallBin> {
        BOUNDS.into_iter().map(InstallBin)
    }

    /// Figure 4's eight coarse histogram buckets, as labels in the
    /// paper's x-axis order.
    pub const FIGURE4_BUCKETS: [&'static str; 8] = [
        "0-1k",
        "1k-10k",
        "10k-100k",
        "100k-1M",
        "1M-10M",
        "10M-100M",
        "100M-1000M",
        "1000M+",
    ];

    /// Index into [`InstallBin::FIGURE4_BUCKETS`] for an exact count.
    pub fn figure4_bucket(count: u64) -> usize {
        match count {
            0..=999 => 0,
            1_000..=9_999 => 1,
            10_000..=99_999 => 2,
            100_000..=999_999 => 3,
            1_000_000..=9_999_999 => 4,
            10_000_000..=99_999_999 => 5,
            100_000_000..=999_999_999 => 6,
            _ => 7,
        }
    }
}

impl fmt::Display for InstallBin {
    /// Renders like the Play UI: `100+`, `1K+`, `500M+`, `5B+`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{}B+", n / 1_000_000_000)
        } else if n >= 1_000_000 {
            write!(f, "{}M+", n / 1_000_000)
        } else if n >= 1_000 {
            write!(f, "{}K+", n / 1_000)
        } else {
            write!(f, "{n}+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_matches_paper_examples() {
        // §5.2: "install count decreased from 1,000 to 500".
        assert_eq!(InstallBin::for_count(1_200).lower_bound(), 1_000);
        assert_eq!(InstallBin::for_count(700).lower_bound(), 500);
        // §3.2: honey app went "from 0 to over 1,000".
        assert_eq!(InstallBin::for_count(0).lower_bound(), 0);
        assert_eq!(InstallBin::for_count(1_679).lower_bound(), 1_000);
    }

    #[test]
    fn bin_edges_are_inclusive_lower() {
        for bin in InstallBin::all() {
            let b = bin.lower_bound();
            assert_eq!(InstallBin::for_count(b).lower_bound(), b);
            if b > 0 {
                assert!(InstallBin::for_count(b - 1).lower_bound() < b);
            }
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(InstallBin::for_count(3).to_string(), "1+");
        assert_eq!(InstallBin::for_count(250).to_string(), "100+");
        assert_eq!(InstallBin::for_count(2_000).to_string(), "1K+");
        assert_eq!(InstallBin::for_count(600_000).to_string(), "500K+");
        assert_eq!(InstallBin::for_count(2_000_000).to_string(), "1M+");
        assert_eq!(InstallBin::for_count(6_000_000_000).to_string(), "5B+");
    }

    #[test]
    fn monotonic() {
        let mut prev = 0;
        for c in [0u64, 1, 7, 99, 5_000, 1_000_000, u64::MAX / 2] {
            let b = InstallBin::for_count(c).lower_bound();
            assert!(b >= prev || c < prev);
            assert!(b <= c);
            prev = b;
        }
    }

    #[test]
    fn figure4_buckets_cover_everything() {
        assert_eq!(InstallBin::figure4_bucket(0), 0);
        assert_eq!(InstallBin::figure4_bucket(999), 0);
        assert_eq!(InstallBin::figure4_bucket(1_000), 1);
        assert_eq!(InstallBin::figure4_bucket(50_000), 2);
        assert_eq!(InstallBin::figure4_bucket(2_000_000_000), 7);
        assert_eq!(InstallBin::FIGURE4_BUCKETS.len(), 8);
    }
}
