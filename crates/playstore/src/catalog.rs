//! The app and developer catalog.
//!
//! Holds the authoritative records behind the public profiles the
//! crawler scrapes. §4.2 extracts, per app: install counts (binned),
//! release date, genre, and developer details ("company name, websites,
//! mailing address, developer ID"); developers are keyed by developer
//! ID and located by parsing the mailing address on the profile.

use crate::apk::ApkInfo;
use crate::bins::InstallBin;
use iiscope_types::{AppId, Country, DeveloperId, Error, Genre, PackageName, Result, SimTime};
use std::collections::BTreeMap;

/// A developer account.
#[derive(Debug, Clone, PartialEq)]
pub struct DeveloperRecord {
    /// Developer id (the Play-profile join key of §4.2).
    pub id: DeveloperId,
    /// Company / developer name.
    pub name: String,
    /// Country parsed from the mailing address.
    pub country: Country,
    /// Contact email shown on profiles — §5.1 uses it for disclosure.
    pub email: String,
    /// Website, when the developer lists one. §4.3.3 notes unmatched
    /// developers "often do not provide useful information in their
    /// Google Play Store profile (e.g., link to their website)".
    pub website: Option<String>,
}

/// The authoritative (non-public) app record.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRecord {
    /// Store-internal id.
    pub id: AppId,
    /// Unique package name.
    pub package: PackageName,
    /// Display title.
    pub title: String,
    /// Owning developer.
    pub developer: DeveloperId,
    /// Category.
    pub genre: Genre,
    /// Release instant on the simulated timeline.
    pub released: SimTime,
    /// Package contents (for APK downloads / static analysis).
    pub apk: ApkInfo,
}

/// The *public* profile — exactly what a crawler can see.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Package name.
    pub package: PackageName,
    /// Display title.
    pub title: String,
    /// Category.
    pub genre: Genre,
    /// Release instant (Play shows a release date).
    pub released: SimTime,
    /// Binned install count ("1K+").
    pub installs: InstallBin,
    /// Developer id.
    pub developer_id: DeveloperId,
    /// Developer name.
    pub developer_name: String,
    /// Developer country (from the mailing address).
    pub developer_country: Country,
    /// Developer contact email.
    pub developer_email: String,
    /// Developer website, if listed.
    pub developer_website: Option<String>,
    /// Average star rating (None until the first rating).
    pub rating: Option<f64>,
    /// Number of ratings behind the average.
    pub rating_count: u64,
}

/// The catalog: developers + apps, with uniqueness enforcement.
#[derive(Debug, Default)]
pub struct Catalog {
    developers: BTreeMap<DeveloperId, DeveloperRecord>,
    apps: BTreeMap<AppId, AppRecord>,
    by_package: BTreeMap<PackageName, AppId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a developer account.
    pub fn register_developer(&mut self, dev: DeveloperRecord) -> Result<()> {
        if self.developers.contains_key(&dev.id) {
            return Err(Error::InvalidState(format!("{} already exists", dev.id)));
        }
        self.developers.insert(dev.id, dev);
        Ok(())
    }

    /// Publishes an app. Fails if the package name is taken or the
    /// developer is unknown (Play requires an account to publish).
    pub fn publish(&mut self, app: AppRecord) -> Result<()> {
        if !self.developers.contains_key(&app.developer) {
            return Err(Error::Denied(format!(
                "unknown developer {} for {}",
                app.developer, app.package
            )));
        }
        if self.by_package.contains_key(&app.package) {
            return Err(Error::InvalidState(format!(
                "package {} already published",
                app.package
            )));
        }
        if self.apps.contains_key(&app.id) {
            return Err(Error::InvalidState(format!("{} already exists", app.id)));
        }
        self.by_package.insert(app.package.clone(), app.id);
        self.apps.insert(app.id, app);
        Ok(())
    }

    /// App by id.
    pub fn app(&self, id: AppId) -> Option<&AppRecord> {
        self.apps.get(&id)
    }

    /// App by package name.
    pub fn app_by_package(&self, package: &PackageName) -> Option<&AppRecord> {
        self.by_package
            .get(package)
            .and_then(|id| self.apps.get(id))
    }

    /// Developer by id.
    pub fn developer(&self, id: DeveloperId) -> Option<&DeveloperRecord> {
        self.developers.get(&id)
    }

    /// Iterates over all apps.
    pub fn apps(&self) -> impl Iterator<Item = &AppRecord> {
        self.apps.values()
    }

    /// Iterates over all developers.
    pub fn developers(&self) -> impl Iterator<Item = &DeveloperRecord> {
        self.developers.values()
    }

    /// Number of published apps.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no apps are published.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Builds the public profile for an app given its current exact
    /// install count and rating state (owned by the engagement ledger,
    /// not the catalog).
    pub fn profile(
        &self,
        id: AppId,
        exact_installs: u64,
        rating: Option<f64>,
        rating_count: u64,
    ) -> Option<AppProfile> {
        let app = self.apps.get(&id)?;
        let dev = self.developers.get(&app.developer)?;
        Some(AppProfile {
            package: app.package.clone(),
            title: app.title.clone(),
            genre: app.genre,
            released: app.released,
            installs: InstallBin::for_count(exact_installs),
            developer_id: dev.id,
            developer_name: dev.name.clone(),
            developer_country: dev.country,
            developer_email: dev.email.clone(),
            developer_website: dev.website.clone(),
            rating,
            rating_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(id: u64) -> DeveloperRecord {
        DeveloperRecord {
            id: DeveloperId(id),
            name: format!("Dev {id}"),
            country: Country::Us,
            email: format!("dev{id}@example.com"),
            website: Some(format!("https://dev{id}.example")),
        }
    }

    fn app(id: u64, dev: u64, pkg: &str) -> AppRecord {
        AppRecord {
            id: AppId(id),
            package: PackageName::new(pkg).unwrap(),
            title: format!("App {id}"),
            developer: DeveloperId(dev),
            genre: Genre::Tools,
            released: SimTime::from_days(100),
            apk: ApkInfo::bare(),
        }
    }

    #[test]
    fn publish_and_lookup() {
        let mut c = Catalog::new();
        c.register_developer(dev(1)).unwrap();
        c.publish(app(10, 1, "com.a.one")).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.app(AppId(10)).unwrap().title, "App 10");
        let pkg = PackageName::new("com.a.one").unwrap();
        assert_eq!(c.app_by_package(&pkg).unwrap().id, AppId(10));
    }

    #[test]
    fn publish_requires_developer() {
        let mut c = Catalog::new();
        assert_eq!(
            c.publish(app(10, 1, "com.a.one")).unwrap_err().kind(),
            "denied"
        );
    }

    #[test]
    fn duplicate_package_rejected() {
        let mut c = Catalog::new();
        c.register_developer(dev(1)).unwrap();
        c.publish(app(10, 1, "com.a.one")).unwrap();
        assert!(c.publish(app(11, 1, "com.a.one")).is_err());
        assert!(c.publish(app(10, 1, "com.a.two")).is_err());
    }

    #[test]
    fn duplicate_developer_rejected() {
        let mut c = Catalog::new();
        c.register_developer(dev(1)).unwrap();
        assert!(c.register_developer(dev(1)).is_err());
    }

    #[test]
    fn profile_bins_installs() {
        let mut c = Catalog::new();
        c.register_developer(dev(1)).unwrap();
        c.publish(app(10, 1, "com.a.one")).unwrap();
        let p = c.profile(AppId(10), 1_679, Some(4.3), 120).unwrap();
        assert_eq!(p.installs.lower_bound(), 1_000);
        assert_eq!(p.developer_country, Country::Us);
        assert_eq!(p.rating, Some(4.3));
        assert_eq!(p.rating_count, 120);
        assert!(c.profile(AppId(99), 0, None, 0).is_none());
    }
}
