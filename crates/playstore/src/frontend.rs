//! The store's HTTP frontend — what the §4.3 crawler actually crawls.
//!
//! Routes:
//!
//! * `GET /store/apps/details?id=<package>` — public profile as JSON;
//! * `GET /store/charts?chart=<id>&n=<count>` — a top chart snapshot;
//! * `GET /apk?id=<package>` — APK download for static analysis.
//!
//! Responses carry only *public* fields (binned installs, release day,
//! developer info) — the crawler cannot see exact counts, mirroring the
//! paper's limitation that Google "reports installs in bins".

use crate::charts::ChartKind;
use crate::store::PlayStore;
use iiscope_types::PackageName;
use iiscope_wire::{Handler, Json, Request, Response};
use std::sync::Arc;

/// Route of the app-profile endpoint.
pub const DETAILS_PATH: &str = "/store/apps/details";
/// Route of the top-charts endpoint.
pub const CHARTS_PATH: &str = "/store/charts";
/// Route of the APK download endpoint.
pub const APK_PATH: &str = "/apk";

/// HTTP handler over a shared store.
pub struct StoreFrontend {
    store: Arc<PlayStore>,
}

impl StoreFrontend {
    /// Wraps a store.
    pub fn new(store: Arc<PlayStore>) -> StoreFrontend {
        StoreFrontend { store }
    }

    fn details(&self, req: &Request) -> Response {
        let Some(id) = req.query_param("id") else {
            return Response::status(400);
        };
        let Ok(package) = PackageName::new(id) else {
            return Response::status(400);
        };
        match self.store.profile(&package) {
            Some(p) => Response::ok_json(&Json::obj([
                ("package", Json::str(p.package.as_str())),
                ("title", Json::str(p.title)),
                ("genre", Json::str(p.genre.play_id())),
                ("released_day", Json::Int(p.released.days() as i64)),
                ("min_installs", Json::Int(p.installs.lower_bound() as i64)),
                ("installs_label", Json::str(p.installs.to_string())),
                (
                    "rating",
                    match p.rating {
                        // One decimal, as the store UI shows.
                        Some(r) => Json::Float((r * 10.0).round() / 10.0),
                        None => Json::Null,
                    },
                ),
                ("rating_count", Json::Int(p.rating_count as i64)),
                (
                    "developer",
                    Json::obj([
                        ("id", Json::Int(p.developer_id.raw() as i64)),
                        ("name", Json::str(p.developer_name)),
                        ("country", Json::str(p.developer_country.code())),
                        ("email", Json::str(p.developer_email)),
                        (
                            "website",
                            match p.developer_website {
                                Some(w) => Json::str(w),
                                None => Json::Null,
                            },
                        ),
                    ]),
                ),
            ])),
            None => Response::not_found(),
        }
    }

    fn charts(&self, req: &Request, now: iiscope_types::SimTime) -> Response {
        let chart = match req.query_param("chart").as_deref() {
            Some("topselling_free") => ChartKind::TopFree,
            Some("topselling_free_games") => ChartKind::TopGames,
            Some("topgrossing") => ChartKind::TopGrossing,
            _ => return Response::status(400),
        };
        let n: usize = req
            .query_param("n")
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        let entries = self.store.chart(chart, now);
        let items = entries.iter().take(n).filter_map(|e| {
            let pkg = self.store.package_of(e.app)?;
            Some(Json::obj([
                ("package", Json::str(pkg.as_str())),
                ("rank", Json::Int(e.rank as i64)),
            ]))
        });
        Response::ok_json(&Json::obj([
            (
                "chart",
                Json::str(req.query_param("chart").unwrap_or_default()),
            ),
            ("entries", Json::arr(items)),
        ]))
    }

    fn apk(&self, req: &Request) -> Response {
        let Some(id) = req.query_param("id") else {
            return Response::status(400);
        };
        let Ok(package) = PackageName::new(id) else {
            return Response::status(400);
        };
        match self.store.apk_bytes(&package) {
            Some(bytes) => Response::ok_bytes(bytes, "application/vnd.android.package-archive"),
            None => Response::not_found(),
        }
    }
}

impl Handler for StoreFrontend {
    fn handle(&self, req: &Request, ctx: &iiscope_wire::http::RequestCtx) -> Response {
        match req.path() {
            DETAILS_PATH => self.details(req),
            CHARTS_PATH => self.charts(req, ctx.now),
            APK_PATH => self.apk(req),
            _ => Response::not_found(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apk::ApkInfo;
    use crate::engagement::InstallSignals;
    use crate::store::InstallSource;
    use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
    use iiscope_types::{Country, Genre, SeedFork, SimTime};
    use iiscope_wire::http::RequestCtx;

    fn rig() -> (Arc<PlayStore>, StoreFrontend, RequestCtx) {
        let store = Arc::new(PlayStore::new(SeedFork::new(7)));
        let dev = store.register_developer(
            "Acme",
            Country::De,
            "a@x.de",
            Some("https://acme.de".into()),
        );
        let app = store
            .publish(
                PackageName::new("com.acme.runner").unwrap(),
                "Runner",
                dev,
                Genre::GameArcade,
                SimTime::from_days(5),
                ApkInfo::bare(),
            )
            .unwrap();
        let now = SimTime::from_days(40);
        for _ in 0..120 {
            store
                .record_install(app, now, InstallSignals::clean(1), &InstallSource::Organic)
                .unwrap();
            store.record_session(app, now, 200).unwrap();
        }
        let frontend = StoreFrontend::new(Arc::clone(&store));
        let ctx = RequestCtx {
            peer: PeerInfo {
                addr: HostAddr {
                    ip: std::net::Ipv4Addr::new(1, 2, 3, 4),
                    asn: AsnId(1),
                    asn_kind: AsnKind::Datacenter,
                    country: Country::Us,
                },
                opened_at: now,
                link: iiscope_types::SeedFork::new(1),
            },
            now,
        };
        (store, frontend, ctx)
    }

    #[test]
    fn details_route_serves_public_profile() {
        let (_s, f, ctx) = rig();
        let resp = f.handle(
            &Request::get("/store/apps/details?id=com.acme.runner"),
            &ctx,
        );
        assert!(resp.is_success());
        let j = resp.body_json().unwrap();
        assert_eq!(
            j.get("package").and_then(Json::as_str),
            Some("com.acme.runner")
        );
        assert_eq!(j.get("min_installs").and_then(Json::as_i64), Some(100));
        assert_eq!(j.get("installs_label").and_then(Json::as_str), Some("100+"));
        let dev = j.get("developer").unwrap();
        assert_eq!(dev.get("country").and_then(Json::as_str), Some("DE"));
    }

    #[test]
    fn details_missing_and_malformed() {
        let (_s, f, ctx) = rig();
        assert_eq!(
            f.handle(&Request::get("/store/apps/details"), &ctx).status,
            400
        );
        assert_eq!(
            f.handle(&Request::get("/store/apps/details?id=bad"), &ctx)
                .status,
            400
        );
        assert_eq!(
            f.handle(&Request::get("/store/apps/details?id=com.no.app"), &ctx)
                .status,
            404
        );
    }

    #[test]
    fn charts_route() {
        let (_s, f, ctx) = rig();
        let resp = f.handle(
            &Request::get("/store/charts?chart=topselling_free_games&n=10"),
            &ctx,
        );
        assert!(resp.is_success());
        let j = resp.body_json().unwrap();
        let entries = j.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("package").and_then(Json::as_str),
            Some("com.acme.runner")
        );
        assert_eq!(entries[0].get("rank").and_then(Json::as_i64), Some(1));
        assert_eq!(
            f.handle(&Request::get("/store/charts?chart=bogus"), &ctx)
                .status,
            400
        );
    }

    #[test]
    fn apk_route_serves_bytes() {
        let (_s, f, ctx) = rig();
        let resp = f.handle(&Request::get("/apk?id=com.acme.runner"), &ctx);
        assert!(resp.is_success());
        assert!(resp.body.starts_with(b"dex\n"));
        assert_eq!(
            f.handle(&Request::get("/apk?id=com.no.app"), &ctx).status,
            404
        );
    }

    #[test]
    fn unknown_route_404s() {
        let (_s, f, ctx) = rig();
        assert_eq!(f.handle(&Request::get("/nope"), &ctx).status, 404);
    }
}
