//! Per-app engagement ledger: the ground truth behind install counts,
//! chart scores, console analytics and the enforcement sweep.
//!
//! Every install carries [`InstallSignals`] — the device-quality facts
//! (§3.2's emulator / rooted / datacenter-ASN / shared-/24 signals)
//! that the Play-side fraud filter of §5.2 *could* use. The ledger also
//! buckets sessions, registrations, purchases and revenue per day so
//! chart ranking can be computed over a trailing window.

use iiscope_types::{SimTime, Usd};
use std::collections::BTreeMap;

/// Device-quality signals attached to one install event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallSignals {
    /// Install came from an emulator build.
    pub emulator: bool,
    /// Device is rooted.
    pub rooted: bool,
    /// Source address belongs to a datacenter/cloud ASN.
    pub datacenter_asn: bool,
    /// /24 prefix of the source address (upper 24 bits meaningful).
    pub block24: u32,
}

impl InstallSignals {
    /// A perfectly ordinary eyeball-network install.
    pub fn clean(block24: u32) -> InstallSignals {
        InstallSignals {
            emulator: false,
            rooted: false,
            datacenter_asn: false,
            block24,
        }
    }

    /// True when any individual fraud marker is raised.
    pub fn is_suspicious(&self) -> bool {
        self.emulator || self.datacenter_asn
    }
}

/// One recorded install.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallEvent {
    /// When the install happened.
    pub at: SimTime,
    /// Device-quality signals.
    pub signals: InstallSignals,
    /// Attribution tag (empty for organic installs).
    pub source_tag: String,
    /// Whether the enforcement sweep has removed this install from the
    /// public count.
    pub filtered: bool,
}

/// Aggregates for one simulated day.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Installs recorded this day.
    pub installs: u64,
    /// App sessions ("opens") this day.
    pub sessions: u64,
    /// Total session seconds this day.
    pub session_secs: u64,
    /// Account registrations this day.
    pub registrations: u64,
    /// In-app purchases this day.
    pub purchases: u64,
    /// Revenue micro-dollars this day.
    pub revenue_micros: i64,
}

/// The per-app ledger.
#[derive(Debug, Default)]
pub struct EngagementLedger {
    installs: Vec<InstallEvent>,
    /// Aggregate organic installs recorded in bulk (no per-event
    /// record; organic traffic of a 100M-install app cannot be
    /// materialized event by event).
    bulk_installs: u64,
    filtered: u64,
    days: BTreeMap<u64, DayStats>,
    /// Cumulative star ratings (sum of stars, count of ratings).
    /// Ratings are a public profile surface ("User Ratings, Reviews,
    /// and Installs" is the policy page the paper cites); they are
    /// cumulative, not windowed.
    rating_sum: u64,
    rating_count: u64,
}

impl EngagementLedger {
    /// Empty ledger.
    pub fn new() -> EngagementLedger {
        EngagementLedger::default()
    }

    /// Records an install.
    pub fn record_install(&mut self, at: SimTime, signals: InstallSignals, source_tag: &str) {
        self.installs.push(InstallEvent {
            at,
            signals,
            source_tag: source_tag.to_string(),
            filtered: false,
        });
        self.days.entry(at.days()).or_default().installs += 1;
    }

    /// Records `n` organic installs in aggregate (day stats only; no
    /// per-event records, so enforcement never touches them — organic
    /// installs are clean by construction).
    pub fn record_installs_bulk(&mut self, at: SimTime, n: u64) {
        self.bulk_installs += n;
        self.days.entry(at.days()).or_default().installs += n;
    }

    /// Records `sessions` app sessions totalling `secs` seconds, in
    /// aggregate (background engagement of popular apps).
    pub fn record_sessions_bulk(&mut self, at: SimTime, sessions: u64, secs: u64) {
        let d = self.days.entry(at.days()).or_default();
        d.sessions += sessions;
        d.session_secs += secs;
    }

    /// Records aggregate purchase revenue (`purchases` transactions
    /// totalling `amount`).
    pub fn record_revenue_bulk(&mut self, at: SimTime, purchases: u64, amount: Usd) {
        let d = self.days.entry(at.days()).or_default();
        d.purchases += purchases;
        d.revenue_micros += amount.micros();
    }

    /// Records an app session of `secs` seconds.
    pub fn record_session(&mut self, at: SimTime, secs: u64) {
        let d = self.days.entry(at.days()).or_default();
        d.sessions += 1;
        d.session_secs += secs;
    }

    /// Records one star rating (1..=5; clamped).
    pub fn record_rating(&mut self, stars: u8) {
        let stars = stars.clamp(1, 5);
        self.rating_sum += u64::from(stars);
        self.rating_count += 1;
    }

    /// Records `count` ratings totalling `total_stars` in aggregate.
    pub fn record_ratings_bulk(&mut self, count: u64, total_stars: u64) {
        debug_assert!(total_stars <= count * 5);
        self.rating_sum += total_stars;
        self.rating_count += count;
    }

    /// Average star rating, if any ratings exist.
    pub fn average_rating(&self) -> Option<f64> {
        if self.rating_count == 0 {
            None
        } else {
            Some(self.rating_sum as f64 / self.rating_count as f64)
        }
    }

    /// Number of ratings.
    pub fn rating_count(&self) -> u64 {
        self.rating_count
    }

    /// Records an account registration.
    pub fn record_registration(&mut self, at: SimTime) {
        self.days.entry(at.days()).or_default().registrations += 1;
    }

    /// Records an in-app purchase.
    pub fn record_purchase(&mut self, at: SimTime, amount: Usd) {
        let d = self.days.entry(at.days()).or_default();
        d.purchases += 1;
        d.revenue_micros += amount.micros();
    }

    /// Exact lifetime installs minus enforcement-filtered ones — the
    /// number the public bin is derived from.
    pub fn public_installs(&self) -> u64 {
        self.installs.len() as u64 + self.bulk_installs - self.filtered
    }

    /// Exact lifetime installs including filtered ones.
    pub fn gross_installs(&self) -> u64 {
        self.installs.len() as u64 + self.bulk_installs
    }

    /// Number of installs removed by enforcement so far.
    pub fn filtered_installs(&self) -> u64 {
        self.filtered
    }

    /// All install events (enforcement and forensics iterate these).
    pub fn install_events(&self) -> &[InstallEvent] {
        &self.installs
    }

    /// Marks `n` not-yet-filtered installs matching `pred` as filtered;
    /// returns how many were actually removed.
    pub fn filter_installs(&mut self, n: u64, mut pred: impl FnMut(&InstallEvent) -> bool) -> u64 {
        let mut removed = 0;
        for ev in self.installs.iter_mut() {
            if removed == n {
                break;
            }
            if !ev.filtered && pred(ev) {
                ev.filtered = true;
                removed += 1;
            }
        }
        self.filtered += removed;
        removed
    }

    /// Day bucket accessor.
    pub fn day(&self, day: u64) -> DayStats {
        self.days.get(&day).copied().unwrap_or_default()
    }

    /// Sums day stats over `[now - window_days, now]` (inclusive of the
    /// current day).
    pub fn trailing(&self, now: SimTime, window_days: u64) -> DayStats {
        let end = now.days();
        let start = end.saturating_sub(window_days);
        let mut acc = DayStats::default();
        for (_, d) in self.days.range(start..=end) {
            acc.installs += d.installs;
            acc.sessions += d.sessions;
            acc.session_secs += d.session_secs;
            acc.registrations += d.registrations;
            acc.purchases += d.purchases;
            acc.revenue_micros += d.revenue_micros;
        }
        acc
    }

    /// Lifetime revenue.
    pub fn total_revenue(&self) -> Usd {
        Usd::from_micros(self.days.values().map(|d| d.revenue_micros).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_counting() {
        let mut l = EngagementLedger::new();
        for i in 0..5 {
            l.record_install(SimTime::from_days(i), InstallSignals::clean(0x0A000100), "");
        }
        assert_eq!(l.public_installs(), 5);
        assert_eq!(l.gross_installs(), 5);
        assert_eq!(l.day(2).installs, 1);
    }

    #[test]
    fn filtering_reduces_public_count_only() {
        let mut l = EngagementLedger::new();
        let farm = InstallSignals {
            emulator: true,
            rooted: true,
            datacenter_asn: false,
            block24: 1,
        };
        for _ in 0..10 {
            l.record_install(SimTime::EPOCH, farm, "iip");
        }
        for _ in 0..3 {
            l.record_install(SimTime::EPOCH, InstallSignals::clean(2), "");
        }
        let removed = l.filter_installs(5, |e| e.signals.emulator);
        assert_eq!(removed, 5);
        assert_eq!(l.public_installs(), 8);
        assert_eq!(l.gross_installs(), 13);
        assert_eq!(l.filtered_installs(), 5);
        // Only 5 more emulator installs remain to filter.
        assert_eq!(l.filter_installs(100, |e| e.signals.emulator), 5);
    }

    #[test]
    fn trailing_window_sums_correct_days() {
        let mut l = EngagementLedger::new();
        l.record_session(SimTime::from_days(10), 60);
        l.record_session(SimTime::from_days(12), 120);
        l.record_session(SimTime::from_days(20), 30);
        let w = l.trailing(SimTime::from_days(13), 3);
        assert_eq!(w.sessions, 2);
        assert_eq!(w.session_secs, 180);
        let w = l.trailing(SimTime::from_days(13), 0);
        assert_eq!(w.sessions, 0);
    }

    #[test]
    fn purchases_and_revenue() {
        let mut l = EngagementLedger::new();
        l.record_purchase(SimTime::from_days(1), Usd::from_cents(499));
        l.record_purchase(SimTime::from_days(2), Usd::from_cents(99));
        l.record_registration(SimTime::from_days(1));
        assert_eq!(l.total_revenue(), Usd::from_cents(598));
        assert_eq!(l.day(1).purchases, 1);
        assert_eq!(l.day(1).registrations, 1);
        let w = l.trailing(SimTime::from_days(2), 7);
        assert_eq!(w.revenue_micros, Usd::from_cents(598).micros());
    }

    #[test]
    fn suspicious_signal_logic() {
        assert!(!InstallSignals::clean(0).is_suspicious());
        let mut s = InstallSignals::clean(0);
        s.emulator = true;
        assert!(s.is_suspicious());
        let mut s = InstallSignals::clean(0);
        s.datacenter_asn = true;
        assert!(s.is_suspicious());
        let mut s = InstallSignals::clean(0);
        s.rooted = true;
        assert!(!s.is_suspicious(), "rooted alone is common and not fraud");
    }
}
