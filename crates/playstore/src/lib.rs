//! # iiscope-playstore
//!
//! A Google Play Store simulator exposing exactly the observables the
//! paper measures through:
//!
//! * **public app profiles** — title, package, genre, developer info
//!   (country, website), release date, and the *binned* install count
//!   ("Google reports installs in bins of a lower-bound 'minimum'
//!   number of installs", §4.2) — crawled every other day in §4.3.1;
//! * **top charts** — trending lists ranked by *user engagement*
//!   metrics, not raw installs ("Google Play Store places apps in top
//!   charts based on user engagement metrics", §4.3.1), which is the
//!   paper's explanation for why activity offers move charts while
//!   no-activity offers only move install counts;
//! * **the developer console** — per-app acquisition analytics the
//!   honey-app experiment relies on ("We use analytics provided by
//!   Google Play Store's developer console to measure the delivery of
//!   installs", §3.2);
//! * **policy enforcement** — the install-filtering pipeline whose
//!   (in)effectiveness §5.2 measures via install-count *decreases*.
//!
//! The store also serves an HTTP frontend ([`frontend`]) so the
//! crawler in `iiscope-monitor` actually crawls, and APK downloads so
//! the LibRadar-style analysis in `iiscope-analysis` has bytes to scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apk;
pub mod bins;
pub mod catalog;
pub mod charts;
pub mod console;
pub mod engagement;
pub mod frontend;
pub mod policy;
pub mod store;

pub use apk::{AdLibrary, ApkInfo};
pub use bins::InstallBin;
pub use catalog::{AppProfile, AppRecord, DeveloperRecord};
pub use charts::{ChartKind, ChartRanking};
pub use console::AcquisitionReport;
pub use engagement::InstallSignals;
pub use policy::EnforcementConfig;
pub use store::{DetectorSnapshot, InstallSource, PlayStore};
