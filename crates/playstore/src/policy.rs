//! Play-side policy enforcement: the install-filtering pipeline.
//!
//! §5.2 measures enforcement indirectly: a *decrease* in a public
//! install count means Google "identified and removed incentivized
//! installs". The paper observes essentially no decreases for baseline
//! and vetted-IIP apps and decreases for only ~2% of unvetted-IIP apps
//! — enforcement exists but is lax. The mechanism here explains why:
//!
//! * crowd-worker installs on real phones are indistinguishable from
//!   organic users ("these installs and user actions resemble that of
//!   authentic organic users", §1), so the filter can only act on hard
//!   signals — emulator builds and datacenter ASNs;
//! * those hard signals are a minority of incentivized installs, so
//!   even a confident sweep rarely crosses a bin boundary downward.
//!
//! The optional *lockstep* detector (flagging bursts of installs from
//! one /24) implements the future-work direction the paper proposes
//! ("detecting the lockstep behavior of users", §5.2) and is exercised
//! by the enforcement ablation bench.

use crate::engagement::EngagementLedger;
use iiscope_types::rng::chance;
use rand::Rng;
use std::collections::BTreeMap;

/// Tuning of the enforcement sweep.
#[derive(Debug, Clone)]
pub struct EnforcementConfig {
    /// Master switch.
    pub enabled: bool,
    /// Fraction of hard-flagged installs removed when a sweep fires.
    pub detection_rate: f64,
    /// Minimum hard-flagged installs before an app is even considered.
    pub min_flagged: u64,
    /// Probability per sweep that a considered app is actioned.
    pub action_prob: f64,
    /// Future-work knob: also flag lockstep /24 bursts.
    pub detect_lockstep: bool,
    /// Installs from one /24 needed to call it lockstep.
    pub lockstep_threshold: u64,
    /// Flagged installs a campaign tag must carry before removal
    /// cascades to the whole tag (a couple of stray emulators on an
    /// otherwise-clean campaign do not condemn it).
    pub tag_implication_min: u64,
}

impl Default for EnforcementConfig {
    /// The calibrated "lax" profile that reproduces §5.2's shape:
    /// decreases are possible but rare (per daily sweep), and only
    /// campaigns with enough correlated signal — device-farm bursts —
    /// are ever eligible. Because removals cascade to the flagged
    /// installs' campaign tags, an actioned app loses most of a
    /// campaign's installs at once, which is what makes the 1,000→500
    /// bin drop of §5.2 observable at all.
    fn default() -> EnforcementConfig {
        EnforcementConfig {
            enabled: true,
            detection_rate: 0.85,
            min_flagged: 16,
            action_prob: 0.012,
            detect_lockstep: true,
            lockstep_threshold: 12,
            tag_implication_min: 8,
        }
    }
}

impl EnforcementConfig {
    /// Enforcement fully off.
    pub fn disabled() -> EnforcementConfig {
        EnforcementConfig {
            enabled: false,
            ..EnforcementConfig::default()
        }
    }

    /// An aggressive profile for the ablation bench (always acts,
    /// lockstep detection on).
    pub fn strict() -> EnforcementConfig {
        EnforcementConfig {
            enabled: true,
            detection_rate: 1.0,
            min_flagged: 5,
            action_prob: 1.0,
            detect_lockstep: true,
            lockstep_threshold: 10,
            tag_implication_min: 1,
        }
    }
}

/// Runs one sweep over an app's ledger; returns how many installs were
/// removed from the public count.
///
/// When a sweep fires, removal cascades from the flagged installs to
/// every install sharing their campaign attribution tags — the "we
/// identified this incentivized campaign, purge it" model. Organic
/// installs (empty tag) are only removed when individually flagged.
pub fn sweep(ledger: &mut EngagementLedger, cfg: &EnforcementConfig, rng: &mut impl Rng) -> u64 {
    if !cfg.enabled {
        return 0;
    }
    // Hard signals.
    let mut flagged: u64 = ledger
        .install_events()
        .iter()
        .filter(|e| !e.filtered && e.signals.is_suspicious())
        .count() as u64;

    // Optional lockstep pass: count installs in /24 blocks that exceed
    // the burst threshold.
    let mut lockstep_blocks: Vec<u32> = Vec::new();
    if cfg.detect_lockstep {
        let mut per_block: BTreeMap<u32, u64> = BTreeMap::new();
        for e in ledger.install_events().iter().filter(|e| !e.filtered) {
            *per_block.entry(e.signals.block24).or_default() += 1;
        }
        for (block, n) in per_block {
            if n >= cfg.lockstep_threshold {
                lockstep_blocks.push(block);
                flagged += n;
            }
        }
    }

    if flagged < cfg.min_flagged || !chance(rng, cfg.action_prob) {
        return 0;
    }

    // Campaign tags implicated by the flagged installs — but only
    // tags carrying a meaningful amount of flagged traffic.
    let mut tag_counts: BTreeMap<&str, u64> = BTreeMap::new();
    for e in ledger.install_events().iter().filter(|e| {
        !e.filtered
            && !e.source_tag.is_empty()
            && (e.signals.is_suspicious() || lockstep_blocks.contains(&e.signals.block24))
    }) {
        *tag_counts.entry(e.source_tag.as_str()).or_default() += 1;
    }
    let tags: Vec<String> = tag_counts
        .into_iter()
        .filter(|(_, n)| *n >= cfg.tag_implication_min)
        .map(|(t, _)| t.to_string())
        .collect();

    // Everything matching an implicated tag, a flagged block, or a
    // hard signal is in scope; remove `detection_rate` of it.
    let in_scope = ledger
        .install_events()
        .iter()
        .filter(|e| {
            !e.filtered
                && (e.signals.is_suspicious()
                    || lockstep_blocks.contains(&e.signals.block24)
                    || (!e.source_tag.is_empty() && tags.binary_search(&e.source_tag).is_ok()))
        })
        .count() as u64;
    let to_remove = (in_scope as f64 * cfg.detection_rate).ceil() as u64;
    ledger.filter_installs(to_remove, |e| {
        e.signals.is_suspicious()
            || lockstep_blocks.contains(&e.signals.block24)
            || (!e.source_tag.is_empty() && tags.binary_search(&e.source_tag).is_ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engagement::InstallSignals;
    use iiscope_types::{SeedFork, SimTime};

    fn ledger_with(clean: u64, emulator: u64, farm_block: Option<(u32, u64)>) -> EngagementLedger {
        let mut l = EngagementLedger::new();
        for i in 0..clean {
            l.record_install(SimTime::EPOCH, InstallSignals::clean(1000 + i as u32), "");
        }
        for _ in 0..emulator {
            l.record_install(
                SimTime::EPOCH,
                InstallSignals {
                    emulator: true,
                    rooted: false,
                    datacenter_asn: false,
                    block24: 1,
                },
                "iip",
            );
        }
        if let Some((block, n)) = farm_block {
            for _ in 0..n {
                let mut s = InstallSignals::clean(block);
                s.rooted = true;
                l.record_install(SimTime::EPOCH, s, "iip");
            }
        }
        l
    }

    #[test]
    fn disabled_never_removes() {
        let mut l = ledger_with(10, 100, None);
        let mut rng = SeedFork::new(1).rng();
        assert_eq!(sweep(&mut l, &EnforcementConfig::disabled(), &mut rng), 0);
        assert_eq!(l.public_installs(), 110);
    }

    #[test]
    fn strict_removes_hard_flagged_only() {
        let mut l = ledger_with(50, 30, None);
        let mut rng = SeedFork::new(2).rng();
        let removed = sweep(&mut l, &EnforcementConfig::strict(), &mut rng);
        assert_eq!(removed, 30, "all emulator installs go");
        assert_eq!(l.public_installs(), 50, "clean installs untouched");
    }

    #[test]
    fn below_threshold_never_actioned() {
        let mut l = ledger_with(100, 3, None);
        let mut rng = SeedFork::new(3).rng();
        let cfg = EnforcementConfig {
            action_prob: 1.0,
            ..EnforcementConfig::default()
        };
        assert_eq!(sweep(&mut l, &cfg, &mut rng), 0, "3 < min_flagged=25");
    }

    #[test]
    fn lockstep_detection_catches_device_farms() {
        // A farm: 20 rooted real-device installs behind one /24 — the
        // §3.2 observation. Hard signals alone miss it...
        let mut l = ledger_with(10, 0, Some((42, 20)));
        let mut rng = SeedFork::new(4).rng();
        let mut cfg = EnforcementConfig::strict();
        cfg.detect_lockstep = false;
        assert_eq!(
            sweep(&mut l, &cfg, &mut rng),
            0,
            "invisible without lockstep"
        );
        // ...but the lockstep detector flags the block.
        let mut l = ledger_with(10, 0, Some((42, 20)));
        let removed = sweep(&mut l, &EnforcementConfig::strict(), &mut rng);
        assert_eq!(removed, 20);
        assert_eq!(l.public_installs(), 10);
    }

    #[test]
    fn default_profile_is_very_lax_per_sweep() {
        // The default profile sweeps daily; per-sweep action chance is
        // well under 1%, so over 2,000 eligible-app sweeps only a
        // handful fire.
        let mut rng = SeedFork::new(5).rng();
        let mut actioned = 0;
        for _ in 0..2_000 {
            let mut l = ledger_with(100, 40, None);
            if sweep(&mut l, &EnforcementConfig::default(), &mut rng) > 0 {
                actioned += 1;
            }
        }
        let rate = actioned as f64 / 2_000.0;
        assert!(rate < 0.05, "default must be lax per sweep, got {rate}");
    }

    #[test]
    fn removal_cascades_to_the_campaign_tag() {
        // 30 emulator installs tagged "iip" plus 200 clean installs
        // with the SAME tag (the rest of the campaign) and 50 organic
        // installs: an actioned sweep purges the campaign, not just
        // the emulators — that cascade is what crosses bin boundaries
        // downward (§5.2's 1,000 → 500).
        let mut l = ledger_with(50, 30, None);
        for i in 0..200u32 {
            let mut s = InstallSignals::clean(5_000 + i);
            s.rooted = false;
            let _ = s;
            l.record_install(SimTime::EPOCH, InstallSignals::clean(5_000 + i), "iip");
        }
        let mut rng = SeedFork::new(6).rng();
        let removed = sweep(&mut l, &EnforcementConfig::strict(), &mut rng);
        // ceil(0.85 × 230) of the in-scope installs… strict uses 1.0.
        assert_eq!(removed, 230, "30 emulators + 200 same-tag installs");
        assert_eq!(l.public_installs(), 50, "organic installs survive");
    }
}
