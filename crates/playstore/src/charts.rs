//! Top-chart ranking.
//!
//! §4.3.1: "Google Play Store places apps in top charts based on user
//! engagement metrics, which cannot be inflated with no activity offers
//! on unvetted IIPs." That sentence is the paper's causal story for
//! Table 6 (only vetted IIPs correlate with chart appearances) and
//! Figure 5 (registration/usage offers push TREBEL into top-games,
//! purchase offers push World on Fire into top-grossing). The default
//! ranker is therefore engagement-weighted; an install-weighted
//! alternative exists purely for the ablation bench that shows the
//! vetted/unvetted gap collapsing without it.

use crate::engagement::DayStats;
use iiscope_types::{AppId, Genre};

/// Which chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChartKind {
    /// Top free apps (all categories).
    TopFree,
    /// Top games.
    TopGames,
    /// Top grossing (revenue-driven).
    TopGrossing,
}

impl ChartKind {
    /// All charts the crawler scrapes.
    pub const ALL: [ChartKind; 3] = [
        ChartKind::TopFree,
        ChartKind::TopGames,
        ChartKind::TopGrossing,
    ];

    /// Chart id used in frontend URLs.
    pub fn id(self) -> &'static str {
        match self {
            ChartKind::TopFree => "topselling_free",
            ChartKind::TopGames => "topselling_free_games",
            ChartKind::TopGrossing => "topgrossing",
        }
    }

    /// Whether an app of `genre` is eligible for this chart.
    pub fn eligible(self, genre: Genre) -> bool {
        match self {
            ChartKind::TopFree => true,
            ChartKind::TopGames => genre.is_game(),
            ChartKind::TopGrossing => true,
        }
    }
}

/// Ranking policy (the ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartRanking {
    /// The real-world-like default: weighted blend of trailing
    /// installs, sessions, session time and registrations; revenue
    /// dominates the grossing chart.
    EngagementWeighted,
    /// Naive alternative: trailing installs only.
    InstallWeighted,
}

/// Number of rank slots per chart (Play shows a few hundred).
pub const CHART_SIZE: usize = 200;

/// Computes an app's score for `chart` from its trailing-window stats.
///
/// Weights are tuned so that: raw installs alone can lift an app into
/// TopFree's tail but not far; session time and registrations move
/// TopFree/TopGames strongly; only revenue meaningfully moves
/// TopGrossing.
pub fn score(ranking: ChartRanking, chart: ChartKind, w: &DayStats) -> f64 {
    match ranking {
        ChartRanking::InstallWeighted => w.installs as f64,
        ChartRanking::EngagementWeighted => match chart {
            ChartKind::TopFree | ChartKind::TopGames => {
                w.installs as f64
                    + 3.0 * w.sessions as f64
                    + 0.02 * w.session_secs as f64
                    + 5.0 * w.registrations as f64
            }
            ChartKind::TopGrossing => {
                0.05 * w.sessions as f64 + (w.revenue_micros.max(0) as f64) / 50_000.0
            }
        },
    }
}

/// One chart entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChartEntry {
    /// Ranked app.
    pub app: AppId,
    /// 1-based rank.
    pub rank: usize,
    /// The score that produced the rank (useful for Figure 5's
    /// percentile axis).
    pub score: f64,
}

/// Ranks eligible apps by score, ties broken by `AppId` for
/// determinism, truncated to [`CHART_SIZE`]. Zero-score apps never
/// chart (an app with no recent activity is not "trending").
pub fn rank(entries: impl IntoIterator<Item = (AppId, f64)>) -> Vec<ChartEntry> {
    let mut scored: Vec<(AppId, f64)> = entries.into_iter().filter(|(_, s)| *s > 0.0).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(CHART_SIZE);
    scored
        .into_iter()
        .enumerate()
        .map(|(i, (app, score))| ChartEntry {
            app,
            rank: i + 1,
            score,
        })
        .collect()
}

/// Percentile rank (Figure 5's y-axis): rank 1 of N → 100.0, rank N of
/// N → ~0.0. Returns `None` for apps not on the chart.
pub fn percentile(entries: &[ChartEntry], app: AppId) -> Option<f64> {
    let n = entries.len();
    entries
        .iter()
        .find(|e| e.app == app)
        .map(|e| 100.0 * (n - e.rank) as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(installs: u64, sessions: u64, secs: u64, regs: u64, revenue_cents: i64) -> DayStats {
        DayStats {
            installs,
            sessions,
            session_secs: secs,
            registrations: regs,
            purchases: 0,
            revenue_micros: revenue_cents * 10_000,
        }
    }

    #[test]
    fn engagement_beats_raw_installs_on_top_free() {
        // 500 no-activity installs vs 200 installs with real usage.
        let no_activity = stats(500, 500, 2_500, 0, 0); // one brief open each
        let activity = stats(200, 600, 120_000, 180, 0);
        let s_no = score(
            ChartRanking::EngagementWeighted,
            ChartKind::TopFree,
            &no_activity,
        );
        let s_act = score(
            ChartRanking::EngagementWeighted,
            ChartKind::TopFree,
            &activity,
        );
        assert!(s_act > s_no, "{s_act} should beat {s_no}");
        // …but under the ablation ranker the order flips.
        let s_no = score(
            ChartRanking::InstallWeighted,
            ChartKind::TopFree,
            &no_activity,
        );
        let s_act = score(ChartRanking::InstallWeighted, ChartKind::TopFree, &activity);
        assert!(s_no > s_act);
    }

    #[test]
    fn only_revenue_moves_top_grossing() {
        let installs_only = stats(10_000, 10_000, 50_000, 0, 0);
        let purchaser = stats(50, 100, 5_000, 0, 500 * 100); // $500 revenue
        let s_i = score(
            ChartRanking::EngagementWeighted,
            ChartKind::TopGrossing,
            &installs_only,
        );
        let s_p = score(
            ChartRanking::EngagementWeighted,
            ChartKind::TopGrossing,
            &purchaser,
        );
        assert!(s_p > s_i, "{s_p} vs {s_i}");
    }

    #[test]
    fn eligibility() {
        assert!(ChartKind::TopGames.eligible(iiscope_types::Genre::GamePuzzle));
        assert!(!ChartKind::TopGames.eligible(iiscope_types::Genre::Finance));
        assert!(ChartKind::TopFree.eligible(iiscope_types::Genre::Finance));
    }

    #[test]
    fn rank_orders_truncates_and_skips_zero() {
        let entries: Vec<(AppId, f64)> = (0..300).map(|i| (AppId(i), i as f64)).collect();
        let ranked = rank(entries);
        assert_eq!(ranked.len(), CHART_SIZE);
        assert_eq!(ranked[0].app, AppId(299));
        assert_eq!(ranked[0].rank, 1);
        assert!(ranked.iter().all(|e| e.score > 0.0), "zero scores excluded");
    }

    #[test]
    fn rank_ties_break_deterministically() {
        let ranked = rank([(AppId(5), 1.0), (AppId(2), 1.0), (AppId(9), 1.0)]);
        assert_eq!(
            ranked.iter().map(|e| e.app).collect::<Vec<_>>(),
            vec![AppId(2), AppId(5), AppId(9)]
        );
    }

    #[test]
    fn percentile_math() {
        let ranked = rank((1..=100).map(|i| (AppId(i), 101.0 - i as f64)));
        assert_eq!(percentile(&ranked, AppId(1)), Some(99.0)); // rank 1
        assert_eq!(percentile(&ranked, AppId(100)), Some(0.0)); // last
        assert_eq!(percentile(&ranked, AppId(999)), None);
    }
}
