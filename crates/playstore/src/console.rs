//! The developer console's acquisition analytics.
//!
//! §3.2 leans on the console twice: to count delivered installs per
//! campaign ("We use analytics provided by Google Play Store's
//! developer console to measure the delivery of installs by each IIP")
//! and to rule out contamination ("we use Google Play Store's developer
//! console to verify that we do not receive any organic installs …
//! during our incentivized install campaigns").

use crate::engagement::EngagementLedger;
use iiscope_types::SimTime;
use std::collections::BTreeMap;

/// Acquisition report for one app over a time range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquisitionReport {
    /// Installs without an attribution tag (store search, charts).
    pub organic: u64,
    /// Installs per attribution tag (campaign tracking links).
    pub by_tag: BTreeMap<String, u64>,
    /// Total installs in range (organic + tagged), before enforcement
    /// filtering (the console shows acquisitions, not net installs).
    pub total: u64,
}

impl AcquisitionReport {
    /// Installs attributed to a specific tag.
    pub fn tagged(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).copied().unwrap_or(0)
    }
}

/// Builds the acquisition report for `[from, to)`.
pub fn acquisition_report(
    ledger: &EngagementLedger,
    from: SimTime,
    to: SimTime,
) -> AcquisitionReport {
    let mut organic = 0;
    let mut by_tag: BTreeMap<String, u64> = BTreeMap::new();
    let mut total = 0;
    for ev in ledger.install_events() {
        if ev.at < from || ev.at >= to {
            continue;
        }
        total += 1;
        if ev.source_tag.is_empty() {
            organic += 1;
        } else {
            *by_tag.entry(ev.source_tag.clone()).or_default() += 1;
        }
    }
    AcquisitionReport {
        organic,
        by_tag,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engagement::InstallSignals;

    #[test]
    fn report_splits_sources_and_ranges() {
        let mut l = EngagementLedger::new();
        let s = InstallSignals::clean(1);
        l.record_install(SimTime::from_days(1), s, "fyber-c1");
        l.record_install(SimTime::from_days(1), s, "fyber-c1");
        l.record_install(SimTime::from_days(2), s, "rankapp-c2");
        l.record_install(SimTime::from_days(2), s, "");
        l.record_install(SimTime::from_days(9), s, "fyber-c1"); // outside range

        let r = acquisition_report(&l, SimTime::from_days(1), SimTime::from_days(5));
        assert_eq!(r.total, 4);
        assert_eq!(r.organic, 1);
        assert_eq!(r.tagged("fyber-c1"), 2);
        assert_eq!(r.tagged("rankapp-c2"), 1);
        assert_eq!(r.tagged("nothing"), 0);
    }

    #[test]
    fn report_counts_filtered_installs_too() {
        // The console shows acquisitions; enforcement only affects the
        // public count.
        let mut l = EngagementLedger::new();
        let farm = InstallSignals {
            emulator: true,
            rooted: false,
            datacenter_asn: false,
            block24: 0,
        };
        l.record_install(SimTime::from_days(1), farm, "iip");
        l.filter_installs(1, |_| true);
        let r = acquisition_report(&l, SimTime::EPOCH, SimTime::from_days(10));
        assert_eq!(r.total, 1);
        assert_eq!(l.public_installs(), 0);
    }

    #[test]
    fn empty_ledger_empty_report() {
        let l = EngagementLedger::new();
        let r = acquisition_report(&l, SimTime::EPOCH, SimTime::from_days(1));
        assert_eq!(r.total, 0);
        assert_eq!(r.organic, 0);
        assert!(r.by_tag.is_empty());
    }
}
