//! Impact detectors over crawl timelines (§4.3.1, §5.2).
//!
//! All three detectors work on the *public* profile series the crawler
//! produced — binned install counts, chart membership — never on
//! ground-truth store internals, mirroring the paper's observational
//! position.

use iiscope_monitor::{Dataset, ProfileSnapshot};
use iiscope_types::Sym;

/// Whether an app's public install count increased between the first
/// and last snapshot within `[from_day, to_day]`.
///
/// §4.3.1: "we check whether or not an app's install count increases
/// by the end of the incentivized install campaign as compared to the
/// start of the campaign." With binned counts, "increase" means a bin
/// boundary was crossed upward.
pub fn install_increased(series: &[&ProfileSnapshot], from_day: u64, to_day: u64) -> Option<bool> {
    let window: Vec<&&ProfileSnapshot> = series
        .iter()
        .filter(|p| p.day >= from_day && p.day <= to_day)
        .collect();
    let first = window.first()?;
    let last = window.last()?;
    Some(last.min_installs > first.min_installs)
}

/// Whether an app's public install count *decreased* at any point in
/// the series — §5.2's enforcement signal ("a decrease would be an
/// indicator that Google Play Store has identified and removed
/// incentivized installs").
pub fn install_decreased(series: &[&ProfileSnapshot]) -> bool {
    series
        .windows(2)
        .any(|w| w[1].min_installs < w[0].min_installs)
}

/// Whether an app appears in any top chart within `[from_day, to_day]`
/// but did **not** appear before `from_day` — §4.3.1's bias filter
/// ("we exclude advertised apps that already appeared in top charts
/// before the start of their campaign").
///
/// Returns `None` when the app must be excluded (pre-campaign chart
/// presence), `Some(appeared)` otherwise.
pub fn chart_appearance(
    dataset: &Dataset,
    package: &str,
    from_day: u64,
    to_day: u64,
) -> Option<bool> {
    let Some(sym) = dataset.pkg_sym(package) else {
        // Never observed anywhere: no pre-campaign presence, no
        // appearance.
        return Some(false);
    };
    chart_appearance_sym(dataset, sym, from_day, to_day)
}

/// Symbol-keyed [`chart_appearance`] — the experiment tables join on
/// interned package symbols.
pub fn chart_appearance_sym(
    dataset: &Dataset,
    package: Sym,
    from_day: u64,
    to_day: u64,
) -> Option<bool> {
    let appeared_before = from_day > 0 && dataset.in_any_chart_sym(package, 0, from_day - 1);
    if appeared_before {
        return None;
    }
    Some(dataset.in_any_chart_sym(package, from_day, to_day))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_monitor::ChartSnapshot;

    fn snap(day: u64, installs: u64) -> ProfileSnapshot {
        ProfileSnapshot {
            day,
            package: "com.x.y".into(),
            title: "X".into(),
            genre_id: "TOOLS".into(),
            released_day: 0,
            min_installs: installs,
            developer_id: 1,
            developer_name: "d".into(),
            developer_country: "US".into(),
            developer_email: "e".into(),
            developer_website: String::new(),
            rating: 0.0,
            rating_count: 0,
        }
    }

    #[test]
    fn increase_detection_respects_window() {
        let s = [snap(10, 100), snap(12, 100), snap(14, 500), snap(30, 1000)];
        let refs: Vec<&ProfileSnapshot> = s.iter().collect();
        assert_eq!(install_increased(&refs, 10, 14), Some(true));
        assert_eq!(install_increased(&refs, 10, 12), Some(false));
        assert_eq!(install_increased(&refs, 50, 60), None, "empty window");
    }

    #[test]
    fn decrease_detection() {
        let s = [snap(10, 1000), snap(12, 1000), snap(14, 500)];
        let refs: Vec<&ProfileSnapshot> = s.iter().collect();
        assert!(install_decreased(&refs));
        let s = [snap(10, 100), snap(12, 500)];
        let refs: Vec<&ProfileSnapshot> = s.iter().collect();
        assert!(!install_decreased(&refs));
    }

    #[test]
    fn chart_appearance_with_exclusion() {
        let mut d = Dataset::new();
        d.add_chart(ChartSnapshot {
            day: 5,
            chart: "topselling_free",
            entries: vec![("com.pre.existing".into(), 9)],
        });
        d.add_chart(ChartSnapshot {
            day: 15,
            chart: "topselling_free",
            entries: vec![("com.pre.existing".into(), 8), ("com.fresh.app".into(), 50)],
        });
        // Pre-existing chart presence → excluded.
        assert_eq!(chart_appearance(&d, "com.pre.existing", 10, 20), None);
        // Fresh appearance inside the window.
        assert_eq!(chart_appearance(&d, "com.fresh.app", 10, 20), Some(true));
        // Never charted.
        assert_eq!(chart_appearance(&d, "com.never", 10, 20), Some(false));
        // from_day=0 edge: nothing can be "before".
        assert_eq!(chart_appearance(&d, "com.pre.existing", 0, 20), Some(true));
    }
}
