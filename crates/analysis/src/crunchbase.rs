//! The funding database and developer matching (§4.3.3).
//!
//! "We use the Crunchbase database that provides us with access to the
//! list of companies that have raised funding … By searching for
//! developer information from Google Play Store, we match 23% of 922
//! apps to their developers in the Crunchbase database."
//!
//! Matching mirrors the paper's reality: it keys on the developer's
//! *name* and *website* as printed on the Play profile; developers
//! without useful profile information (common on unvetted platforms)
//! simply don't match.

use iiscope_types::{Country, SimTime, Usd};
use std::collections::BTreeMap;

/// Funding round stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum RoundKind {
    Angel,
    Seed,
    SeriesA,
    SeriesB,
    SeriesC,
    SeriesD,
    SeriesE,
    SeriesF,
}

impl RoundKind {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            RoundKind::Angel => "Angel",
            RoundKind::Seed => "Seed",
            RoundKind::SeriesA => "Series A",
            RoundKind::SeriesB => "Series B",
            RoundKind::SeriesC => "Series C",
            RoundKind::SeriesD => "Series D",
            RoundKind::SeriesE => "Series E",
            RoundKind::SeriesF => "Series F",
        }
    }
}

/// One funding event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FundingRound {
    /// Announcement instant.
    pub at: SimTime,
    /// Stage.
    pub kind: RoundKind,
    /// Amount raised.
    pub amount: Usd,
    /// Investor name (VC firm, angel, …).
    pub investor: String,
}

/// A company in the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompanyRecord {
    /// Company name.
    pub name: String,
    /// Company website.
    pub website: Option<String>,
    /// Headquarters country.
    pub country: Country,
    /// Whether the company is publicly traded (§4.3.3's quarterly-
    /// report analysis).
    pub is_public: bool,
    /// Funding history, time-ascending.
    pub rounds: Vec<FundingRound>,
}

impl CompanyRecord {
    /// Whether any round closed in `(after, until]` — "raised funding
    /// after running the incentivized install campaign(s)".
    pub fn raised_between(&self, after: SimTime, until: SimTime) -> bool {
        self.rounds.iter().any(|r| r.at > after && r.at <= until)
    }
}

/// The database snapshot.
#[derive(Debug, Clone, Default)]
pub struct CrunchbaseDb {
    by_name: BTreeMap<String, usize>,
    by_website: BTreeMap<String, usize>,
    companies: Vec<CompanyRecord>,
}

impl CrunchbaseDb {
    /// Empty database.
    pub fn new() -> CrunchbaseDb {
        CrunchbaseDb::default()
    }

    /// Inserts a company. Name collisions keep the first record (the
    /// snapshot is de-duplicated upstream, as a real export would be).
    pub fn insert(&mut self, company: CompanyRecord) {
        let idx = self.companies.len();
        self.by_name.entry(normalize(&company.name)).or_insert(idx);
        if let Some(site) = &company.website {
            self.by_website.entry(normalize(site)).or_insert(idx);
        }
        self.companies.push(company);
    }

    /// Number of companies.
    pub fn len(&self) -> usize {
        self.companies.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.companies.is_empty()
    }

    /// The §4.3.3 matcher: developer name and website from the Play
    /// profile. A developer without a website only matches by exact
    /// (normalized) name.
    pub fn match_developer(
        &self,
        developer_name: &str,
        developer_website: Option<&str>,
    ) -> Option<&CompanyRecord> {
        if let Some(site) = developer_website {
            if let Some(idx) = self.by_website.get(&normalize(site)) {
                return Some(&self.companies[*idx]);
            }
        }
        if developer_name.trim().is_empty() {
            return None;
        }
        self.by_name
            .get(&normalize(developer_name))
            .map(|idx| &self.companies[*idx])
    }

    /// All companies (for report rendering).
    pub fn companies(&self) -> &[CompanyRecord] {
        &self.companies
    }
}

fn normalize(s: &str) -> String {
    s.trim()
        .to_ascii_lowercase()
        .trim_start_matches("https://")
        .trim_start_matches("http://")
        .trim_start_matches("www.")
        .trim_end_matches('/')
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn company(name: &str, website: Option<&str>, round_day: u64) -> CompanyRecord {
        CompanyRecord {
            name: name.into(),
            website: website.map(str::to_string),
            country: Country::Us,
            is_public: false,
            rounds: vec![FundingRound {
                at: SimTime::from_days(round_day),
                kind: RoundKind::SeriesA,
                amount: Usd::from_dollars(30_000_000),
                investor: "Sequoia-ish".into(),
            }],
        }
    }

    #[test]
    fn match_by_website_then_name() {
        let mut db = CrunchbaseDb::new();
        db.insert(company(
            "Dashlane Inc",
            Some("https://dashlane.example"),
            40,
        ));
        db.insert(company("Droom", None, 50));
        // Website match, case/scheme-insensitive.
        assert!(db
            .match_developer("dashlane", Some("http://www.dashlane.example/"))
            .is_some());
        // Name match.
        assert!(db.match_developer("DROOM", None).is_some());
        // No info: no match — the unvetted long tail.
        assert!(db.match_developer("Unknown Studio 993", None).is_none());
        assert!(db.match_developer("", None).is_none());
    }

    #[test]
    fn raised_between_windows() {
        let c = company("X", None, 40);
        assert!(c.raised_between(SimTime::from_days(30), SimTime::from_days(50)));
        assert!(
            !c.raised_between(SimTime::from_days(40), SimTime::from_days(50)),
            "strictly after"
        );
        assert!(!c.raised_between(SimTime::from_days(41), SimTime::from_days(50)));
        assert!(!c.raised_between(SimTime::from_days(10), SimTime::from_days(39)));
    }

    #[test]
    fn first_insert_wins_collisions() {
        let mut db = CrunchbaseDb::new();
        db.insert(company("Same Name", None, 1));
        db.insert(CompanyRecord {
            is_public: true,
            ..company("Same Name", None, 2)
        });
        assert_eq!(db.len(), 2);
        assert!(!db.match_developer("same name", None).unwrap().is_public);
    }

    #[test]
    fn round_labels() {
        assert_eq!(RoundKind::SeriesF.label(), "Series F");
        assert_eq!(RoundKind::Seed.label(), "Seed");
    }
}
