//! Extension: the §5.2 detection proposal, built out.
//!
//! "Our proposed measurements can provide a ground truth of apps to
//! help train machine learning models in detecting the lockstep
//! behavior of users who perform similar in-app activities to complete
//! the offer." This module is that model: a from-scratch logistic
//! regression over Play-internal observables ([`AppFeatures`]) with
//! labels supplied by the monitoring pipeline (apps seen on offer
//! walls = positive). Evaluation reports precision/recall/F1 and AUC.
//!
//! The features deliberately exclude anything Google could not see
//! (offer descriptions, IIP identities): only install-stream shape,
//! address concentration, device signals and engagement-per-install.

use iiscope_playstore::DetectorSnapshot;

/// Feature vector for one app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppFeatures {
    /// Share of installs in the single busiest /24 (lockstep signal).
    pub block_concentration: f64,
    /// Share of installs with hard fraud markers.
    pub suspicious_rate: f64,
    /// Burstiness: max daily installs over mean daily installs.
    pub burstiness: f64,
    /// Sessions per install — paid installs barely engage.
    pub engagement_per_install: f64,
    /// Mean session length in minutes.
    pub session_minutes: f64,
    /// Campaign-attributed (event) share of all installs.
    pub attributed_share: f64,
}

impl AppFeatures {
    /// Derives features from a Play-side snapshot. `None` when the app
    /// has no install events to featurize.
    pub fn from_snapshot(s: &DetectorSnapshot) -> Option<AppFeatures> {
        if s.event_installs == 0 {
            return None;
        }
        let ev = s.event_installs as f64;
        let nonzero_days = s.daily_installs.iter().filter(|d| **d > 0).count().max(1) as f64;
        let mean_daily = s.daily_installs.iter().sum::<u64>() as f64 / nonzero_days;
        let max_daily = s.daily_installs.iter().copied().max().unwrap_or(0) as f64;
        Some(AppFeatures {
            block_concentration: s.max_block_installs as f64 / ev,
            suspicious_rate: s.suspicious_installs as f64 / ev,
            burstiness: if mean_daily > 0.0 {
                max_daily / mean_daily
            } else {
                0.0
            },
            engagement_per_install: s.sessions as f64 / ev,
            session_minutes: if s.sessions > 0 {
                s.session_secs as f64 / s.sessions as f64 / 60.0
            } else {
                0.0
            },
            attributed_share: s.event_installs as f64 / s.total_installs.max(1) as f64,
        })
    }

    fn to_vec(self) -> [f64; 6] {
        [
            self.block_concentration,
            self.suspicious_rate,
            self.burstiness,
            self.engagement_per_install,
            self.session_minutes,
            self.attributed_share,
        ]
    }
}

/// A trained logistic-regression detector.
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepDetector {
    weights: [f64; 6],
    bias: f64,
    mean: [f64; 6],
    std: [f64; 6],
}

impl LockstepDetector {
    /// Trains on labeled examples by batch gradient descent on the
    /// standardized features (600 epochs, fixed step — plenty for six
    /// dimensions).
    ///
    /// Returns `None` when either class is missing.
    pub fn train(examples: &[(AppFeatures, bool)]) -> Option<LockstepDetector> {
        let positives = examples.iter().filter(|(_, y)| *y).count();
        if positives == 0 || positives == examples.len() || examples.is_empty() {
            return None;
        }
        // Standardize.
        let mut mean = [0.0; 6];
        let mut std = [0.0; 6];
        let n = examples.len() as f64;
        for (f, _) in examples {
            for (i, v) in f.to_vec().iter().enumerate() {
                mean[i] += v / n;
            }
        }
        for (f, _) in examples {
            for (i, v) in f.to_vec().iter().enumerate() {
                std[i] += (v - mean[i]).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        let standardized: Vec<([f64; 6], f64)> = examples
            .iter()
            .map(|(f, y)| {
                let mut x = f.to_vec();
                for i in 0..6 {
                    x[i] = (x[i] - mean[i]) / std[i];
                }
                (x, f64::from(u8::from(*y)))
            })
            .collect();

        let mut w = [0.0; 6];
        let mut b = 0.0;
        let lr = 0.5;
        for _epoch in 0..600 {
            let mut gw = [0.0; 6];
            let mut gb = 0.0;
            for (x, y) in &standardized {
                let z: f64 = b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>();
                let p = sigmoid(z);
                let err = p - y;
                for (g, xi) in gw.iter_mut().zip(x) {
                    *g += err * xi / n;
                }
                gb += err / n;
            }
            for i in 0..6 {
                w[i] -= lr * gw[i];
            }
            b -= lr * gb;
        }
        Some(LockstepDetector {
            weights: w,
            bias: b,
            mean,
            std,
        })
    }

    /// Probability that the app runs incentivized campaigns.
    pub fn score(&self, f: &AppFeatures) -> f64 {
        let x = f.to_vec();
        let mut z = self.bias;
        for ((w, xi), (m, s)) in self
            .weights
            .iter()
            .zip(x)
            .zip(self.mean.iter().zip(self.std))
        {
            z += w * (xi - m) / s;
        }
        sigmoid(z)
    }

    /// The learned (standardized-space) weights, for inspection.
    pub fn weights(&self) -> [f64; 6] {
        self.weights
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Threshold-based classification metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorMetrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
    /// Area under the ROC curve (threshold-free).
    pub auc: f64,
}

impl DetectorMetrics {
    /// Precision at the evaluation threshold.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall at the evaluation threshold.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 at the evaluation threshold.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluates a detector on held-out examples at `threshold`.
pub fn evaluate(
    detector: &LockstepDetector,
    examples: &[(AppFeatures, bool)],
    threshold: f64,
) -> DetectorMetrics {
    let mut m = DetectorMetrics {
        tp: 0,
        fp: 0,
        tn: 0,
        fn_: 0,
        auc: 0.0,
    };
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(examples.len());
    for (f, y) in examples {
        let s = detector.score(f);
        scored.push((s, *y));
        match (s >= threshold, *y) {
            (true, true) => m.tp += 1,
            (true, false) => m.fp += 1,
            (false, false) => m.tn += 1,
            (false, true) => m.fn_ += 1,
        }
    }
    m.auc = auc(&scored);
    m
}

/// AUC by the rank-sum (Mann–Whitney) formulation, with tie handling.
fn auc(scored: &[(f64, bool)]) -> f64 {
    let pos: Vec<f64> = scored.iter().filter(|(_, y)| *y).map(|(s, _)| *s).collect();
    let neg: Vec<f64> = scored
        .iter()
        .filter(|(_, y)| !*y)
        .map(|(s, _)| *s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for p in &pos {
        for n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(block: f64, susp: f64, burst: f64, eng: f64, mins: f64, attr: f64) -> AppFeatures {
        AppFeatures {
            block_concentration: block,
            suspicious_rate: susp,
            burstiness: burst,
            engagement_per_install: eng,
            session_minutes: mins,
            attributed_share: attr,
        }
    }

    fn synthetic_dataset() -> Vec<(AppFeatures, bool)> {
        let mut data = Vec::new();
        // Incentivized-campaign apps: bursty, concentrated, barely
        // engaged.
        for i in 0..40 {
            let j = i as f64 / 40.0;
            data.push((
                features(
                    0.25 + 0.3 * j,
                    0.02 + 0.05 * j,
                    6.0 + 4.0 * j,
                    1.1,
                    2.0,
                    0.7,
                ),
                true,
            ));
        }
        // Organic apps: diffuse, steady, engaged.
        for i in 0..40 {
            let j = i as f64 / 40.0;
            data.push((
                features(0.02 + 0.02 * j, 0.005, 1.5 + j, 4.0 + 2.0 * j, 8.0, 0.1),
                false,
            ));
        }
        data
    }

    #[test]
    fn learns_separable_classes() {
        let data = synthetic_dataset();
        let detector = LockstepDetector::train(&data).expect("two classes present");
        let metrics = evaluate(&detector, &data, 0.5);
        assert!(metrics.auc > 0.95, "auc {}", metrics.auc);
        assert!(metrics.f1() > 0.9, "f1 {}", metrics.f1());
        assert!(metrics.precision() > 0.9);
        assert!(metrics.recall() > 0.9);
    }

    #[test]
    fn degenerate_training_sets_rejected() {
        assert!(LockstepDetector::train(&[]).is_none());
        let one_class: Vec<(AppFeatures, bool)> = (0..5)
            .map(|_| (features(0.1, 0.0, 1.0, 2.0, 3.0, 0.2), true))
            .collect();
        assert!(LockstepDetector::train(&one_class).is_none());
    }

    #[test]
    fn feature_extraction_from_snapshot() {
        let snap = DetectorSnapshot {
            total_installs: 1_000,
            event_installs: 400,
            suspicious_installs: 8,
            max_block_installs: 60,
            distinct_blocks: 300,
            daily_installs: vec![10, 50, 10, 0, 10],
            sessions: 440,
            session_secs: 52_800,
        };
        let f = AppFeatures::from_snapshot(&snap).unwrap();
        assert!((f.block_concentration - 0.15).abs() < 1e-12);
        assert!((f.suspicious_rate - 0.02).abs() < 1e-12);
        assert!((f.engagement_per_install - 1.1).abs() < 1e-12);
        assert!((f.session_minutes - 2.0).abs() < 1e-12);
        assert!((f.attributed_share - 0.4).abs() < 1e-12);
        // max 50 / mean (80/4 nonzero days = 20) = 2.5.
        assert!((f.burstiness - 2.5).abs() < 1e-12);
        // No events → no features.
        let empty = DetectorSnapshot {
            event_installs: 0,
            ..snap
        };
        assert!(AppFeatures::from_snapshot(&empty).is_none());
    }

    #[test]
    fn auc_extremes_and_ties() {
        let perfect: Vec<(f64, bool)> = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc(&perfect), 1.0);
        let inverted: Vec<(f64, bool)> = vec![(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert_eq!(auc(&inverted), 0.0);
        let tied: Vec<(f64, bool)> = vec![(0.5, true), (0.5, false)];
        assert_eq!(auc(&tied), 0.5);
    }
}
