//! The offer-description classifier.
//!
//! §4.1: "We manually label offer descriptions into two offer types
//! (no activity and activity) … we further divide activity offers into
//! three subcategories: (1) Registration if the offer requires users
//! to register an account, (2) Purchase if the offer requires users to
//! make in-app purchase, and (3) Usage if the offer requires users to
//! perform any other action."
//!
//! The classifier codifies that manual labelling as keyword rules over
//! the description text — the same information a human labeller had.
//! Composite offers ("Install and register, then reach level 5") take
//! the *strongest* activity class, with purchase > registration >
//! usage (matching how the paper would label a purchase-bearing offer
//! into the Purchase bucket).

use std::fmt;

/// The activity subcategories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActivityKind {
    /// Any in-app action that is neither registration nor purchase.
    Usage,
    /// Account creation.
    Registration,
    /// In-app purchase.
    Purchase,
}

/// The top-level offer taxonomy of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OfferType {
    /// "Install and Launch"-style offers.
    NoActivity,
    /// Offers demanding further in-app work.
    Activity(ActivityKind),
}

impl OfferType {
    /// True for any activity offer.
    pub fn is_activity(self) -> bool {
        matches!(self, OfferType::Activity(_))
    }
}

impl fmt::Display for OfferType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfferType::NoActivity => f.write_str("No activity"),
            OfferType::Activity(ActivityKind::Usage) => f.write_str("Activity (Usage)"),
            OfferType::Activity(ActivityKind::Registration) => {
                f.write_str("Activity (Registration)")
            }
            OfferType::Activity(ActivityKind::Purchase) => f.write_str("Activity (Purchase)"),
        }
    }
}

fn contains_any(text: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| text.contains(n))
}

/// Classifies one offer description.
pub fn classify_description(description: &str) -> OfferType {
    let text = description.to_ascii_lowercase();
    let purchase = contains_any(
        &text,
        &[
            "purchase",
            "buy ",
            "buy any",
            "spend $",
            "in-app purchase",
            "subscription",
        ],
    );
    let registration = contains_any(
        &text,
        &[
            "register",
            "sign up",
            "signup",
            "create an account",
            "create account",
            "account",
        ],
    );
    let usage = contains_any(
        &text,
        &[
            "level",
            "play for",
            "minutes",
            "watch",
            "video",
            "survey",
            "task",
            "points",
            "reach",
            "download a song",
            "use the app",
            "spend",
            "complete",
            "finish",
            "offers inside",
            // Extension: incentivized ratings ("Install and rate 5
            // stars") are an activity against the profile's ratings
            // facet; the paper's taxonomy has no rating class, so they
            // land in the closest bucket.
            "rate ",
            "rating",
            "star",
        ],
    );
    if purchase {
        OfferType::Activity(ActivityKind::Purchase)
    } else if registration {
        OfferType::Activity(ActivityKind::Registration)
    } else if usage {
        OfferType::Activity(ActivityKind::Usage)
    } else {
        // "Install and Launch", "Install and open the app", bare
        // installs — nothing beyond the minimum.
        OfferType::NoActivity
    }
}

/// The §4.3.2 arbitrage detector: offers that pay users to complete
/// *further* offers inside the advertised app (surveys, videos,
/// points, nested installs).
pub fn is_arbitrage(description: &str) -> bool {
    let text = description.to_ascii_lowercase();
    let has_nested_work = contains_any(
        &text,
        &[
            "survey",
            "watch",
            "video",
            "deals",
            "tasks",
            "offers inside",
            "shopping",
        ],
    );
    let has_points_target = contains_any(&text, &["points by completing", "reach", "points"]);
    has_nested_work || (has_points_target && text.contains("points"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_offers_classify_as_activity() {
        for d in [
            "Install and rate 5 stars",
            "Install, leave a 4-star rating",
            "Rate the app 4 stars on the store",
        ] {
            assert_eq!(
                classify_description(d),
                OfferType::Activity(ActivityKind::Usage),
                "{d:?}"
            );
        }
    }

    #[test]
    fn paper_examples_classify_correctly() {
        // §2.2's literal examples.
        assert_eq!(
            classify_description("Install and Launch"),
            OfferType::NoActivity
        );
        assert_eq!(
            classify_description("Install and Register"),
            OfferType::Activity(ActivityKind::Registration)
        );
        assert_eq!(
            classify_description("Install and Reach level 10"),
            OfferType::Activity(ActivityKind::Usage)
        );
        assert_eq!(
            classify_description("Install and make a $4.99 in-app purchase"),
            OfferType::Activity(ActivityKind::Purchase)
        );
        // §4.3.1's case-study offers.
        assert_eq!(
            classify_description("Install, register, and download a song"),
            OfferType::Activity(ActivityKind::Registration)
        );
        assert_eq!(
            classify_description("Install & Make any purchase"),
            OfferType::Activity(ActivityKind::Purchase)
        );
    }

    #[test]
    fn template_variants_classify_consistently() {
        for s in [
            "Install and open the app",
            "Install and run the application",
            "Free install - just open once",
        ] {
            assert_eq!(classify_description(s), OfferType::NoActivity, "{s}");
        }
        for s in [
            "Install and create an account",
            "Install, sign up with email",
            "Install and register a new account",
        ] {
            assert_eq!(
                classify_description(s),
                OfferType::Activity(ActivityKind::Registration),
                "{s}"
            );
        }
        for s in [
            "Install and play for 5 minutes",
            "Use the app for 3 minutes",
            "Reach level 7 in the game",
            "Install and complete 3 tasks (surveys, videos, deals)",
        ] {
            assert_eq!(
                classify_description(s),
                OfferType::Activity(ActivityKind::Usage),
                "{s}"
            );
        }
    }

    #[test]
    fn priority_purchase_over_registration_over_usage() {
        assert_eq!(
            classify_description("Install and register, then make any purchase"),
            OfferType::Activity(ActivityKind::Purchase)
        );
        assert_eq!(
            classify_description("Install and register, then reach level 5"),
            OfferType::Activity(ActivityKind::Registration)
        );
    }

    #[test]
    fn arbitrage_detection() {
        // §4.3.2's Cash Time example.
        assert!(is_arbitrage(
            "Reach 850 points by completing tasks in the app"
        ));
        assert!(is_arbitrage(
            "Install and complete 3 tasks (surveys, videos, deals)"
        ));
        assert!(!is_arbitrage("Install and Launch"));
        assert!(!is_arbitrage("Install and Register"));
        assert!(!is_arbitrage("Install & Make any purchase"));
    }

    #[test]
    fn display_labels_match_table3() {
        assert_eq!(OfferType::NoActivity.to_string(), "No activity");
        assert_eq!(
            OfferType::Activity(ActivityKind::Usage).to_string(),
            "Activity (Usage)"
        );
        assert_eq!(
            OfferType::Activity(ActivityKind::Purchase).to_string(),
            "Activity (Purchase)"
        );
        assert!(OfferType::Activity(ActivityKind::Usage).is_activity());
        assert!(!OfferType::NoActivity.is_activity());
    }
}
