//! Statistics: chi-squared tests, incomplete gamma, summaries, CDFs.
//!
//! The paper runs six chi-squared tests of independence (Tables 5, 6,
//! 7 — vetted-vs-baseline and unvetted-vs-baseline each) and reports
//! the statistic and p-value for each (e.g. "For vetted vs. baseline,
//! χ² = 26.0 and p = 3.378e−7"). The p-value comes from the upper tail
//! of the chi-squared distribution, computed here with the regularized
//! incomplete gamma function (series expansion for the lower part,
//! Lentz continued fraction for the upper part).

/// Result of a chi-squared test of independence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub dof: u32,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl Chi2Result {
    /// Whether the null hypothesis is rejected at significance `alpha`
    /// (the paper uses 0.05 throughout).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-squared test of independence for a 2×2 contingency table:
///
/// ```text
///             outcome-     outcome+
/// group A        a            b
/// group B        c            d
/// ```
///
/// Returns `None` when a marginal is zero (the test is undefined).
pub fn chi2_2x2(a: f64, b: f64, c: f64, d: f64) -> Option<Chi2Result> {
    chi2_table(&[vec![a, b], vec![c, d]])
}

/// Chi-squared test of independence for an arbitrary R×C table.
pub fn chi2_table(observed: &[Vec<f64>]) -> Option<Chi2Result> {
    let rows = observed.len();
    let cols = observed.first()?.len();
    if rows < 2 || cols < 2 || observed.iter().any(|r| r.len() != cols) {
        return None;
    }
    let row_sums: Vec<f64> = observed.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..cols)
        .map(|j| observed.iter().map(|r| r[j]).sum())
        .collect();
    let total: f64 = row_sums.iter().sum();
    if total <= 0.0 || row_sums.iter().any(|s| *s <= 0.0) || col_sums.iter().any(|s| *s <= 0.0) {
        return None;
    }
    let mut statistic = 0.0;
    for i in 0..rows {
        for j in 0..cols {
            let expected = row_sums[i] * col_sums[j] / total;
            let diff = observed[i][j] - expected;
            statistic += diff * diff / expected;
        }
    }
    let dof = ((rows - 1) * (cols - 1)) as u32;
    Some(Chi2Result {
        statistic,
        dof,
        p_value: chi2_sf(statistic, dof),
    })
}

/// Survival function of the chi-squared distribution:
/// `P(X > x)` for `dof` degrees of freedom.
pub fn chi2_sf(x: f64, dof: u32) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(f64::from(dof) / 2.0, x / 2.0)
}

/// ln Γ(x) via the Lanczos approximation.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma P(a, x) by series expansion.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Regularized upper incomplete gamma Q(a, x) by Lentz continued
/// fraction.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        (1.0 - gamma_p_series(a, x)).clamp(0.0, 1.0)
    } else {
        gamma_q_cf(a, x).clamp(0.0, 1.0)
    }
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Lower median of a slice (matching `Usd::median`).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[(v.len() - 1) / 2]
}

/// Empirical CDF evaluated at thresholds `0..=max`: fraction of values
/// ≤ t. Used for Figure 6 ("Distribution of unique ad libraries").
pub fn ecdf_counts(values: &[usize], max: usize) -> Vec<f64> {
    let n = values.len().max(1) as f64;
    (0..=max)
        .map(|t| values.iter().filter(|v| **v <= t).count() as f64 / n)
        .collect()
}

/// Fraction of values ≥ threshold — the paper's "60% … have 5 or more
/// ad libraries" phrasing.
pub fn frac_at_least(values: &[usize], threshold: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| **v >= threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi2_critical_value_at_05() {
        // χ²(1 dof) upper 5% critical value is 3.841.
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 5e-4);
        assert!((chi2_sf(6.635, 1) - 0.01).abs() < 5e-4);
        // 2 dof: 5.991 at 0.05.
        assert!((chi2_sf(5.991, 2) - 0.05).abs() < 5e-4);
    }

    #[test]
    fn paper_statistics_reproduce_their_p_values() {
        // §4.3.1: χ² = 26.0 → p = 3.378e-7.
        let p = chi2_sf(26.0, 1);
        assert!((p - 3.378e-7).abs() / 3.378e-7 < 0.05, "{p}");
        // χ² = 5.43 → p = 0.02.
        assert!((chi2_sf(5.43, 1) - 0.0198).abs() < 1e-3);
        // χ² = 0.22 → p = 0.64.
        assert!((chi2_sf(0.22, 1) - 0.639).abs() < 2e-3);
        // §4.3.3: χ² = 4.7 → p = 0.03; χ² = 2.8 → p = 0.10.
        assert!((chi2_sf(4.7, 1) - 0.0302).abs() < 1e-3);
        assert!((chi2_sf(2.8, 1) - 0.0943).abs() < 2e-3);
    }

    #[test]
    fn table5_vetted_vs_baseline_reproduces() {
        // Table 5's actual counts: baseline 294/6, vetted 431/61.
        let r = chi2_2x2(294.0, 6.0, 431.0, 61.0).unwrap();
        assert_eq!(r.dof, 1);
        assert!((r.statistic - 26.0).abs() < 1.0, "{}", r.statistic);
        assert!(r.significant_at(0.05));
        // Unvetted: 450/88 → χ² ≈ 39.9.
        let r = chi2_2x2(294.0, 6.0, 450.0, 88.0).unwrap();
        assert!((r.statistic - 39.9).abs() < 1.5, "{}", r.statistic);
    }

    #[test]
    fn table6_and_table7_reproduce() {
        // Table 6 vetted: baseline 253/8, vetted 296/24 → χ² ≈ 5.43.
        let r = chi2_2x2(253.0, 8.0, 296.0, 24.0).unwrap();
        assert!((r.statistic - 5.43).abs() < 0.3, "{}", r.statistic);
        assert!(r.significant_at(0.05));
        // Table 6 unvetted: 472/12 → χ² ≈ 0.22, not significant.
        let r = chi2_2x2(253.0, 8.0, 472.0, 12.0).unwrap();
        assert!((r.statistic - 0.22).abs() < 0.15, "{}", r.statistic);
        assert!(!r.significant_at(0.05));
        // Table 7 vetted: baseline 77/5, vetted 162/30 → χ² ≈ 4.7.
        let r = chi2_2x2(77.0, 5.0, 162.0, 30.0).unwrap();
        assert!((r.statistic - 4.7).abs() < 0.3, "{}", r.statistic);
        assert!(r.significant_at(0.05));
        // Table 7 unvetted: 68/11 → χ² ≈ 2.8, not significant.
        let r = chi2_2x2(77.0, 5.0, 68.0, 11.0).unwrap();
        assert!((r.statistic - 2.8).abs() < 0.3, "{}", r.statistic);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn degenerate_tables_are_none() {
        assert!(chi2_2x2(0.0, 0.0, 5.0, 5.0).is_none());
        assert!(chi2_2x2(5.0, 0.0, 5.0, 0.0).is_none());
        assert!(chi2_table(&[vec![1.0, 2.0]]).is_none());
        assert!(chi2_table(&[vec![1.0, 2.0], vec![1.0]]).is_none());
    }

    #[test]
    fn gamma_q_edges() {
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
        assert!(gamma_q(-1.0, 1.0).is_nan());
        assert!(gamma_q(1.0, -1.0).is_nan());
        // Q(1, x) = e^{-x}.
        for x in [0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_q(1.0, x) - (-x).exp()).abs() < 1e-10, "{x}");
        }
    }

    #[test]
    fn summaries() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.0); // lower median
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn ecdf_and_thresholds() {
        let values = [0usize, 2, 5, 5, 9];
        let cdf = ecdf_counts(&values, 9);
        assert_eq!(cdf[0], 0.2);
        assert_eq!(cdf[4], 0.4);
        assert_eq!(cdf[5], 0.8);
        assert_eq!(cdf[9], 1.0);
        assert!((frac_at_least(&values, 5) - 0.6).abs() < 1e-12);
        assert_eq!(frac_at_least(&[], 5), 0.0);
    }
}
