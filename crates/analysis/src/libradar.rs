//! LibRadar-style static analysis of APK bytes.
//!
//! §4.3.2: "We download APKs of baseline and advertised apps to
//! perform static analysis using LibRadar" to count embedded
//! advertising libraries (Figure 6). The detector greps the dex blob
//! for known SDK path fingerprints; like the original, it is blind to
//! obfuscated class paths and dynamically loaded code (the paper's
//! footnote 9 concedes both).

use iiscope_playstore::AdLibrary;
use std::collections::BTreeSet;

/// Scans APK bytes and returns the detected ad/monetization SDKs.
pub fn detect_libraries(apk_bytes: &[u8]) -> BTreeSet<AdLibrary> {
    let mut found = BTreeSet::new();
    for lib in AdLibrary::ALL {
        let needle = lib.fingerprint().as_bytes();
        if apk_bytes.windows(needle.len()).any(|w| w == needle) {
            found.insert(lib);
        }
    }
    found
}

/// Convenience: number of unique libraries detected (Figure 6's
/// x-axis).
pub fn count_libraries(apk_bytes: &[u8]) -> usize {
    detect_libraries(apk_bytes).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_playstore::ApkInfo;
    use iiscope_types::SeedFork;

    fn apk(libs: Vec<AdLibrary>, obfuscation: f64, dynamic: Vec<AdLibrary>) -> Vec<u8> {
        ApkInfo {
            ad_libraries: libs,
            obfuscation,
            dynamic_libraries: dynamic,
        }
        .render(SeedFork::new(77))
    }

    #[test]
    fn detects_plain_libraries() {
        let bytes = apk(
            vec![AdLibrary::AdMob, AdLibrary::ChartBoost, AdLibrary::FyberSdk],
            0.0,
            vec![],
        );
        let found = detect_libraries(&bytes);
        assert_eq!(found.len(), 3);
        assert!(found.contains(&AdLibrary::AdMob));
        assert!(
            found.contains(&AdLibrary::FyberSdk),
            "IIP SDKs detectable too (§4.3.2)"
        );
    }

    #[test]
    fn misses_obfuscated_and_dynamic() {
        let bytes = apk(vec![AdLibrary::AdMob], 1.0, vec![AdLibrary::TapJoy]);
        assert_eq!(count_libraries(&bytes), 0, "static analysis under-counts");
    }

    #[test]
    fn partial_obfuscation_partial_detection() {
        // With many libraries at 50% obfuscation, detection lands
        // strictly between zero and all.
        let libs: Vec<AdLibrary> = AdLibrary::ALL.into_iter().take(20).collect();
        let bytes = apk(libs.clone(), 0.5, vec![]);
        let n = count_libraries(&bytes);
        assert!(n > 0 && n < libs.len(), "{n} of {}", libs.len());
    }

    #[test]
    fn bare_apk_has_nothing() {
        let bytes = ApkInfo::bare().render(SeedFork::new(1));
        assert_eq!(count_libraries(&bytes), 0);
    }

    #[test]
    fn filler_never_false_positives() {
        // Fingerprints contain '/' which the filler alphabet (A–T)
        // cannot produce.
        let bytes = apk(vec![], 0.0, vec![]);
        assert!(detect_libraries(&bytes).is_empty());
    }
}
