//! # iiscope-analysis
//!
//! The statistical and labelling machinery of §4.2–§5.2:
//!
//! * [`stats`] — the chi-squared test of independence (with exact
//!   p-values via the regularized incomplete gamma function), summary
//!   statistics, empirical CDFs and histograms.
//! * [`classify`] — the offer-description classifier reproducing the
//!   paper's manual labelling: no-activity vs activity{registration,
//!   purchase, usage}, plus the arbitrage detector of §4.3.2.
//! * [`libradar`] — LibRadar-style static analysis: scans APK bytes
//!   for advertising-SDK fingerprints (and therefore inherits static
//!   analysis' blindness to obfuscation and dynamic loading, exactly
//!   as the paper's footnote concedes).
//! * [`crunchbase`] — the funding database: company records, funding
//!   rounds, and the developer-matching logic of §4.3.3 (matching by
//!   name/website, with the websiteless long tail unmatched).
//! * [`impact`] — §4.3.1/§5.2 detectors over crawl timelines:
//!   install-count increases, top-chart appearances with the paper's
//!   exclusion rules, and enforcement-driven decreases.
//! * [`detector`] — the §5.2 *proposal* implemented: a from-scratch
//!   logistic-regression model over Play-internal observables, trained
//!   on the monitoring pipeline's ground truth, with
//!   precision/recall/AUC evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod crunchbase;
pub mod detector;
pub mod impact;
pub mod libradar;
pub mod stats;

pub use classify::{classify_description, ActivityKind, OfferType};
pub use crunchbase::{CompanyRecord, CrunchbaseDb, FundingRound, RoundKind};
pub use detector::{AppFeatures, DetectorMetrics, LockstepDetector};
pub use impact::{chart_appearance, chart_appearance_sym, install_decreased, install_increased};
pub use libradar::detect_libraries;
pub use stats::{chi2_2x2, Chi2Result};
