//! The mediator service: SDK event ingestion, conversion
//! certification, postbacks, fees, anti-fraud flags.

use crate::goal::{ConversionEvent, ConversionGoal, Progress};
use iiscope_types::{DeviceId, Error, Result, SimTime, Usd};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// A certified offer completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conversion {
    /// The campaign's attribution tag.
    pub tag: String,
    /// The converting device.
    pub device: DeviceId,
    /// Certification instant.
    pub at: SimTime,
    /// Anti-fraud flag: raised for emulator/datacenter devices.
    pub fraud_flag: bool,
}

/// A postback queued for the IIP after certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postback {
    /// The certified conversion.
    pub conversion: Conversion,
}

struct CampaignTrack {
    goal: ConversionGoal,
    progress: BTreeMap<DeviceId, (Progress, bool /* converted */, bool /* fraud */)>,
}

struct Inner {
    campaigns: BTreeMap<String, CampaignTrack>,
    conversions: Vec<Conversion>,
    postbacks: Vec<Postback>,
    fees_accrued: Usd,
    tracked_users: u64,
}

/// The mediator (e.g. `appsflyer.iiscope`). Share via `Arc`.
pub struct Mediator {
    /// Service name.
    pub name: String,
    /// Fee charged to the developer per tracked user (the paper quotes
    /// $0.03/user for AppsFlyer).
    pub fee_per_user: Usd,
    inner: Mutex<Inner>,
}

impl Mediator {
    /// Creates a mediator with the paper's quoted fee.
    pub fn new(name: impl Into<String>) -> Mediator {
        Mediator {
            name: name.into(),
            fee_per_user: Usd::from_cents(3),
            inner: Mutex::new(Inner {
                campaigns: BTreeMap::new(),
                conversions: Vec::new(),
                postbacks: Vec::new(),
                fees_accrued: Usd::ZERO,
                tracked_users: 0,
            }),
        }
    }

    /// Registers a campaign's conversion goal under its attribution
    /// tag. Re-registering a tag is an error (one campaign, one goal).
    pub fn register_campaign(&self, tag: impl Into<String>, goal: ConversionGoal) -> Result<()> {
        let tag = tag.into();
        let mut inner = self.inner.lock();
        if inner.campaigns.contains_key(&tag) {
            return Err(Error::InvalidState(format!(
                "tag {tag:?} already registered"
            )));
        }
        inner.campaigns.insert(
            tag,
            CampaignTrack {
                goal,
                progress: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Ingests one SDK event for `(device, tag)`.
    ///
    /// `suspicious_device` is the SDK-side anti-fraud verdict (emulator
    /// build or datacenter egress). Returns `Ok(true)` exactly once per
    /// (device, tag): on the event that completes the goal.
    pub fn track(
        &self,
        tag: &str,
        device: DeviceId,
        event: ConversionEvent,
        at: SimTime,
        suspicious_device: bool,
    ) -> Result<bool> {
        let mut inner = self.inner.lock();
        let fee = self.fee_per_user;
        let campaign = inner
            .campaigns
            .get_mut(tag)
            .ok_or_else(|| Error::NotFound(format!("campaign tag {tag:?}")))?;
        let is_new_user = !campaign.progress.contains_key(&device);
        let entry = campaign
            .progress
            .entry(device)
            .or_insert((Progress::default(), false, false));
        entry.0.apply(event);
        entry.2 |= suspicious_device;
        let newly_converted = !entry.1 && campaign.goal.satisfied(&entry.0);
        let fraud = entry.2;
        if newly_converted {
            entry.1 = true;
        }
        if is_new_user {
            inner.tracked_users += 1;
            inner.fees_accrued += fee;
        }
        if newly_converted {
            let conv = Conversion {
                tag: tag.to_string(),
                device,
                at,
                fraud_flag: fraud,
            };
            inner.conversions.push(conv.clone());
            inner.postbacks.push(Postback { conversion: conv });
        }
        Ok(newly_converted)
    }

    /// Takes and clears the queued postbacks (IIPs poll this).
    pub fn drain_postbacks(&self) -> Vec<Postback> {
        std::mem::take(&mut self.inner.lock().postbacks)
    }

    /// All certified conversions so far.
    pub fn conversions(&self) -> Vec<Conversion> {
        self.inner.lock().conversions.clone()
    }

    /// Total mediation fees accrued against the developer.
    pub fn fees_accrued(&self) -> Usd {
        self.inner.lock().fees_accrued
    }

    /// Distinct users tracked across all campaigns.
    pub fn tracked_users(&self) -> u64 {
        self.inner.lock().tracked_users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_fires_once() {
        let m = Mediator::new("appsflyer.iiscope");
        m.register_campaign("fyber-1", ConversionGoal::InstallAndOpen)
            .unwrap();
        let d = DeviceId(1);
        assert!(!m
            .track(
                "fyber-1",
                d,
                ConversionEvent::Installed,
                SimTime::EPOCH,
                false
            )
            .unwrap());
        assert!(m
            .track("fyber-1", d, ConversionEvent::Opened, SimTime::EPOCH, false)
            .unwrap());
        // A second open does not re-convert.
        assert!(!m
            .track("fyber-1", d, ConversionEvent::Opened, SimTime::EPOCH, false)
            .unwrap());
        assert_eq!(m.conversions().len(), 1);
        let pb = m.drain_postbacks();
        assert_eq!(pb.len(), 1);
        assert_eq!(pb[0].conversion.device, d);
        assert!(m.drain_postbacks().is_empty(), "drained");
    }

    #[test]
    fn fraud_flag_sticks_even_if_raised_before_conversion() {
        let m = Mediator::new("x");
        m.register_campaign("t", ConversionGoal::InstallAndOpen)
            .unwrap();
        let d = DeviceId(2);
        m.track("t", d, ConversionEvent::Installed, SimTime::EPOCH, true)
            .unwrap();
        m.track("t", d, ConversionEvent::Opened, SimTime::EPOCH, false)
            .unwrap();
        assert!(m.conversions()[0].fraud_flag);
    }

    #[test]
    fn fees_charged_per_unique_user() {
        let m = Mediator::new("x");
        m.register_campaign("t", ConversionGoal::Register).unwrap();
        for d in 0..5 {
            m.track(
                "t",
                DeviceId(d),
                ConversionEvent::Installed,
                SimTime::EPOCH,
                false,
            )
            .unwrap();
            m.track(
                "t",
                DeviceId(d),
                ConversionEvent::Opened,
                SimTime::EPOCH,
                false,
            )
            .unwrap();
        }
        assert_eq!(m.tracked_users(), 5);
        assert_eq!(m.fees_accrued(), Usd::from_cents(15));
        // No conversions: nobody registered.
        assert!(m.conversions().is_empty());
    }

    #[test]
    fn unknown_tag_errors() {
        let m = Mediator::new("x");
        assert!(m
            .track(
                "nope",
                DeviceId(1),
                ConversionEvent::Installed,
                SimTime::EPOCH,
                false
            )
            .is_err());
    }

    #[test]
    fn duplicate_tag_rejected() {
        let m = Mediator::new("x");
        m.register_campaign("t", ConversionGoal::Register).unwrap();
        assert!(m.register_campaign("t", ConversionGoal::Register).is_err());
    }

    #[test]
    fn independent_campaigns_per_tag() {
        let m = Mediator::new("x");
        m.register_campaign("a", ConversionGoal::InstallAndOpen)
            .unwrap();
        m.register_campaign("b", ConversionGoal::Register).unwrap();
        let d = DeviceId(7);
        m.track("a", d, ConversionEvent::Installed, SimTime::EPOCH, false)
            .unwrap();
        assert!(m
            .track("a", d, ConversionEvent::Opened, SimTime::EPOCH, false)
            .unwrap());
        // Same device on campaign b: fresh progress.
        m.track("b", d, ConversionEvent::Installed, SimTime::EPOCH, false)
            .unwrap();
        assert!(!m
            .track("b", d, ConversionEvent::Opened, SimTime::EPOCH, false)
            .unwrap());
        // The same user tracked on two campaigns is charged twice (per
        // campaign-user).
        assert_eq!(m.tracked_users(), 2);
    }
}
