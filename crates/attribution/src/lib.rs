//! # iiscope-attribution
//!
//! The third-party mediator ("attribution service", §2.1): the entity
//! trusted by both the developer and the IIP to certify offer
//! completion. The advertised app integrates the mediator's SDK; in-app
//! events flow to the mediator; when a device's accumulated progress
//! satisfies the campaign's conversion goal, the mediator records a
//! conversion and queues a postback for the IIP, charging the developer
//! a per-user fee ("appsflyer.com charges 0.03 USD/user").
//!
//! The mediator also ships the anti-fraud product the paper mentions
//! ("Many of these services also offer analytics and anti-fraud
//! products"): conversions from emulator or datacenter devices are
//! flagged, and IIPs may choose to reject flagged conversions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod goal;
pub mod mediator;

pub use goal::{ConversionEvent, ConversionGoal, Progress};
pub use mediator::{Conversion, Mediator, Postback};
