//! Conversion goals and in-app event progress.
//!
//! A campaign's *conversion goal* is the machine-checkable counterpart
//! of the offer description a user reads ("Install and Register",
//! "Install and Reach Level 10", "Install & Make any purchase" — all
//! literal examples from §2.2 and §4.3.1). The mediator accumulates a
//! device's [`ConversionEvent`]s into a [`Progress`] and tests the goal
//! against it.

use iiscope_types::Usd;

/// One in-app event reported through the mediator SDK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConversionEvent {
    /// The app was installed via the campaign's tracking link.
    Installed,
    /// The app was opened.
    Opened,
    /// An account was registered.
    Registered,
    /// A game level was reached.
    LevelReached(u32),
    /// A session ended after the given number of seconds.
    SessionEnded(u64),
    /// An in-app purchase of the given amount completed.
    Purchased(Usd),
    /// An in-app sub-offer (survey, video, nested install) completed —
    /// the currency of arbitrage apps (§4.3.2).
    SubOfferCompleted,
    /// The user left a star rating on the store listing (extension:
    /// ratings are the other public profile surface the paper's cited
    /// policy page protects alongside installs).
    Rated(u8),
}

/// Accumulated per-(device, campaign) progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Progress {
    /// Install observed.
    pub installed: bool,
    /// Number of opens.
    pub opens: u64,
    /// Registration observed.
    pub registered: bool,
    /// Highest level reached.
    pub max_level: u32,
    /// Total session seconds.
    pub session_secs: u64,
    /// Total purchase volume.
    pub purchased: Usd,
    /// Number of purchases.
    pub purchases: u64,
    /// Sub-offers completed inside the app.
    pub sub_offers: u64,
    /// Best (highest) star rating left, 0 if none.
    pub best_rating: u8,
}

impl Progress {
    /// Folds one event into the progress.
    pub fn apply(&mut self, ev: ConversionEvent) {
        match ev {
            ConversionEvent::Installed => self.installed = true,
            ConversionEvent::Opened => self.opens += 1,
            ConversionEvent::Registered => self.registered = true,
            ConversionEvent::LevelReached(l) => self.max_level = self.max_level.max(l),
            ConversionEvent::SessionEnded(secs) => self.session_secs += secs,
            ConversionEvent::Purchased(amount) => {
                self.purchased += amount;
                self.purchases += 1;
            }
            ConversionEvent::SubOfferCompleted => self.sub_offers += 1,
            ConversionEvent::Rated(stars) => {
                self.best_rating = self.best_rating.max(stars.clamp(1, 5))
            }
        }
    }
}

/// What a device must do for the conversion to fire.
#[derive(Debug, Clone, PartialEq)]
pub enum ConversionGoal {
    /// "Install and Launch" — the no-activity offer.
    InstallAndOpen,
    /// "Install and Register".
    Register,
    /// "Install and Reach Level N".
    ReachLevel(u32),
    /// Accumulate at least this much in-app time.
    SessionTime(u64),
    /// "Install & make a purchase" of at least the given total.
    Purchase(Usd),
    /// Complete N sub-offers inside the app (arbitrage offers like
    /// "reach 850 points by completing tasks", §4.3.2).
    CompleteSubOffers(u64),
    /// "Install and rate N stars" — incentivized ratings (extension;
    /// not part of the paper's §4.3.1 taxonomy but the same policy
    /// violation, against the ratings facet of the profile).
    RateApp(u8),
    /// All of the sub-goals (e.g. Dashlane's "create an account and
    /// save at least two passwords" maps to Register + usage).
    AllOf(Vec<ConversionGoal>),
}

impl ConversionGoal {
    /// Whether `progress` satisfies the goal. Every goal implicitly
    /// requires the install itself.
    pub fn satisfied(&self, p: &Progress) -> bool {
        if !p.installed {
            return false;
        }
        match self {
            ConversionGoal::InstallAndOpen => p.opens >= 1,
            ConversionGoal::Register => p.registered,
            ConversionGoal::ReachLevel(l) => p.max_level >= *l,
            ConversionGoal::SessionTime(secs) => p.session_secs >= *secs,
            ConversionGoal::Purchase(min) => p.purchases >= 1 && p.purchased >= *min,
            ConversionGoal::CompleteSubOffers(n) => p.sub_offers >= *n,
            ConversionGoal::RateApp(min_stars) => p.best_rating >= *min_stars,
            ConversionGoal::AllOf(goals) => goals.iter().all(|g| g.satisfied(p)),
        }
    }

    /// A rough effort scale (seconds of human work) used by the worker
    /// behaviour model to decide completion probability and timing.
    pub fn effort_secs(&self) -> u64 {
        match self {
            ConversionGoal::InstallAndOpen => 60,
            ConversionGoal::Register => 180,
            ConversionGoal::ReachLevel(l) => 120 * u64::from(*l),
            ConversionGoal::SessionTime(secs) => *secs,
            ConversionGoal::Purchase(_) => 300,
            ConversionGoal::CompleteSubOffers(n) => 240 * n,
            ConversionGoal::RateApp(_) => 90,
            ConversionGoal::AllOf(goals) => goals.iter().map(ConversionGoal::effort_secs).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progressed(events: &[ConversionEvent]) -> Progress {
        let mut p = Progress::default();
        for e in events {
            p.apply(*e);
        }
        p
    }

    #[test]
    fn install_and_open() {
        let goal = ConversionGoal::InstallAndOpen;
        assert!(!goal.satisfied(&progressed(&[ConversionEvent::Installed])));
        assert!(
            !goal.satisfied(&progressed(&[ConversionEvent::Opened])),
            "open without install"
        );
        assert!(goal.satisfied(&progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::Opened
        ])));
    }

    #[test]
    fn reach_level_takes_max() {
        let goal = ConversionGoal::ReachLevel(10);
        let p = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::LevelReached(4),
            ConversionEvent::LevelReached(11),
            ConversionEvent::LevelReached(2),
        ]);
        assert!(goal.satisfied(&p));
        assert!(!ConversionGoal::ReachLevel(12).satisfied(&p));
    }

    #[test]
    fn purchase_requires_amount() {
        let goal = ConversionGoal::Purchase(Usd::from_cents(499));
        let small = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::Purchased(Usd::from_cents(99)),
        ]);
        assert!(!goal.satisfied(&small));
        let cumulative = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::Purchased(Usd::from_cents(300)),
            ConversionEvent::Purchased(Usd::from_cents(300)),
        ]);
        assert!(goal.satisfied(&cumulative));
    }

    #[test]
    fn session_time_accumulates() {
        let goal = ConversionGoal::SessionTime(600);
        let p = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::SessionEnded(300),
            ConversionEvent::SessionEnded(400),
        ]);
        assert!(goal.satisfied(&p));
    }

    #[test]
    fn all_of_composes() {
        let goal = ConversionGoal::AllOf(vec![
            ConversionGoal::Register,
            ConversionGoal::SessionTime(100),
        ]);
        let partial = progressed(&[ConversionEvent::Installed, ConversionEvent::Registered]);
        assert!(!goal.satisfied(&partial));
        let full = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::Registered,
            ConversionEvent::SessionEnded(150),
        ]);
        assert!(goal.satisfied(&full));
    }

    #[test]
    fn sub_offers_for_arbitrage() {
        let goal = ConversionGoal::CompleteSubOffers(3);
        let p = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::SubOfferCompleted,
            ConversionEvent::SubOfferCompleted,
            ConversionEvent::SubOfferCompleted,
        ]);
        assert!(goal.satisfied(&p));
    }

    #[test]
    fn rate_app_requires_enough_stars() {
        let goal = ConversionGoal::RateApp(4);
        let low = progressed(&[ConversionEvent::Installed, ConversionEvent::Rated(3)]);
        assert!(!goal.satisfied(&low));
        let high = progressed(&[
            ConversionEvent::Installed,
            ConversionEvent::Rated(3),
            ConversionEvent::Rated(5),
        ]);
        assert!(goal.satisfied(&high), "best rating counts");
        let uninstalled = progressed(&[ConversionEvent::Rated(5)]);
        assert!(!goal.satisfied(&uninstalled));
    }

    #[test]
    fn ratings_clamp_to_star_range() {
        let p = progressed(&[ConversionEvent::Installed, ConversionEvent::Rated(9)]);
        assert_eq!(p.best_rating, 5);
        let p = progressed(&[ConversionEvent::Installed, ConversionEvent::Rated(0)]);
        assert_eq!(p.best_rating, 1);
    }

    #[test]
    fn effort_scales_with_difficulty() {
        assert!(
            ConversionGoal::ReachLevel(10).effort_secs() > ConversionGoal::Register.effort_secs()
        );
        assert!(
            ConversionGoal::Register.effort_secs() > ConversionGoal::InstallAndOpen.effort_secs()
        );
        let combo = ConversionGoal::AllOf(vec![
            ConversionGoal::Register,
            ConversionGoal::InstallAndOpen,
        ]);
        assert_eq!(combo.effort_secs(), 240);
    }
}
