//! Real concurrent TCP server front-end over the sans-IO HTTP engine.
//!
//! The simulation drives [`iiscope_wire::server::HttpEngine`] through
//! the in-process network; this crate is the *second consumer* of the
//! same engine — real sockets, real concurrency, the same handlers.
//! A finished (or resumed) world becomes a queryable service: the
//! Play-store frontend and the seven IIP offer walls answer external
//! clients byte-for-byte as they answer the simulated crawler.
//!
//! Architecture (DESIGN.md §13):
//!
//! * **Accept model** — one `std::net::TcpListener` in nonblocking
//!   mode, N accept workers serialized by a mutex (mutex-accept; the
//!   std listener has no `SO_REUSEPORT` sharding), each connection on
//!   its own handler thread.
//! * **Backpressure** — a permit gate bounds in-flight connections.
//!   Workers take a permit *before* accepting, so the listener simply
//!   stops accepting at the cap and the kernel backlog absorbs the
//!   queue; no connection is accepted only to be turned away.
//! * **Budgets** — per-connection read/write byte budgets and an idle
//!   timeout (reads use a short poll tick so idle time accrues even
//!   while blocked).
//! * **Rejection** — parse errors are classified on this path only:
//!   431 oversized header block, 413 oversized declared body, 400
//!   otherwise; the mapped status is flushed, then the connection
//!   closes. A mid-request idle expiry answers 408.
//! * **Shutdown** — [`Server::stop`] flips the stop flag, nudges every
//!   live socket with `shutdown(Read)`, joins the accept workers, and
//!   waits until the permit gate drains to zero.
//!
//! Nothing here touches the simulation: handlers are pure reads over
//! world state, counters are relaxed write-only atomics
//! ([`iiscope_types::servestats`]), and connection seed lineages fork
//! from connection ids, not from world RNG streams — seed-42 output
//! stays byte-identical with a client hammering the endpoints mid-run.

use bytes::BytesMut;
use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
use iiscope_types::servestats;
use iiscope_types::{Country, SeedFork, SimTime};
use iiscope_wire::http::RequestCtx;
use iiscope_wire::server::HttpEngine;
use iiscope_wire::{Handler, Response};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

pub mod stats;

/// Server tuning knobs. [`ServeConfig::default`] matches the `repro`
/// CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Accept workers (each connection still gets its own thread).
    pub workers: usize,
    /// In-flight connection cap; accept pauses at the cap.
    pub conn_cap: usize,
    /// Idle timeout: a connection that neither delivers bytes nor has
    /// a response in flight for this long is closed (408 if it parked
    /// a partial request, silent close if it was between requests).
    pub idle_timeout: Duration,
    /// Per-connection read budget in bytes.
    pub read_budget: u64,
    /// Per-connection write budget in bytes.
    pub write_budget: u64,
    /// Country attributed to external clients (walls geo-filter on
    /// the connection's vantage, §4.1).
    pub vantage: Country,
    /// Sim instant stamped on external requests (handlers render
    /// charts "as of" this time).
    pub sim_now: SimTime,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            conn_cap: 256,
            idle_timeout: Duration::from_secs(10),
            read_budget: 64 * 1024 * 1024,
            write_budget: 256 * 1024 * 1024,
            vantage: Country::Us,
            sim_now: SimTime::EPOCH,
        }
    }
}

/// A clonable latch: triggered once, waited on by many. `repro` parks
/// on it after printing the report; `POST /admin/shutdown` trips it.
#[derive(Clone, Default)]
pub struct ShutdownFlag(Arc<(Mutex<bool>, Condvar)>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Trips the flag and wakes every waiter. Idempotent.
    pub fn trigger(&self) {
        let (lock, cv) = &*self.0;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    /// Whether the flag has been tripped.
    pub fn is_set(&self) -> bool {
        *self.0 .0.lock().unwrap()
    }

    /// Blocks until the flag is tripped.
    pub fn wait(&self) {
        let (lock, cv) = &*self.0;
        let mut set = lock.lock().unwrap();
        while !*set {
            set = cv.wait(set).unwrap();
        }
    }
}

/// Wraps a world handler with the server's operational routes:
/// `GET /healthz` liveness and `POST /admin/shutdown` (trips the
/// [`ShutdownFlag`], letting CI stop a served run cleanly without
/// signal plumbing). Everything else falls through to the inner
/// handler.
pub struct AdminHandler {
    inner: Arc<dyn Handler>,
    flag: ShutdownFlag,
}

impl AdminHandler {
    /// Wraps `inner`, tripping `flag` on the shutdown route.
    pub fn new(inner: Arc<dyn Handler>, flag: ShutdownFlag) -> AdminHandler {
        AdminHandler { inner, flag }
    }
}

impl Handler for AdminHandler {
    fn handle(&self, req: &iiscope_wire::Request, ctx: &RequestCtx) -> Response {
        use iiscope_wire::http::Method;
        match (req.method, req.path()) {
            (Method::Get, "/healthz") => Response::ok_text("ok"),
            (Method::Post, "/admin/shutdown") => {
                self.flag.trigger();
                Response::ok_text("draining")
            }
            _ => self.inner.handle(req, ctx),
        }
    }
}

/// Poll tick for connection reads: short enough that stop-flag checks
/// and idle accounting stay responsive, long enough not to spin.
const READ_TICK: Duration = Duration::from_millis(25);

/// Sleep between accept polls when the listener has nothing pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Read-buffer size for one connection.
const RBUF_SIZE: usize = 16 * 1024;

/// Most retained connections the buffer pool will hold. Buffers above
/// this are dropped on return rather than hoarded.
const POOL_CAP: usize = 256;

/// Write buffers above this capacity (a one-off huge response) are not
/// worth retaining — they'd pin that memory for the pool's lifetime.
const POOL_OUT_RETAIN_MAX: usize = 256 * 1024;

/// One connection's reusable buffers: the socket read scratch and the
/// response assembly buffer. Pooled so short-lived connections under
/// churn reuse prior allocations instead of paying a fresh 16 KiB +
/// `BytesMut` per accept.
struct ConnBuffers {
    rbuf: Vec<u8>,
    out: BytesMut,
}

impl ConnBuffers {
    fn fresh() -> ConnBuffers {
        ConnBuffers {
            rbuf: vec![0u8; RBUF_SIZE],
            out: BytesMut::new(),
        }
    }
}

/// State shared by accept workers and connection threads.
struct Shared {
    handler: Arc<dyn Handler>,
    cfg: ServeConfig,
    stop: AtomicBool,
    /// In-flight permits: accept reservations plus live connections.
    gate: Mutex<usize>,
    gate_cv: Condvar,
    /// Live sockets by connection id, for the shutdown(Read) nudge.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Returned connection buffers, ready for the next accept.
    pool: Mutex<Vec<ConnBuffers>>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn release_permit(&self) {
        let mut inflight = self.gate.lock().unwrap();
        *inflight -= 1;
        self.gate_cv.notify_all();
    }

    /// Pops pooled buffers, or allocates fresh on a dry pool.
    fn checkout_buffers(&self) -> ConnBuffers {
        let popped = self.pool.lock().unwrap().pop();
        match popped {
            Some(b) => {
                servestats::add_pool_hits(1);
                b
            }
            None => {
                servestats::add_pool_misses(1);
                ConnBuffers::fresh()
            }
        }
    }

    /// Returns buffers to the pool (bounded; oversized write buffers
    /// are dropped so one giant response can't pin memory forever).
    fn return_buffers(&self, mut b: ConnBuffers) {
        b.out.clear();
        if b.out.capacity() > POOL_OUT_RETAIN_MAX {
            b.out = BytesMut::new();
        }
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(b);
        }
    }
}

/// A running server. Dropping it does *not* stop it — call
/// [`Server::stop`] for the drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` and starts accepting. `addr` may name port 0 for
    /// an ephemeral port — read it back with [`Server::local_addr`].
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            handler,
            cfg,
            stop: AtomicBool::new(false),
            gate: Mutex::new(0),
            gate_cv: Condvar::new(),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        });
        let listener = Arc::new(listener);
        let accept_mx = Arc::new(Mutex::new(()));
        let workers = shared.cfg.workers.max(1);
        let acceptors = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let listener = Arc::clone(&listener);
                let accept_mx = Arc::clone(&accept_mx);
                thread::spawn(move || accept_loop(shared, listener, accept_mx))
            })
            .collect();
        Ok(Server {
            shared,
            local_addr,
            acceptors: Mutex::new(acceptors),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently in flight (reservations included).
    pub fn inflight(&self) -> usize {
        *self.shared.gate.lock().unwrap()
    }

    /// Stops accepting, nudges live connections, and blocks until
    /// every handler thread has drained. Idempotent.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.gate_cv.notify_all();
        // Nudge blocked reads: a half-shutdown turns them into EOFs.
        for conn in self.shared.conns.lock().unwrap().values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for h in self.acceptors.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        let mut inflight = self.shared.gate.lock().unwrap();
        while *inflight > 0 {
            inflight = self.shared.gate_cv.wait(inflight).unwrap();
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: Arc<TcpListener>, accept_mx: Arc<Mutex<()>>) {
    loop {
        if shared.stopping() {
            return;
        }
        // Permit first: at the cap the worker parks here and the
        // listener stops accepting — backpressure lands in the kernel
        // backlog, never on an accepted-then-dropped connection.
        {
            let mut inflight = shared.gate.lock().unwrap();
            let mut waited = false;
            while *inflight >= shared.cfg.conn_cap && !shared.stopping() {
                if !waited {
                    servestats::add_accept_backpressure(1);
                    waited = true;
                }
                let (guard, _) = shared.gate_cv.wait_timeout(inflight, READ_TICK).unwrap();
                inflight = guard;
            }
            if shared.stopping() {
                return;
            }
            *inflight += 1; // reservation; transfers to the conn thread
        }
        // Accept under the mutex (serializing workers on one listener).
        let accepted = loop {
            if shared.stopping() {
                break None;
            }
            let res = {
                let _g = accept_mx.lock().unwrap();
                listener.accept()
            };
            match res {
                Ok(pair) => break Some(pair),
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        };
        let Some((stream, peer_addr)) = accepted else {
            shared.release_permit();
            return;
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let shared2 = Arc::clone(&shared);
        thread::spawn(move || {
            serve_conn(&shared2, stream, peer_addr, conn_id);
            shared2.conns.lock().unwrap().remove(&conn_id);
            shared2.release_permit();
        });
    }
}

/// Synthesizes the engine-facing peer identity for a socket client:
/// real IP, a private eyeball ASN, the configured vantage country,
/// and a seed lineage forked from the connection id — independent of
/// every world RNG stream by construction.
fn peer_info(addr: SocketAddr, cfg: &ServeConfig, conn_id: u64) -> PeerInfo {
    let ip = match addr.ip() {
        IpAddr::V4(v4) => v4,
        IpAddr::V6(v6) => v6.to_ipv4().unwrap_or(Ipv4Addr::LOCALHOST),
    };
    PeerInfo {
        addr: HostAddr {
            ip,
            asn: AsnId(64512),
            asn_kind: AsnKind::Eyeball,
            country: cfg.vantage,
        },
        opened_at: cfg.sim_now,
        link: SeedFork::new(conn_id),
    }
}

fn serve_conn(shared: &Shared, mut stream: TcpStream, peer_addr: SocketAddr, conn_id: u64) {
    servestats::add_conns_accepted(1);
    let cfg = &shared.cfg;
    let tick = READ_TICK
        .min(cfg.idle_timeout)
        .max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(tick));
    let _ = stream.set_nodelay(true);
    let peer = peer_info(peer_addr, cfg, conn_id);

    let mut engine = HttpEngine::new(Arc::clone(&shared.handler));
    // Pooled read/write buffers: reused across feeds within the
    // connection, and across connections via the shared pool.
    let ConnBuffers { mut rbuf, mut out } = shared.checkout_buffers();
    let mut idle = Duration::ZERO;
    let mut read_total = 0u64;
    let mut write_total = 0u64;
    let mut served = 0u64;

    loop {
        if shared.stopping() {
            break;
        }
        match stream.read(&mut rbuf) {
            Ok(0) => break, // EOF — includes half-close mid-request: clean drop
            Ok(n) => {
                idle = Duration::ZERO;
                read_total += n as u64;
                servestats::add_bytes_read(n as u64);
                if read_total > cfg.read_budget {
                    servestats::add_budget_closes(1);
                    break;
                }
                let report = engine.feed_slice(&rbuf[..n], peer, cfg.sim_now, &mut out);
                if !out.is_empty() {
                    served += u64::from(report.responses);
                    servestats::add_requests_served(u64::from(report.responses));
                    write_total += out.len() as u64;
                    servestats::add_bytes_written(out.len() as u64);
                    let ok = stream.write_all(&out).is_ok();
                    out.clear();
                    if !ok {
                        break;
                    }
                    if write_total > cfg.write_budget {
                        servestats::add_budget_closes(1);
                        break;
                    }
                }
                if report.close.is_some() {
                    servestats::add_parse_rejects(1);
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += tick;
                if idle >= cfg.idle_timeout {
                    servestats::add_idle_timeouts(1);
                    if engine.has_partial() {
                        // Slowloris: the request never completed.
                        let mut t = BytesMut::new();
                        Response::status(408).encode_into(&mut t);
                        let _ = stream.write_all(&t);
                    }
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // One bad peer must never take a worker with it: every
                // unexpected read error is a counted close, classified
                // so the overload books can tell routine resets from
                // genuinely odd transport failures.
                match e.kind() {
                    ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::BrokenPipe => servestats::add_read_resets(1),
                    _ => servestats::add_read_errors(1),
                }
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    shared.return_buffers(ConnBuffers { rbuf, out });
    if served > 1 {
        servestats::add_keepalive_conns(1);
    }
    if shared.stopping() {
        servestats::add_drained_conns(1);
    }
    servestats::add_conns_closed(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_wire::{Request, Response};

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request, _ctx: &RequestCtx| -> Response {
            match req.path() {
                "/ping" => Response::ok_text("pong"),
                _ => Response::not_found(),
            }
        })
    }

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            workers: 1,
            conn_cap: 8,
            idle_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        }
    }

    fn get(stream: &mut TcpStream, target: &str) -> Response {
        stream.write_all(&Request::get(target).encode()).unwrap();
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Response {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if let Ok(Some((resp, _))) = Response::parse(&buf) {
                        return resp;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => break, // reset mid-read: fall through to the parse
            }
        }
        let (resp, _) = Response::parse(&buf).unwrap().unwrap();
        resp
    }

    #[test]
    fn serves_keepalive_requests_and_drains() {
        let server = Server::start("127.0.0.1:0", tiny_cfg(), echo_handler()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").body_text(), "pong");
        assert_eq!(get(&mut conn, "/nope").status, 404);
        assert_eq!(get(&mut conn, "/ping").status, 200);
        server.stop();
        assert_eq!(server.inflight(), 0);
    }

    #[test]
    fn admin_routes_trip_the_flag() {
        let flag = ShutdownFlag::new();
        let handler: Arc<dyn Handler> = Arc::new(AdminHandler::new(echo_handler(), flag.clone()));
        let server = Server::start("127.0.0.1:0", tiny_cfg(), handler).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/healthz").body_text(), "ok");
        assert!(!flag.is_set());
        conn.write_all(&Request::post("/admin/shutdown", Vec::new()).encode())
            .unwrap();
        let resp = read_response(&mut conn);
        assert_eq!(resp.body_text(), "draining");
        assert!(flag.is_set());
        flag.wait(); // must not block once set
        server.stop();
    }

    #[test]
    fn peer_reset_is_a_counted_close_not_a_worker_death() {
        let before = servestats::READ_RESETS.load(Ordering::Relaxed)
            + servestats::READ_ERRORS.load(Ordering::Relaxed);
        let server = Server::start("127.0.0.1:0", tiny_cfg(), echo_handler()).unwrap();
        {
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            conn.set_nodelay(true).unwrap();
            conn.write_all(&Request::get("/ping").encode()).unwrap();
            // Let the response land in our receive buffer unread, then
            // drop: closing with undelivered data sends an RST, which
            // the server must book as a close, not die on.
            thread::sleep(Duration::from_millis(100));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while servestats::READ_RESETS.load(Ordering::Relaxed)
            + servestats::READ_ERRORS.load(Ordering::Relaxed)
            == before
            && std::time::Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(10));
        }
        // The pool survived the abuse: a fresh client is still served.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").status, 200);
        server.stop();
        assert_eq!(server.inflight(), 0);
        assert!(
            servestats::READ_RESETS.load(Ordering::Relaxed)
                + servestats::READ_ERRORS.load(Ordering::Relaxed)
                > before,
            "reset was not counted"
        );
    }

    #[test]
    fn idle_connections_time_out() {
        let server = Server::start("127.0.0.1:0", tiny_cfg(), echo_handler()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").status, 200);
        // Stay silent past the idle timeout: the server closes (EOF).
        let mut buf = [0u8; 64];
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(conn.read(&mut buf).unwrap(), 0);
        server.stop();
    }
}
