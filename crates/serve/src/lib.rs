//! Real concurrent TCP server front-end over the sans-IO HTTP engine.
//!
//! The simulation drives [`iiscope_wire::server::HttpEngine`] through
//! the in-process network; this crate is the *second consumer* of the
//! same engine — real sockets, real concurrency, the same handlers.
//! A finished (or resumed) world becomes a queryable service: the
//! Play-store frontend and the seven IIP offer walls answer external
//! clients byte-for-byte as they answer the simulated crawler.
//!
//! Architecture (DESIGN.md §13):
//!
//! * **Accept model** — one `std::net::TcpListener` in nonblocking
//!   mode, N accept workers serialized by a mutex (mutex-accept; the
//!   std listener has no `SO_REUSEPORT` sharding), each connection on
//!   its own handler thread.
//! * **Backpressure** — a permit gate bounds in-flight connections.
//!   Workers take a permit *before* accepting, so the listener simply
//!   stops accepting at the cap and the kernel backlog absorbs the
//!   queue; no connection is accepted only to be turned away.
//! * **Budgets** — per-connection read/write byte budgets and an idle
//!   timeout (reads use a short poll tick so idle time accrues even
//!   while blocked).
//! * **Rejection** — parse errors are classified on this path only:
//!   431 oversized header block, 413 oversized declared body, 400
//!   otherwise; the mapped status is flushed, then the connection
//!   closes. A mid-request idle expiry answers 408.
//! * **Load shedding** (DESIGN.md §15) — optional watermarks turn
//!   overload into explicit `503 + Retry-After` answers instead of
//!   unbounded queueing: a pre-parse gate sheds connections that aged
//!   past [`ShedConfig::accept_queue_ms`] waiting for a permit, and a
//!   pre-render gate sheds requests at the in-flight / per-route
//!   watermarks or past their [`ShedConfig::deadline`] budget. Cache
//!   hits are exempt — serving one is cheaper than turning it away.
//! * **Supervision** — a connection thread can never die of a peer:
//!   read errors are counted closes, handler panics are caught (the
//!   permit is still released), and a supervisor respawns any accept
//!   worker that dies outside shutdown, so the pool size is an
//!   invariant (`worker_respawns`).
//! * **Shutdown** — [`Server::stop`] flips the stop flag, nudges every
//!   live socket with `shutdown(Read)`, joins the supervisor (which
//!   joins the accept workers), and waits until the permit gate drains
//!   to zero.
//!
//! Nothing here touches the simulation: handlers are pure reads over
//! world state, counters are relaxed write-only atomics
//! ([`iiscope_types::servestats`]), and connection seed lineages fork
//! from connection ids, not from world RNG streams — seed-42 output
//! stays byte-identical with a client hammering the endpoints mid-run.

use bytes::BytesMut;
use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
use iiscope_types::servestats;
use iiscope_types::{Country, SeedFork, SimTime};
use iiscope_wire::http::{shed_503, RequestCtx, SHED_503_WIRE};
use iiscope_wire::server::HttpEngine;
use iiscope_wire::{Handler, Request, Response};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

pub mod stats;

/// Server tuning knobs. [`ServeConfig::default`] matches the `repro`
/// CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Accept workers (each connection still gets its own thread).
    pub workers: usize,
    /// In-flight connection cap; accept pauses at the cap.
    pub conn_cap: usize,
    /// Idle timeout: a connection that neither delivers bytes nor has
    /// a response in flight for this long is closed (408 if it parked
    /// a partial request, silent close if it was between requests).
    pub idle_timeout: Duration,
    /// Per-connection read budget in bytes.
    pub read_budget: u64,
    /// Per-connection write budget in bytes.
    pub write_budget: u64,
    /// Country attributed to external clients (walls geo-filter on
    /// the connection's vantage, §4.1).
    pub vantage: Country,
    /// Sim instant stamped on external requests (handlers render
    /// charts "as of" this time).
    pub sim_now: SimTime,
    /// Load-shedding watermarks; all off by default.
    pub shed: ShedConfig,
    /// Test hook: the first accept worker to observe this many
    /// accepted connections panics once, at its loop top (holding no
    /// permit or socket) — the supervisor must respawn it. `None`
    /// everywhere outside supervision tests.
    pub fault_panic_after_conns: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            conn_cap: 256,
            idle_timeout: Duration::from_secs(10),
            read_budget: 64 * 1024 * 1024,
            write_budget: 256 * 1024 * 1024,
            vantage: Country::Us,
            sim_now: SimTime::EPOCH,
            shed: ShedConfig::default(),
            fault_panic_after_conns: None,
        }
    }
}

/// Load-shedding watermarks. Every gate defaults to off, leaving the
/// server byte-identical to its ungated behavior; a set watermark
/// turns the corresponding overload into explicit `503 + Retry-After`
/// answers ([`iiscope_wire::http::shed_503`]) instead of unbounded
/// queueing. Ops routes (`/healthz`, `/admin/*`) are never shed.
#[derive(Debug, Clone, Default)]
pub struct ShedConfig {
    /// Pre-parse gate: a connection whose accept worker waited longer
    /// than this (milliseconds) for a permit is answered the fixed
    /// 503 image and closed without parsing — the accept queue is
    /// visibly stale, so the cheapest thing to do is turn work away
    /// before spending any on it.
    pub accept_queue_ms: Option<u64>,
    /// Pre-render gate: shed when this many renders are in flight
    /// across all routes.
    pub max_inflight: Option<usize>,
    /// Pre-render gate: shed when this many renders of the same route
    /// class (wall / store / other) are in flight.
    pub per_route: Option<usize>,
    /// Deadline budget, carried from the bytes' arrival through router
    /// render: a request older than this is shed before rendering
    /// (cache hits exempt), and a *partial* request older than this is
    /// answered 408 and closed (kills byte-drip clients that defeat
    /// the idle timeout by trickling).
    pub deadline: Option<Duration>,
}

impl ShedConfig {
    /// Whether any pre-render gate is configured (the per-connection
    /// admission wrapper is only installed when one is).
    fn gates_renders(&self) -> bool {
        self.max_inflight.is_some() || self.per_route.is_some() || self.deadline.is_some()
    }
}

/// A clonable latch: triggered once, waited on by many. `repro` parks
/// on it after printing the report; `POST /admin/shutdown` trips it.
#[derive(Clone, Default)]
pub struct ShutdownFlag(Arc<(Mutex<bool>, Condvar)>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Trips the flag and wakes every waiter. Idempotent.
    pub fn trigger(&self) {
        let (lock, cv) = &*self.0;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    /// Whether the flag has been tripped.
    pub fn is_set(&self) -> bool {
        *self.0 .0.lock().unwrap()
    }

    /// Blocks until the flag is tripped.
    pub fn wait(&self) {
        let (lock, cv) = &*self.0;
        let mut set = lock.lock().unwrap();
        while !*set {
            set = cv.wait(set).unwrap();
        }
    }
}

/// Wraps a world handler with the server's operational routes:
/// `GET /healthz` liveness and `POST /admin/shutdown` (trips the
/// [`ShutdownFlag`], letting CI stop a served run cleanly without
/// signal plumbing). Everything else falls through to the inner
/// handler.
pub struct AdminHandler {
    inner: Arc<dyn Handler>,
    flag: ShutdownFlag,
}

impl AdminHandler {
    /// Wraps `inner`, tripping `flag` on the shutdown route.
    pub fn new(inner: Arc<dyn Handler>, flag: ShutdownFlag) -> AdminHandler {
        AdminHandler { inner, flag }
    }
}

impl Handler for AdminHandler {
    fn handle(&self, req: &iiscope_wire::Request, ctx: &RequestCtx) -> Response {
        use iiscope_wire::http::Method;
        match (req.method, req.path()) {
            (Method::Get, "/healthz") => Response::ok_text("ok"),
            (Method::Post, "/admin/shutdown") => {
                self.flag.trigger();
                Response::ok_text("draining")
            }
            _ => self.inner.handle(req, ctx),
        }
    }

    fn cached(&self, req: &Request, ctx: &RequestCtx) -> Option<Response> {
        // Ops routes are cheap and never cached; everything else
        // forwards so the admission layer still sees the world
        // router's cache through this wrapper.
        self.inner.cached(req, ctx)
    }
}

/// Route classes the per-route watermark buckets by. Ops routes are
/// classified but never shed — health checks must answer precisely
/// when the server is drowning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteClass {
    Wall = 0,
    Store = 1,
    Other = 2,
    Ops = 3,
}

fn route_class(path: &str) -> RouteClass {
    if path == "/healthz" || path.starts_with("/admin/") {
        RouteClass::Ops
    } else if path.starts_with("/wall/") {
        RouteClass::Wall
    } else if path.starts_with("/store/") || path == "/apk" {
        RouteClass::Store
    } else {
        RouteClass::Other
    }
}

/// Shared admission state: live render counts the watermarks read,
/// plus per-instance overload books (mirrored into the process-wide
/// [`servestats`]) so tests and the bench can assert on one server
/// without cross-test pollution.
#[derive(Default)]
struct OverloadState {
    /// Renders in flight, all routes.
    inflight: AtomicUsize,
    /// Renders in flight per non-ops route class.
    route: [AtomicUsize; 3],
    /// 503s shed by any gate of this server.
    sheds_503: AtomicU64,
    /// Connection-thread panics caught by this server.
    conn_panics: AtomicU64,
    /// Accept workers this server's supervisor respawned.
    worker_respawns: AtomicU64,
}

/// RAII render slot: holds one global and one per-class count for the
/// duration of an admitted render, so the watermarks see live work
/// even when a handler panics (the guard unwinds with the stack).
struct RenderGuard<'a> {
    ovl: &'a OverloadState,
    class: RouteClass,
}

impl<'a> RenderGuard<'a> {
    fn enter(ovl: &'a OverloadState, class: RouteClass) -> RenderGuard<'a> {
        ovl.inflight.fetch_add(1, Ordering::Relaxed);
        ovl.route[class as usize].fetch_add(1, Ordering::Relaxed);
        RenderGuard { ovl, class }
    }
}

impl Drop for RenderGuard<'_> {
    fn drop(&mut self) {
        self.ovl.inflight.fetch_sub(1, Ordering::Relaxed);
        self.ovl.route[self.class as usize].fetch_sub(1, Ordering::Relaxed);
    }
}

/// Why a request was turned away (each reason keeps its own counter).
enum ShedReason {
    Deadline,
    Inflight,
    Route,
}

/// Per-connection admission wrapper installed between the engine and
/// the real handler when any pre-render gate is configured. Checks run
/// *before* the render: a request that will be shed costs one atomic
/// read per watermark plus a cache probe, never a render.
struct GatedHandler {
    inner: Arc<dyn Handler>,
    ovl: Arc<OverloadState>,
    shed: ShedConfig,
    /// The server's clock origin; `arrival_us` is measured against it.
    epoch: Instant,
    /// Microseconds (since `epoch`) when the connection's current read
    /// chunk arrived — written by the serve loop, read by the deadline
    /// gate. Requests rendered late in a pipelined batch age here too.
    arrival_us: Arc<AtomicU64>,
}

impl GatedHandler {
    fn shed_reason(&self, class: RouteClass) -> Option<ShedReason> {
        if let Some(budget) = self.shed.deadline {
            let age_us = (self.epoch.elapsed().as_micros() as u64)
                .saturating_sub(self.arrival_us.load(Ordering::Relaxed));
            if age_us > budget.as_micros() as u64 {
                return Some(ShedReason::Deadline);
            }
        }
        if let Some(cap) = self.shed.max_inflight {
            if self.ovl.inflight.load(Ordering::Relaxed) >= cap {
                return Some(ShedReason::Inflight);
            }
        }
        if let Some(cap) = self.shed.per_route {
            if self.ovl.route[class as usize].load(Ordering::Relaxed) >= cap {
                return Some(ShedReason::Route);
            }
        }
        None
    }
}

impl Handler for GatedHandler {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        let class = route_class(req.path());
        if class == RouteClass::Ops {
            return self.inner.handle(req, ctx);
        }
        if let Some(reason) = self.shed_reason(class) {
            // Exemption before the 503: a cache hit is a pointer clone
            // — cheaper to serve than to shed.
            if let Some(resp) = self.inner.cached(req, ctx) {
                servestats::add_shed_cache_exempt(1);
                return resp;
            }
            match reason {
                ShedReason::Deadline => servestats::add_sheds_deadline(1),
                ShedReason::Inflight => servestats::add_sheds_inflight(1),
                ShedReason::Route => servestats::add_sheds_route(1),
            }
            self.ovl.sheds_503.fetch_add(1, Ordering::Relaxed);
            return shed_503();
        }
        let _slot = RenderGuard::enter(&self.ovl, class);
        self.inner.handle(req, ctx)
    }

    fn cached(&self, req: &Request, ctx: &RequestCtx) -> Option<Response> {
        self.inner.cached(req, ctx)
    }
}

/// Poll tick for connection reads: short enough that stop-flag checks
/// and idle accounting stay responsive, long enough not to spin.
const READ_TICK: Duration = Duration::from_millis(25);

/// Sleep between accept polls when the listener has nothing pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Read-buffer size for one connection.
const RBUF_SIZE: usize = 16 * 1024;

/// Most retained connections the buffer pool will hold. Buffers above
/// this are dropped on return rather than hoarded.
const POOL_CAP: usize = 256;

/// Write buffers above this capacity (a one-off huge response) are not
/// worth retaining — they'd pin that memory for the pool's lifetime.
const POOL_OUT_RETAIN_MAX: usize = 256 * 1024;

/// One connection's reusable buffers: the socket read scratch and the
/// response assembly buffer. Pooled so short-lived connections under
/// churn reuse prior allocations instead of paying a fresh 16 KiB +
/// `BytesMut` per accept.
struct ConnBuffers {
    rbuf: Vec<u8>,
    out: BytesMut,
}

impl ConnBuffers {
    fn fresh() -> ConnBuffers {
        ConnBuffers {
            rbuf: vec![0u8; RBUF_SIZE],
            out: BytesMut::new(),
        }
    }
}

/// State shared by accept workers and connection threads.
struct Shared {
    handler: Arc<dyn Handler>,
    cfg: ServeConfig,
    stop: AtomicBool,
    /// In-flight permits: accept reservations plus live connections.
    gate: Mutex<usize>,
    gate_cv: Condvar,
    /// Live sockets by connection id, for the shutdown(Read) nudge.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Returned connection buffers, ready for the next accept.
    pool: Mutex<Vec<ConnBuffers>>,
    /// Admission watermark state and per-instance overload books.
    ovl: Arc<OverloadState>,
    /// Clock origin for deadline arithmetic (monotonic, per server).
    epoch: Instant,
    /// One-shot latch for the injected accept-worker fault.
    fault_fired: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn release_permit(&self) {
        let mut inflight = self.gate.lock().unwrap();
        *inflight -= 1;
        self.gate_cv.notify_all();
    }

    /// Pops pooled buffers, or allocates fresh on a dry pool.
    fn checkout_buffers(&self) -> ConnBuffers {
        let popped = self.pool.lock().unwrap().pop();
        match popped {
            Some(b) => {
                servestats::add_pool_hits(1);
                b
            }
            None => {
                servestats::add_pool_misses(1);
                ConnBuffers::fresh()
            }
        }
    }

    /// Returns buffers to the pool (bounded; oversized write buffers
    /// are dropped so one giant response can't pin memory forever).
    fn return_buffers(&self, mut b: ConnBuffers) {
        b.out.clear();
        if b.out.capacity() > POOL_OUT_RETAIN_MAX {
            b.out = BytesMut::new();
        }
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(b);
        }
    }
}

/// A running server. Dropping it does *not* stop it — call
/// [`Server::stop`] for the drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` and starts accepting. `addr` may name port 0 for
    /// an ephemeral port — read it back with [`Server::local_addr`].
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            handler,
            cfg,
            stop: AtomicBool::new(false),
            gate: Mutex::new(0),
            gate_cv: Condvar::new(),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            ovl: Arc::new(OverloadState::default()),
            epoch: Instant::now(),
            fault_fired: AtomicBool::new(false),
        });
        let listener = Arc::new(listener);
        let accept_mx = Arc::new(Mutex::new(()));
        let workers = shared.cfg.workers.max(1);
        let acceptors: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| spawn_acceptor(&shared, &listener, &accept_mx))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || supervise(shared, listener, accept_mx, acceptors))
        };
        Ok(Server {
            shared,
            local_addr,
            supervisor: Mutex::new(Some(supervisor)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently in flight (reservations included).
    pub fn inflight(&self) -> usize {
        *self.shared.gate.lock().unwrap()
    }

    /// 503s this server shed, across every gate (pre-parse and
    /// pre-render).
    pub fn sheds(&self) -> u64 {
        self.shared.ovl.sheds_503.load(Ordering::Relaxed)
    }

    /// Connection-thread panics this server caught and converted to
    /// closes (the permit was released; the pool never shrank).
    pub fn conn_panics(&self) -> u64 {
        self.shared.ovl.conn_panics.load(Ordering::Relaxed)
    }

    /// Accept workers the supervisor respawned after a death outside
    /// shutdown. Nonzero means the pool-size invariant did its job.
    pub fn worker_respawns(&self) -> u64 {
        self.shared.ovl.worker_respawns.load(Ordering::Relaxed)
    }

    /// Stops accepting, nudges live connections, and blocks until
    /// every handler thread has drained. Idempotent.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.gate_cv.notify_all();
        // Nudge blocked reads: a half-shutdown turns them into EOFs.
        for conn in self.shared.conns.lock().unwrap().values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        if let Some(h) = self.supervisor.lock().unwrap().take() {
            let _ = h.join();
        }
        let mut inflight = self.shared.gate.lock().unwrap();
        while *inflight > 0 {
            inflight = self.shared.gate_cv.wait(inflight).unwrap();
        }
    }
}

fn spawn_acceptor(
    shared: &Arc<Shared>,
    listener: &Arc<TcpListener>,
    accept_mx: &Arc<Mutex<()>>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let listener = Arc::clone(listener);
    let accept_mx = Arc::clone(accept_mx);
    thread::spawn(move || accept_loop(shared, listener, accept_mx))
}

/// Keeps the accept-pool size an invariant: a worker only returns when
/// the server is stopping, so any thread found finished earlier died
/// of a panic — it is reaped and replaced in its slot. On stop, joins
/// the whole pool.
fn supervise(
    shared: Arc<Shared>,
    listener: Arc<TcpListener>,
    accept_mx: Arc<Mutex<()>>,
    mut workers: Vec<JoinHandle<()>>,
) {
    while !shared.stopping() {
        thread::sleep(READ_TICK);
        for slot in workers.iter_mut() {
            if slot.is_finished() && !shared.stopping() {
                let fresh = spawn_acceptor(&shared, &listener, &accept_mx);
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join(); // reap; the payload already printed
                servestats::add_worker_respawns(1);
                shared.ovl.worker_respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: Arc<TcpListener>, accept_mx: Arc<Mutex<()>>) {
    loop {
        if shared.stopping() {
            return;
        }
        // Injected fault (supervision tests): dies at the loop top,
        // holding no permit and no socket, so the respawned worker
        // inherits a consistent world.
        if let Some(after) = shared.cfg.fault_panic_after_conns {
            if shared.next_conn.load(Ordering::Relaxed) >= after
                && !shared.fault_fired.swap(true, Ordering::Relaxed)
            {
                panic!("injected accept-worker fault (after {after} conns)");
            }
        }
        // Permit first: at the cap the worker parks here and the
        // listener stops accepting — backpressure lands in the kernel
        // backlog, never on an accepted-then-dropped connection. How
        // long we park is the accept-queue age the pre-parse shed gate
        // reads: a connection accepted after a long park has sat in
        // the backlog at least that long.
        let park_start = Instant::now();
        {
            let mut inflight = shared.gate.lock().unwrap();
            let mut waited = false;
            while *inflight >= shared.cfg.conn_cap && !shared.stopping() {
                if !waited {
                    servestats::add_accept_backpressure(1);
                    waited = true;
                }
                let (guard, _) = shared.gate_cv.wait_timeout(inflight, READ_TICK).unwrap();
                inflight = guard;
            }
            if shared.stopping() {
                return;
            }
            *inflight += 1; // reservation; transfers to the conn thread
        }
        let queue_wait = park_start.elapsed();
        // Accept under the mutex (serializing workers on one listener).
        let accepted = loop {
            if shared.stopping() {
                break None;
            }
            let res = {
                let _g = accept_mx.lock().unwrap();
                listener.accept()
            };
            match res {
                Ok(pair) => break Some(pair),
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        };
        let Some((stream, peer_addr)) = accepted else {
            shared.release_permit();
            return;
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let shared2 = Arc::clone(&shared);
        thread::spawn(move || {
            // A panicking handler must not leak the permit or the
            // conns-map entry — that would permanently shrink the
            // effective pool. Catch, count, clean up, move on.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                serve_conn(&shared2, stream, peer_addr, conn_id, queue_wait);
            }));
            if outcome.is_err() {
                servestats::add_conn_panics(1);
                shared2.ovl.conn_panics.fetch_add(1, Ordering::Relaxed);
                servestats::add_conns_closed(1);
            }
            shared2.conns.lock().unwrap().remove(&conn_id);
            shared2.release_permit();
        });
    }
}

/// The deadline budget applied to the *parse* phase: answers 408 and
/// reports true (close the connection) when a partial request has been
/// incomplete longer than the budget. This is what actually kills a
/// byte-drip slowloris — each dripped byte resets the idle clock, but
/// nothing resets the request's arrival.
fn partial_deadline_expired(
    stream: &mut TcpStream,
    since: Option<Instant>,
    budget: Option<Duration>,
) -> bool {
    let (Some(budget), Some(since)) = (budget, since) else {
        return false;
    };
    if since.elapsed() < budget {
        return false;
    }
    servestats::add_deadline_408s(1);
    let mut t = BytesMut::new();
    Response::status(408).encode_into(&mut t);
    let _ = stream.write_all(&t);
    true
}

/// Synthesizes the engine-facing peer identity for a socket client:
/// real IP, a private eyeball ASN, the configured vantage country,
/// and a seed lineage forked from the connection id — independent of
/// every world RNG stream by construction.
fn peer_info(addr: SocketAddr, cfg: &ServeConfig, conn_id: u64) -> PeerInfo {
    let ip = match addr.ip() {
        IpAddr::V4(v4) => v4,
        IpAddr::V6(v6) => v6.to_ipv4().unwrap_or(Ipv4Addr::LOCALHOST),
    };
    PeerInfo {
        addr: HostAddr {
            ip,
            asn: AsnId(64512),
            asn_kind: AsnKind::Eyeball,
            country: cfg.vantage,
        },
        opened_at: cfg.sim_now,
        link: SeedFork::new(conn_id),
    }
}

fn serve_conn(
    shared: &Shared,
    mut stream: TcpStream,
    peer_addr: SocketAddr,
    conn_id: u64,
    queue_wait: Duration,
) {
    servestats::add_conns_accepted(1);
    let cfg = &shared.cfg;
    // Pre-parse admission: a connection that aged past the watermark
    // waiting in the accept queue is turned away for the cost of one
    // pre-encoded write — no parse, no render, no buffers.
    if let Some(q) = cfg.shed.accept_queue_ms {
        if queue_wait >= Duration::from_millis(q) {
            servestats::add_sheds_preparse(1);
            shared.ovl.sheds_503.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_nodelay(true);
            let _ = stream.write_all(SHED_503_WIRE);
            servestats::add_bytes_written(SHED_503_WIRE.len() as u64);
            let _ = stream.shutdown(Shutdown::Both);
            servestats::add_conns_closed(1);
            return;
        }
    }
    let tick = READ_TICK
        .min(cfg.idle_timeout)
        .max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(tick));
    let _ = stream.set_nodelay(true);
    let peer = peer_info(peer_addr, cfg, conn_id);

    // When a pre-render gate is on, the engine dispatches through a
    // per-connection admission wrapper; otherwise the handler chain is
    // exactly the ungated one (no new work on the default path).
    let arrival_us = Arc::new(AtomicU64::new(0));
    let engine_handler: Arc<dyn Handler> = if cfg.shed.gates_renders() {
        Arc::new(GatedHandler {
            inner: Arc::clone(&shared.handler),
            ovl: Arc::clone(&shared.ovl),
            shed: cfg.shed.clone(),
            epoch: shared.epoch,
            arrival_us: Arc::clone(&arrival_us),
        })
    } else {
        Arc::clone(&shared.handler)
    };
    let mut engine = HttpEngine::new(engine_handler);
    // Pooled read/write buffers: reused across feeds within the
    // connection, and across connections via the shared pool.
    let ConnBuffers { mut rbuf, mut out } = shared.checkout_buffers();
    let mut idle = Duration::ZERO;
    let mut read_total = 0u64;
    let mut write_total = 0u64;
    let mut served = 0u64;
    // When the current request began arriving, for the deadline gate:
    // a byte-drip client resets the idle clock with every byte, but
    // never resets this one.
    let mut partial_since: Option<Instant> = None;

    loop {
        if shared.stopping() {
            break;
        }
        match stream.read(&mut rbuf) {
            Ok(0) => break, // EOF — includes half-close mid-request: clean drop
            Ok(n) => {
                idle = Duration::ZERO;
                if cfg.shed.deadline.is_some() {
                    arrival_us.store(shared.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
                read_total += n as u64;
                servestats::add_bytes_read(n as u64);
                if read_total > cfg.read_budget {
                    servestats::add_budget_closes(1);
                    break;
                }
                let report = engine.feed_slice(&rbuf[..n], peer, cfg.sim_now, &mut out);
                if !out.is_empty() {
                    served += u64::from(report.responses);
                    servestats::add_requests_served(u64::from(report.responses));
                    write_total += out.len() as u64;
                    servestats::add_bytes_written(out.len() as u64);
                    let ok = stream.write_all(&out).is_ok();
                    out.clear();
                    if !ok {
                        break;
                    }
                    if write_total > cfg.write_budget {
                        servestats::add_budget_closes(1);
                        break;
                    }
                }
                if report.close.is_some() {
                    servestats::add_parse_rejects(1);
                    break;
                }
                partial_since = if engine.has_partial() {
                    partial_since.or(Some(Instant::now()))
                } else {
                    None
                };
                if partial_deadline_expired(&mut stream, partial_since, cfg.shed.deadline) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += tick;
                if partial_deadline_expired(&mut stream, partial_since, cfg.shed.deadline) {
                    break;
                }
                if idle >= cfg.idle_timeout {
                    servestats::add_idle_timeouts(1);
                    if engine.has_partial() {
                        // Slowloris: the request never completed.
                        let mut t = BytesMut::new();
                        Response::status(408).encode_into(&mut t);
                        let _ = stream.write_all(&t);
                    }
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // One bad peer must never take a worker with it: every
                // unexpected read error is a counted close, classified
                // so the overload books can tell routine resets from
                // genuinely odd transport failures.
                match e.kind() {
                    ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::BrokenPipe => servestats::add_read_resets(1),
                    _ => servestats::add_read_errors(1),
                }
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    shared.return_buffers(ConnBuffers { rbuf, out });
    if served > 1 {
        servestats::add_keepalive_conns(1);
    }
    if shared.stopping() {
        servestats::add_drained_conns(1);
    }
    servestats::add_conns_closed(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_wire::{Request, Response};

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request, _ctx: &RequestCtx| -> Response {
            match req.path() {
                "/ping" => Response::ok_text("pong"),
                _ => Response::not_found(),
            }
        })
    }

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            workers: 1,
            conn_cap: 8,
            idle_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        }
    }

    fn get(stream: &mut TcpStream, target: &str) -> Response {
        stream.write_all(&Request::get(target).encode()).unwrap();
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Response {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if let Ok(Some((resp, _))) = Response::parse(&buf) {
                        return resp;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => break, // reset mid-read: fall through to the parse
            }
        }
        let (resp, _) = Response::parse(&buf).unwrap().unwrap();
        resp
    }

    #[test]
    fn serves_keepalive_requests_and_drains() {
        let server = Server::start("127.0.0.1:0", tiny_cfg(), echo_handler()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").body_text(), "pong");
        assert_eq!(get(&mut conn, "/nope").status, 404);
        assert_eq!(get(&mut conn, "/ping").status, 200);
        server.stop();
        assert_eq!(server.inflight(), 0);
    }

    #[test]
    fn admin_routes_trip_the_flag() {
        let flag = ShutdownFlag::new();
        let handler: Arc<dyn Handler> = Arc::new(AdminHandler::new(echo_handler(), flag.clone()));
        let server = Server::start("127.0.0.1:0", tiny_cfg(), handler).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/healthz").body_text(), "ok");
        assert!(!flag.is_set());
        conn.write_all(&Request::post("/admin/shutdown", Vec::new()).encode())
            .unwrap();
        let resp = read_response(&mut conn);
        assert_eq!(resp.body_text(), "draining");
        assert!(flag.is_set());
        flag.wait(); // must not block once set
        server.stop();
    }

    /// Handler with a slow route, a panicking route, and a "cache"
    /// that always holds `/cached` — the admission gates' test bench.
    struct OverloadProbeHandler;

    impl Handler for OverloadProbeHandler {
        fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
            match req.path() {
                "/ping" => Response::ok_text("pong"),
                "/slow" => {
                    thread::sleep(Duration::from_millis(150));
                    Response::ok_text("slow")
                }
                "/boom" => panic!("handler exploded on purpose"),
                _ => Response::not_found(),
            }
        }

        fn cached(&self, req: &Request, _ctx: &RequestCtx) -> Option<Response> {
            (req.path() == "/cached").then(|| Response::ok_text("hot"))
        }
    }

    fn probe_server(cfg: ServeConfig) -> Server {
        Server::start("127.0.0.1:0", cfg, Arc::new(OverloadProbeHandler)).unwrap()
    }

    #[test]
    fn inflight_watermark_sheds_503_with_retry_after_and_spares_ops() {
        let mut cfg = tiny_cfg();
        cfg.shed.max_inflight = Some(0); // everything non-ops sheds
        let handler: Arc<dyn Handler> = Arc::new(AdminHandler::new(
            Arc::new(OverloadProbeHandler),
            ShutdownFlag::new(),
        ));
        let server = Server::start("127.0.0.1:0", cfg, handler).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let resp = get(&mut conn, "/ping");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get("Retry-After"), Some("1"));
        // The shed keeps the connection alive for the retry…
        assert_eq!(get(&mut conn, "/ping").status, 503);
        // …and ops routes answer even while everything else sheds.
        assert_eq!(get(&mut conn, "/healthz").status, 200);
        server.stop();
        assert_eq!(server.sheds(), 2);
    }

    #[test]
    fn deadline_sheds_late_pipelined_requests_but_serves_cache_hits() {
        let mut cfg = tiny_cfg();
        cfg.shed.deadline = Some(Duration::from_millis(20));
        let server = probe_server(cfg);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // One write, three pipelined requests. The slow render eats
        // the whole batch's budget: the trailing /ping can no longer
        // meet its deadline and is shed *before* rendering, while the
        // cache hit is served regardless — too cheap to shed.
        let mut batch = Vec::new();
        batch.extend_from_slice(&Request::get("/slow").encode());
        batch.extend_from_slice(&Request::get("/ping").encode());
        batch.extend_from_slice(&Request::get("/cached").encode());
        conn.write_all(&batch).unwrap();
        // All three answers may land in one segment: parse from one
        // rolling buffer instead of one read_response call each.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut resps = Vec::new();
        while resps.len() < 3 {
            if let Ok(Some((resp, consumed))) = Response::parse(&buf) {
                buf.drain(..consumed);
                resps.push(resp);
                continue;
            }
            match conn.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => break,
            }
        }
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0].status, 200);
        assert_eq!(resps[1].status, 503);
        assert_eq!(resps[2].status, 200);
        assert_eq!(resps[2].body_text(), "hot");
        server.stop();
        assert_eq!(server.sheds(), 1);
    }

    #[test]
    fn per_route_watermark_sheds_the_second_concurrent_render() {
        let mut cfg = tiny_cfg();
        cfg.shed.per_route = Some(1);
        let server = probe_server(cfg);
        let addr = server.local_addr();
        let mut a = TcpStream::connect(addr).unwrap();
        a.write_all(&Request::get("/slow").encode()).unwrap();
        thread::sleep(Duration::from_millis(40)); // let A's render start
        let mut b = TcpStream::connect(addr).unwrap();
        assert_eq!(get(&mut b, "/slow").status, 503);
        assert_eq!(read_response(&mut a).status, 200);
        // With A's render done the slot is free again.
        assert_eq!(get(&mut b, "/slow").status, 200);
        server.stop();
        assert_eq!(server.sheds(), 1);
    }

    #[test]
    fn stale_accept_queue_sheds_pre_parse_and_closes() {
        let mut cfg = tiny_cfg();
        cfg.conn_cap = 1;
        cfg.shed.accept_queue_ms = Some(50);
        let server = probe_server(cfg);
        let addr = server.local_addr();
        let mut a = TcpStream::connect(addr).unwrap();
        assert_eq!(get(&mut a, "/ping").status, 200);
        // B sits in the backlog while A holds the only permit…
        let mut b = TcpStream::connect(addr).unwrap();
        b.write_all(&Request::get("/ping").encode()).unwrap();
        thread::sleep(Duration::from_millis(150));
        drop(a); // …so when B is finally accepted, its age > watermark
        b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let resp = read_response(&mut b);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get("Retry-After"), Some("1"));
        // Pre-parse sheds close: the next read is EOF.
        let mut rest = Vec::new();
        b.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        server.stop();
        assert!(server.sheds() >= 1);
    }

    #[test]
    fn byte_drip_is_killed_by_the_deadline_budget_not_the_idle_clock() {
        let mut cfg = tiny_cfg();
        cfg.idle_timeout = Duration::from_secs(30); // drip defeats this
        cfg.shed.deadline = Some(Duration::from_millis(100));
        let server = probe_server(cfg);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /drip HTTP/1.1\r\nX-Pad: ").unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let start = std::time::Instant::now();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let mut killed = None;
        while start.elapsed() < Duration::from_secs(5) {
            let _ = conn.write_all(b"a"); // one dripped header byte
            match conn.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => break,
            }
            if let Ok(Some((resp, _))) = Response::parse(&buf) {
                killed = Some(resp.status);
                break;
            }
        }
        assert_eq!(killed, Some(408), "drip was never killed");
        server.stop();
    }

    #[test]
    fn handler_panic_releases_the_permit_and_the_pool_serves_on() {
        let server = probe_server(tiny_cfg());
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(&Request::get("/boom").encode()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The panicking render owes no response — just a close.
        let mut got = Vec::new();
        let _ = conn.read_to_end(&mut got);
        assert!(got.is_empty(), "unexpected bytes: {got:?}");
        // The permit came back and fresh connections are served.
        let mut next = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut next, "/ping").status, 200);
        server.stop();
        assert_eq!(server.inflight(), 0);
        assert_eq!(server.conn_panics(), 1);
    }

    #[test]
    fn injected_acceptor_fault_is_respawned_and_the_pool_restored() {
        let mut cfg = tiny_cfg();
        cfg.fault_panic_after_conns = Some(1);
        let server = probe_server(cfg);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").status, 200);
        drop(conn);
        // The lone accept worker now dies at its loop top; the
        // supervisor must notice and replace it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.worker_respawns() == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.worker_respawns(), 1, "worker never respawned");
        let mut next = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut next, "/ping").status, 200);
        server.stop();
        assert_eq!(server.inflight(), 0);
    }

    #[test]
    fn peer_reset_is_a_counted_close_not_a_worker_death() {
        let before = servestats::READ_RESETS.load(Ordering::Relaxed)
            + servestats::READ_ERRORS.load(Ordering::Relaxed);
        let server = Server::start("127.0.0.1:0", tiny_cfg(), echo_handler()).unwrap();
        {
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            conn.set_nodelay(true).unwrap();
            conn.write_all(&Request::get("/ping").encode()).unwrap();
            // Let the response land in our receive buffer unread, then
            // drop: closing with undelivered data sends an RST, which
            // the server must book as a close, not die on.
            thread::sleep(Duration::from_millis(100));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while servestats::READ_RESETS.load(Ordering::Relaxed)
            + servestats::READ_ERRORS.load(Ordering::Relaxed)
            == before
            && std::time::Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(10));
        }
        // The pool survived the abuse: a fresh client is still served.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").status, 200);
        server.stop();
        assert_eq!(server.inflight(), 0);
        assert!(
            servestats::READ_RESETS.load(Ordering::Relaxed)
                + servestats::READ_ERRORS.load(Ordering::Relaxed)
                > before,
            "reset was not counted"
        );
    }

    #[test]
    fn idle_connections_time_out() {
        let server = Server::start("127.0.0.1:0", tiny_cfg(), echo_handler()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(get(&mut conn, "/ping").status, 200);
        // Stay silent past the idle timeout: the server closes (EOF).
        let mut buf = [0u8; 64];
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(conn.read(&mut buf).unwrap(), 0);
        server.stop();
    }
}
