//! Latency bookkeeping for the soak harness.
//!
//! The soak test records one wall-clock duration per request and
//! reduces them to the percentiles reported in `BENCH_serve.json`.
//! Nothing here is used by the server's hot path.

/// Microsecond latencies collected by a soak run.
#[derive(Debug, Default)]
pub struct LatencyLog {
    samples_us: Vec<u64>,
}

impl LatencyLog {
    /// An empty log.
    pub fn new() -> LatencyLog {
        LatencyLog::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, micros: u64) {
        self.samples_us.push(micros);
    }

    /// Absorbs another log (per-thread logs merge into one).
    pub fn merge(&mut self, other: LatencyLog) {
        self.samples_us.extend(other.samples_us);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `p`-th percentile (nearest-rank, `0.0..=100.0`) in
    /// microseconds; 0 when no samples were recorded.
    pub fn percentile_us(&mut self, p: f64) -> u64 {
        if self.samples_us.is_empty() {
            return 0;
        }
        self.samples_us.sort_unstable();
        let n = self.samples_us.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples_us[rank.clamp(1, n) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let mut log = LatencyLog::new();
        assert_eq!(log.percentile_us(99.0), 0);
        for v in [5, 1, 4, 2, 3] {
            log.record(v);
        }
        assert_eq!(log.percentile_us(50.0), 3);
        assert_eq!(log.percentile_us(99.0), 5);
        assert_eq!(log.percentile_us(100.0), 5);
        let mut other = LatencyLog::new();
        other.record(10);
        log.merge(other);
        assert_eq!(log.len(), 6);
        assert_eq!(log.percentile_us(100.0), 10);
    }
}
