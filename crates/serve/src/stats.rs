//! Latency bookkeeping for the soak harness.
//!
//! The soak test records one wall-clock duration per request and
//! reduces them to the percentiles reported in `BENCH_serve.json`.
//! Nothing here is used by the server's hot path.

/// Microsecond latencies collected by a soak run.
#[derive(Debug, Default)]
pub struct LatencyLog {
    samples_us: Vec<u64>,
}

impl LatencyLog {
    /// An empty log.
    pub fn new() -> LatencyLog {
        LatencyLog::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, micros: u64) {
        self.samples_us.push(micros);
    }

    /// Absorbs another log (per-thread logs merge into one).
    pub fn merge(&mut self, other: LatencyLog) {
        self.samples_us.extend(other.samples_us);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `p`-th percentile (nearest-rank, `0.0..=100.0`) in
    /// microseconds; 0 when no samples were recorded.
    pub fn percentile_us(&mut self, p: f64) -> u64 {
        if self.samples_us.is_empty() {
            return 0;
        }
        self.samples_us.sort_unstable();
        let n = self.samples_us.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples_us[rank.clamp(1, n) - 1]
    }
}

/// Client-side tally of response status codes, bucketed the way the
/// regression gate reads them: successes, not-founds, the reject
/// statuses (408/413/431) individually, and everything else. Lives
/// here (not in the process-wide `servestats`) so concurrent soak and
/// load runs in one test binary can each keep their own books.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatusTally {
    /// 2xx responses.
    pub ok: u64,
    /// 404s (unknown routes — expected in fuzzing mixes, drift in
    /// clean ones).
    pub not_found: u64,
    /// 408 Request Timeout (slowloris kills).
    pub timeouts_408: u64,
    /// 413 Payload Too Large rejects.
    pub rejects_413: u64,
    /// 431 Request Header Fields Too Large rejects.
    pub rejects_431: u64,
    /// 503 load sheds — flow control, not failures: a shedding server
    /// under the overload bench must not read as a correctness
    /// regression, so these stay out of [`StatusTally::errors`].
    pub sheds_503: u64,
    /// Everything else (other 4xx/5xx).
    pub other: u64,
}

impl StatusTally {
    /// An empty tally.
    pub fn new() -> StatusTally {
        StatusTally::default()
    }

    /// Buckets one response status.
    pub fn record(&mut self, status: u16) {
        match status {
            200..=299 => self.ok += 1,
            404 => self.not_found += 1,
            408 => self.timeouts_408 += 1,
            413 => self.rejects_413 += 1,
            431 => self.rejects_431 += 1,
            503 => self.sheds_503 += 1,
            _ => self.other += 1,
        }
    }

    /// Absorbs another tally (per-thread tallies merge into one).
    pub fn merge(&mut self, other: StatusTally) {
        self.ok += other.ok;
        self.not_found += other.not_found;
        self.timeouts_408 += other.timeouts_408;
        self.rejects_413 += other.rejects_413;
        self.rejects_431 += other.rejects_431;
        self.sheds_503 += other.sheds_503;
        self.other += other.other;
    }

    /// Total responses recorded.
    pub fn total(&self) -> u64 {
        self.ok
            + self.not_found
            + self.timeouts_408
            + self.rejects_413
            + self.rejects_431
            + self.sheds_503
            + self.other
    }

    /// Responses outside the expected 2xx/404 envelope — what the
    /// regression gate treats as correctness drift. 503 sheds are
    /// deliberately excluded: an overloaded server answering them is
    /// doing exactly what it was configured to do.
    pub fn errors(&self) -> u64 {
        self.timeouts_408 + self.rejects_413 + self.rejects_431 + self.other
    }

    /// The tally as `(json_key, value)` pairs, in declaration order.
    pub fn fields(&self) -> [(&'static str, u64); 7] {
        [
            ("ok", self.ok),
            ("not_found", self.not_found),
            ("rejects_408", self.timeouts_408),
            ("rejects_413", self.rejects_413),
            ("rejects_431", self.rejects_431),
            ("sheds_503", self.sheds_503),
            ("other", self.other),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_tally_buckets_and_merges() {
        let mut t = StatusTally::new();
        for s in [200, 204, 404, 408, 413, 431, 503, 503, 500, 403] {
            t.record(s);
        }
        assert_eq!(t.ok, 2);
        assert_eq!(t.not_found, 1);
        assert_eq!(t.timeouts_408, 1);
        assert_eq!(t.rejects_413, 1);
        assert_eq!(t.rejects_431, 1);
        assert_eq!(t.sheds_503, 2);
        assert_eq!(t.other, 2);
        assert_eq!(t.total(), 10);
        // Sheds are flow control, not drift: errors() skips them.
        assert_eq!(t.errors(), 5);
        let mut u = StatusTally::new();
        u.record(200);
        u.merge(t);
        assert_eq!(u.total(), 11);
        assert_eq!(u.ok, 3);
        assert_eq!(u.sheds_503, 2);
        assert_eq!(u.fields()[0], ("ok", 3));
        assert_eq!(u.fields()[5], ("sheds_503", 2));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut log = LatencyLog::new();
        assert_eq!(log.percentile_us(99.0), 0);
        for v in [5, 1, 4, 2, 3] {
            log.record(v);
        }
        assert_eq!(log.percentile_us(50.0), 3);
        assert_eq!(log.percentile_us(99.0), 5);
        assert_eq!(log.percentile_us(100.0), 5);
        let mut other = LatencyLog::new();
        other.record(10);
        log.merge(other);
        assert_eq!(log.len(), 6);
        assert_eq!(log.percentile_us(100.0), 10);
    }
}
