//! Process-wide socket-server counters.
//!
//! `iiscope-serve` exposes a finished world to real TCP clients as a
//! second consumer of the sans-IO wire substrates. These counters
//! record what the accept loop and connection workers did — the
//! observability half of the server, surfaced by `repro --timing` as
//! part of `BENCH_serve.json` and dumped on shutdown.
//!
//! Like [`crate::wirestats`], they are relaxed write-only atomics:
//! nothing in the simulation ever reads them, so they cannot perturb
//! determinism, and they live in `iiscope-types` so any layer can
//! report without new dependency edges.

use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed counter.
macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident / $inc:ident / $key:literal;)*) => {
        $( $(#[$doc])* pub static $name: AtomicU64 = AtomicU64::new(0); )*

        $(
            $(#[$doc])*
            #[inline]
            pub fn $inc(n: u64) {
                $name.fetch_add(n, Ordering::Relaxed);
            }
        )*

        /// Snapshot of every counter, in declaration order, as
        /// `(json_key, value)` pairs.
        pub fn snapshot() -> Vec<(&'static str, u64)> {
            vec![$( ($key, $name.load(Ordering::Relaxed)), )*]
        }

        /// Resets every counter to zero (tests and `--timing` runs).
        pub fn reset() {
            $( $name.store(0, Ordering::Relaxed); )*
        }
    };
}

counters! {
    /// Connections accepted by the listener workers.
    CONNS_ACCEPTED / add_conns_accepted / "conns_accepted";
    /// Connections fully closed (handler thread exited).
    CONNS_CLOSED / add_conns_closed / "conns_closed";
    /// Times an accept worker paused because the in-flight connection
    /// count sat at the cap (backpressure events, not wait duration).
    ACCEPT_BACKPRESSURE / add_accept_backpressure / "accept_backpressure_waits";
    /// Requests answered over real sockets.
    REQUESTS_SERVED / add_requests_served / "requests_served";
    /// Request bytes read off sockets.
    BYTES_READ / add_bytes_read / "bytes_read";
    /// Response bytes written to sockets.
    BYTES_WRITTEN / add_bytes_written / "bytes_written";
    /// Connections that served more than one request (keep-alive paid
    /// off at least once).
    KEEPALIVE_CONNS / add_keepalive_conns / "keepalive_conns";
    /// Connections closed for exceeding the idle timeout.
    IDLE_TIMEOUTS / add_idle_timeouts / "idle_timeouts";
    /// Connections poisoned by a parse reject (400/413/431) and closed
    /// after the mapped status was flushed.
    PARSE_REJECTS / add_parse_rejects / "parse_rejects";
    /// Connections closed for blowing a per-connection read or write
    /// budget.
    BUDGET_CLOSES / add_budget_closes / "budget_closes";
    /// Connections still open when shutdown began and drained cleanly.
    DRAINED_CONNS / add_drained_conns / "drained_conns";
    /// Responses served from the day-versioned render cache.
    CACHE_HITS / add_cache_hits / "cache_hits";
    /// Cacheable requests that had to render fresh.
    CACHE_MISSES / add_cache_misses / "cache_misses";
    /// Times the render cache dropped its entries on a version bump.
    CACHE_INVALIDATIONS / add_cache_invalidations / "cache_invalidations";
    /// Connection buffers checked out of the per-server pool.
    POOL_HITS / add_pool_hits / "pool_hits";
    /// Connections that had to allocate fresh buffers (pool empty).
    POOL_MISSES / add_pool_misses / "pool_misses";
    /// Connections dropped on a peer reset/abort mid-read (routine
    /// under hostile churn; never a worker death).
    READ_RESETS / add_read_resets / "read_resets";
    /// Connections dropped on any other unexpected read error.
    READ_ERRORS / add_read_errors / "read_errors";
    /// Connections answered a pre-encoded 503 and closed before any
    /// parse (accept-queue age past its watermark).
    SHEDS_PREPARSE / add_sheds_preparse / "sheds_preparse";
    /// Requests shed with 503 at the in-flight-renders watermark.
    SHEDS_INFLIGHT / add_sheds_inflight / "sheds_inflight";
    /// Requests shed with 503 at the per-route concurrency watermark.
    SHEDS_ROUTE / add_sheds_route / "sheds_route";
    /// Requests shed with 503 after outliving their deadline budget
    /// before rendering began.
    SHEDS_DEADLINE / add_sheds_deadline / "sheds_deadline";
    /// Requests a shed gate would have turned away but answered from
    /// the render cache instead (hits are too cheap to shed).
    SHED_CACHE_EXEMPT / add_shed_cache_exempt / "shed_cache_exempt";
    /// Partial requests answered 408 and closed because they were
    /// still incomplete past the deadline budget (byte-drip clients).
    DEADLINE_408S / add_deadline_408s / "deadline_408s";
    /// Connection-thread panics caught and converted to closes.
    CONN_PANICS / add_conn_panics / "conn_panics";
    /// Accept workers respawned by the supervisor after dying outside
    /// shutdown.
    WORKER_RESPAWNS / add_worker_respawns / "worker_respawns";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_increments_in_order() {
        reset();
        add_conns_accepted(3);
        add_requests_served(9);
        add_drained_conns(1);
        add_cache_hits(4);
        add_pool_misses(2);
        add_read_resets(5);
        let snap = snapshot();
        assert_eq!(snap[0], ("conns_accepted", 3));
        assert_eq!(snap[3], ("requests_served", 9));
        assert_eq!(snap[10], ("drained_conns", 1));
        assert_eq!(snap[11], ("cache_hits", 4));
        assert_eq!(snap[15], ("pool_misses", 2));
        assert_eq!(snap[16], ("read_resets", 5));
        reset();
        assert!(snapshot().iter().all(|&(_, v)| v == 0));
    }
}
