//! Process-wide wire-path counters.
//!
//! The zero-copy fast path (netsim delivery → TLS records → HTTP views
//! → streaming JSON) is justified by *measured* allocation behaviour,
//! so every layer reports what it did with its buffers here. Counters
//! are relaxed atomics: they never synchronize the simulation (ordering
//! between workers is irrelevant — only totals are reported) and they
//! cannot perturb determinism because no simulated decision reads them.
//!
//! They sit in `iiscope-types` rather than `iiscope-wire` because the
//! bottom of the stack (`iiscope-netsim`) reports delivery-buffer reuse
//! and must not depend on the protocol crates above it.

use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed counter.
macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident / $inc:ident / $key:literal;)*) => {
        $( $(#[$doc])* pub static $name: AtomicU64 = AtomicU64::new(0); )*

        $(
            $(#[$doc])*
            #[inline]
            pub fn $inc(n: u64) {
                $name.fetch_add(n, Ordering::Relaxed);
            }
        )*

        /// Snapshot of every counter, in declaration order, as
        /// `(json_key, value)` pairs.
        pub fn snapshot() -> Vec<(&'static str, u64)> {
            vec![$( ($key, $name.load(Ordering::Relaxed)), )*]
        }

        /// Resets every counter to zero (tests and `--timing` runs).
        pub fn reset() {
            $( $name.store(0, Ordering::Relaxed); )*
        }

        /// Restores counters from a checkpoint ledger keyed by the
        /// snapshot keys. Unknown keys are ignored and missing keys
        /// stay at their current value, so ledgers survive counter
        /// additions across versions.
        pub fn restore(ledger: &[(String, u64)]) {
            for (key, value) in ledger {
                match key.as_str() {
                    $( $key => $name.store(*value, Ordering::Relaxed), )*
                    _ => {}
                }
            }
        }
    };
}

counters! {
    /// Payload bytes moved through netsim connection delivery.
    BYTES_DELIVERED / add_bytes_delivered / "bytes_delivered";
    /// Delivery buffers handed to a session as a single shared slab
    /// (zero-copy: the receiver reuses the sender's allocation).
    BUFFERS_REUSED / add_buffers_reused / "delivery_buffers_reused";
    /// Delivery buffers that had to be coalesced from multiple
    /// segments (one copy to linearize residue + new bytes).
    BUFFERS_COALESCED / add_buffers_coalesced / "delivery_buffers_coalesced";
    /// TLS records sealed (client→wire and server→wire).
    RECORDS_SEALED / add_records_sealed / "tls_records_sealed";
    /// TLS records opened (wire→plaintext).
    RECORDS_OPENED / add_records_opened / "tls_records_opened";
    /// Plaintext bytes framed into TLS records.
    BYTES_SEALED / add_bytes_sealed / "tls_bytes_sealed";
    /// Plaintext record payloads passed through without coalescing
    /// (single-record turns: the decrypt buffer IS the app payload).
    RECORD_PASSTHROUGH / add_record_passthrough / "tls_single_record_passthrough";
    /// HTTP messages parsed through the borrowed-view fast path
    /// (no per-header `String`, body stays a slice of the delivery
    /// buffer).
    HTTP_VIEW_PARSES / add_http_view_parses / "http_view_parses";
    /// JSON events yielded by the streaming scanner.
    JSON_EVENTS / add_json_events / "json_scanner_events";
    /// Offer-wall pages parsed via the streaming scanner.
    WALLS_STREAMED / add_walls_streamed / "walls_streamed";
    /// Offers extracted by the streaming wall parser.
    OFFERS_STREAMED / add_offers_streamed / "offers_streamed";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_increments_in_order() {
        reset();
        add_bytes_delivered(10);
        add_buffers_reused(2);
        add_offers_streamed(7);
        let snap = snapshot();
        assert_eq!(snap[0], ("bytes_delivered", 10));
        assert_eq!(snap[1], ("delivery_buffers_reused", 2));
        assert_eq!(snap.last().unwrap(), &("offers_streamed", 7));
        reset();
        assert!(snapshot().iter().all(|&(_, v)| v == 0));
    }
}
