//! Countries, as they appear in the study.
//!
//! Two distinct country dimensions exist in the paper:
//!
//! * **Vantage points** — the monitoring infrastructure runs its
//!   offer-wall milkers "from the following eight countries: USA, UK,
//!   Spain, Israel, Canada, Germany, India, and Russia using datacenter
//!   VPN proxies" (§4.1).
//! * **Developer countries** — Table 4 counts the number of distinct
//!   countries the advertised apps' developers are based in (up to 44
//!   for ayeT-Studios), parsed from Play Store mailing addresses.

use std::fmt;

/// ISO-3166-ish country codes covering every country referenced in the
/// study plus a long tail used by the developer-population generator
/// (Table 4 needs up to 44 distinct developer countries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Country {
    Us,
    Uk,
    Es,
    Il,
    Ca,
    De,
    In,
    Ru, // the eight vantage points, in paper order
    Fr,
    It,
    Nl,
    Se,
    No,
    Fi,
    Dk,
    Pl,
    Pt,
    Gr,
    Cz,
    Hu,
    Ro,
    Bg,
    Ua,
    Tr,
    Cn,
    Jp,
    Kr,
    Tw,
    Hk,
    Sg,
    My,
    Th,
    Vn,
    Ph,
    Id,
    Pk,
    Bd,
    Lk,
    Np,
    Ae,
    Sa,
    Eg,
    Ng,
    Ke,
    Za,
    Ma,
    Br,
    Mx,
    Ar,
    Cl,
    Co,
    Pe,
    Au,
    Nz,
    Ie,
    Ch,
    At,
    Be,
    Ee,
    Lv,
    Lt,
}

impl Country {
    /// The eight vantage-point countries of §4.1, in the paper's order.
    pub const VANTAGE_POINTS: [Country; 8] = [
        Country::Us,
        Country::Uk,
        Country::Es,
        Country::Il,
        Country::Ca,
        Country::De,
        Country::In,
        Country::Ru,
    ];

    /// Every country known to the generator.
    pub const ALL: [Country; 61] = [
        Country::Us,
        Country::Uk,
        Country::Es,
        Country::Il,
        Country::Ca,
        Country::De,
        Country::In,
        Country::Ru,
        Country::Fr,
        Country::It,
        Country::Nl,
        Country::Se,
        Country::No,
        Country::Fi,
        Country::Dk,
        Country::Pl,
        Country::Pt,
        Country::Gr,
        Country::Cz,
        Country::Hu,
        Country::Ro,
        Country::Bg,
        Country::Ua,
        Country::Tr,
        Country::Cn,
        Country::Jp,
        Country::Kr,
        Country::Tw,
        Country::Hk,
        Country::Sg,
        Country::My,
        Country::Th,
        Country::Vn,
        Country::Ph,
        Country::Id,
        Country::Pk,
        Country::Bd,
        Country::Lk,
        Country::Np,
        Country::Ae,
        Country::Sa,
        Country::Eg,
        Country::Ng,
        Country::Ke,
        Country::Za,
        Country::Ma,
        Country::Br,
        Country::Mx,
        Country::Ar,
        Country::Cl,
        Country::Co,
        Country::Pe,
        Country::Au,
        Country::Nz,
        Country::Ie,
        Country::Ch,
        Country::At,
        Country::Be,
        Country::Ee,
        Country::Lv,
        Country::Lt,
    ];

    /// Two-letter code.
    pub fn code(self) -> &'static str {
        use Country::*;
        match self {
            Us => "US",
            Uk => "GB",
            Es => "ES",
            Il => "IL",
            Ca => "CA",
            De => "DE",
            In => "IN",
            Ru => "RU",
            Fr => "FR",
            It => "IT",
            Nl => "NL",
            Se => "SE",
            No => "NO",
            Fi => "FI",
            Dk => "DK",
            Pl => "PL",
            Pt => "PT",
            Gr => "GR",
            Cz => "CZ",
            Hu => "HU",
            Ro => "RO",
            Bg => "BG",
            Ua => "UA",
            Tr => "TR",
            Cn => "CN",
            Jp => "JP",
            Kr => "KR",
            Tw => "TW",
            Hk => "HK",
            Sg => "SG",
            My => "MY",
            Th => "TH",
            Vn => "VN",
            Ph => "PH",
            Id => "ID",
            Pk => "PK",
            Bd => "BD",
            Lk => "LK",
            Np => "NP",
            Ae => "AE",
            Sa => "SA",
            Eg => "EG",
            Ng => "NG",
            Ke => "KE",
            Za => "ZA",
            Ma => "MA",
            Br => "BR",
            Mx => "MX",
            Ar => "AR",
            Cl => "CL",
            Co => "CO",
            Pe => "PE",
            Au => "AU",
            Nz => "NZ",
            Ie => "IE",
            Ch => "CH",
            At => "AT",
            Be => "BE",
            Ee => "EE",
            Lv => "LV",
            Lt => "LT",
        }
    }

    /// Whether this country is one of the eight §4.1 vantage points.
    pub fn is_vantage_point(self) -> bool {
        Self::VANTAGE_POINTS.contains(&self)
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn eight_vantage_points() {
        assert_eq!(Country::VANTAGE_POINTS.len(), 8);
        for c in Country::VANTAGE_POINTS {
            assert!(c.is_vantage_point());
        }
        assert!(!Country::Br.is_vantage_point());
    }

    #[test]
    fn all_is_unique_and_contains_vantage_points() {
        let set: BTreeSet<Country> = Country::ALL.into_iter().collect();
        assert_eq!(set.len(), Country::ALL.len());
        for c in Country::VANTAGE_POINTS {
            assert!(set.contains(&c));
        }
        // Table 4 reports up to 44 distinct developer countries for a
        // single IIP, so the generator's pool must be at least that big.
        assert!(Country::ALL.len() >= 44);
    }

    #[test]
    fn codes_are_two_letters_and_unique() {
        let mut seen = BTreeSet::new();
        for c in Country::ALL {
            assert_eq!(c.code().len(), 2);
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
        }
    }
}
