//! Peak-RSS sampling for the benchmark emitters.
//!
//! The scaling story of the sharded world is a *memory* claim — a
//! 100×-paper run must fit under a budget below the fully-resident
//! footprint — so every `BENCH_*.json` reports the process high-water
//! mark alongside its timing numbers. On Linux the kernel already
//! tracks this as `VmHWM` in `/proc/self/status`; elsewhere there is
//! no portable equivalent in std, so the sampler degrades to `None`
//! and the emitters print `null`.

/// Peak resident set size of the current process, in bytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux. Returns `None` on
/// other platforms, or when the proc file is missing or malformed —
/// callers must treat the value as best-effort telemetry, never as
/// simulation input.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line out of a `/proc/self/status` dump.
/// Separated from the I/O so the parser is testable on any platform.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let mut fields = line.split_whitespace();
    let _label = fields.next()?;
    let value: u64 = fields.next()?.parse().ok()?;
    // The kernel always reports kB here; tolerate a missing unit by
    // assuming the same.
    match fields.next() {
        Some("kB") | None => Some(value * 1024),
        Some(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_proc_status_dump() {
        let status = "Name:\tiiscope\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(123_456 * 1024));
    }

    #[test]
    fn malformed_dumps_degrade_to_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmHWM:"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t12 MB"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_nonzero_peak() {
        let peak = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(peak > 0);
    }
}
