//! Google Play app genres.
//!
//! Table 4 counts the distinct genres of apps advertised per IIP (up to
//! 51 for ayeT-Studios), so the simulated catalog needs Google Play's
//! real genre taxonomy: the application categories plus the game
//! sub-categories, 53 in total — comfortably above the paper's maximum
//! observed count.

use std::fmt;

/// A Google Play category ("genre" in the paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Genre {
    // Application categories.
    ArtAndDesign,
    AutoAndVehicles,
    Beauty,
    BooksAndReference,
    Business,
    Comics,
    Communication,
    Dating,
    Education,
    Entertainment,
    Events,
    Finance,
    FoodAndDrink,
    HealthAndFitness,
    HouseAndHome,
    LibrariesAndDemo,
    Lifestyle,
    MapsAndNavigation,
    Medical,
    MusicAndAudio,
    NewsAndMagazines,
    Parenting,
    Personalization,
    Photography,
    Productivity,
    Shopping,
    Social,
    Sports,
    Tools,
    TravelAndLocal,
    VideoPlayers,
    Weather,
    // Game sub-categories.
    GameAction,
    GameAdventure,
    GameArcade,
    GameBoard,
    GameCard,
    GameCasino,
    GameCasual,
    GameEducational,
    GameMusic,
    GamePuzzle,
    GameRacing,
    GameRolePlaying,
    GameSimulation,
    GameSports,
    GameStrategy,
    GameTrivia,
    GameWord,
    // Family categories.
    FamilyAction,
    FamilyBrainGames,
    FamilyCreate,
    FamilyEducation,
}

impl Genre {
    /// Every genre known to the catalog generator.
    pub const ALL: [Genre; 53] = [
        Genre::ArtAndDesign,
        Genre::AutoAndVehicles,
        Genre::Beauty,
        Genre::BooksAndReference,
        Genre::Business,
        Genre::Comics,
        Genre::Communication,
        Genre::Dating,
        Genre::Education,
        Genre::Entertainment,
        Genre::Events,
        Genre::Finance,
        Genre::FoodAndDrink,
        Genre::HealthAndFitness,
        Genre::HouseAndHome,
        Genre::LibrariesAndDemo,
        Genre::Lifestyle,
        Genre::MapsAndNavigation,
        Genre::Medical,
        Genre::MusicAndAudio,
        Genre::NewsAndMagazines,
        Genre::Parenting,
        Genre::Personalization,
        Genre::Photography,
        Genre::Productivity,
        Genre::Shopping,
        Genre::Social,
        Genre::Sports,
        Genre::Tools,
        Genre::TravelAndLocal,
        Genre::VideoPlayers,
        Genre::Weather,
        Genre::GameAction,
        Genre::GameAdventure,
        Genre::GameArcade,
        Genre::GameBoard,
        Genre::GameCard,
        Genre::GameCasino,
        Genre::GameCasual,
        Genre::GameEducational,
        Genre::GameMusic,
        Genre::GamePuzzle,
        Genre::GameRacing,
        Genre::GameRolePlaying,
        Genre::GameSimulation,
        Genre::GameSports,
        Genre::GameStrategy,
        Genre::GameTrivia,
        Genre::GameWord,
        Genre::FamilyAction,
        Genre::FamilyBrainGames,
        Genre::FamilyCreate,
        Genre::FamilyEducation,
    ];

    /// Whether the genre is a game category. Games matter twice in the
    /// study: the "top games" chart (Figure 5a) and the prevalence of
    /// level-based usage offers ("Install and Reach Level 10").
    pub fn is_game(self) -> bool {
        matches!(
            self,
            Genre::GameAction
                | Genre::GameAdventure
                | Genre::GameArcade
                | Genre::GameBoard
                | Genre::GameCard
                | Genre::GameCasino
                | Genre::GameCasual
                | Genre::GameEducational
                | Genre::GameMusic
                | Genre::GamePuzzle
                | Genre::GameRacing
                | Genre::GameRolePlaying
                | Genre::GameSimulation
                | Genre::GameSports
                | Genre::GameStrategy
                | Genre::GameTrivia
                | Genre::GameWord
        )
    }

    /// Play-Store-style identifier, e.g. `GAME_ACTION`.
    pub fn play_id(self) -> &'static str {
        use Genre::*;
        match self {
            ArtAndDesign => "ART_AND_DESIGN",
            AutoAndVehicles => "AUTO_AND_VEHICLES",
            Beauty => "BEAUTY",
            BooksAndReference => "BOOKS_AND_REFERENCE",
            Business => "BUSINESS",
            Comics => "COMICS",
            Communication => "COMMUNICATION",
            Dating => "DATING",
            Education => "EDUCATION",
            Entertainment => "ENTERTAINMENT",
            Events => "EVENTS",
            Finance => "FINANCE",
            FoodAndDrink => "FOOD_AND_DRINK",
            HealthAndFitness => "HEALTH_AND_FITNESS",
            HouseAndHome => "HOUSE_AND_HOME",
            LibrariesAndDemo => "LIBRARIES_AND_DEMO",
            Lifestyle => "LIFESTYLE",
            MapsAndNavigation => "MAPS_AND_NAVIGATION",
            Medical => "MEDICAL",
            MusicAndAudio => "MUSIC_AND_AUDIO",
            NewsAndMagazines => "NEWS_AND_MAGAZINES",
            Parenting => "PARENTING",
            Personalization => "PERSONALIZATION",
            Photography => "PHOTOGRAPHY",
            Productivity => "PRODUCTIVITY",
            Shopping => "SHOPPING",
            Social => "SOCIAL",
            Sports => "SPORTS",
            Tools => "TOOLS",
            TravelAndLocal => "TRAVEL_AND_LOCAL",
            VideoPlayers => "VIDEO_PLAYERS",
            Weather => "WEATHER",
            GameAction => "GAME_ACTION",
            GameAdventure => "GAME_ADVENTURE",
            GameArcade => "GAME_ARCADE",
            GameBoard => "GAME_BOARD",
            GameCard => "GAME_CARD",
            GameCasino => "GAME_CASINO",
            GameCasual => "GAME_CASUAL",
            GameEducational => "GAME_EDUCATIONAL",
            GameMusic => "GAME_MUSIC",
            GamePuzzle => "GAME_PUZZLE",
            GameRacing => "GAME_RACING",
            GameRolePlaying => "GAME_ROLE_PLAYING",
            GameSimulation => "GAME_SIMULATION",
            GameSports => "GAME_SPORTS",
            GameStrategy => "GAME_STRATEGY",
            GameTrivia => "GAME_TRIVIA",
            GameWord => "GAME_WORD",
            FamilyAction => "FAMILY_ACTION",
            FamilyBrainGames => "FAMILY_BRAINGAMES",
            FamilyCreate => "FAMILY_CREATE",
            FamilyEducation => "FAMILY_EDUCATION",
        }
    }
}

impl fmt::Display for Genre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.play_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_unique_and_large_enough_for_table4() {
        let set: BTreeSet<Genre> = Genre::ALL.into_iter().collect();
        assert_eq!(set.len(), Genre::ALL.len());
        // Table 4's maximum observed genre count is 51 (ayeT-Studios).
        assert!(Genre::ALL.len() >= 51);
    }

    #[test]
    fn game_classification() {
        assert!(Genre::GamePuzzle.is_game());
        assert!(Genre::GameStrategy.is_game());
        assert!(!Genre::Finance.is_game());
        assert!(!Genre::FamilyAction.is_game());
        let games = Genre::ALL.iter().filter(|g| g.is_game()).count();
        assert_eq!(games, 17);
    }

    #[test]
    fn play_ids_unique() {
        let mut seen = BTreeSet::new();
        for g in Genre::ALL {
            assert!(seen.insert(g.play_id()));
            assert!(g
                .play_id()
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_'));
        }
    }
}
