//! Deterministic string interning and the columnar containers built
//! on top of it.
//!
//! The analyses of §4–§5 are joins over half a dozen datasets keyed by
//! package name, developer identity and offer description. Owned
//! `String` keys force every join through an allocation and an
//! O(len · log n) comparison chain; interning replaces the key with a
//! dense [`Sym`] (`u32`) so the join paths become array indexing and
//! bitset probes.
//!
//! Determinism contract: a symbol's numeric value is its **first
//! insertion rank** — symbol 0 is the first distinct string ever
//! interned, symbol 1 the second, and so on. The internal hash table
//! is only a *lookup accelerator* (FNV-1a over the bytes, open
//! addressing); it decides how fast a string is found, never which
//! number it gets. Two runs that intern the same strings in the same
//! order therefore agree on every symbol, which is what lets the
//! seeded simulation carry `Sym`s end to end and still print a
//! byte-identical report.

use std::fmt;

/// An interned string: a dense index into an [`Interner`].
///
/// `Sym` is `Copy`, 4 bytes, and orders by insertion rank (not
/// lexicographically) — resolve through the interner and sort the
/// strings wherever output order demands lexicographic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The shard this symbol belongs to — convenience for
    /// [`shard_of`].
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        shard_of(self, shards)
    }
}

/// Deterministic shard assignment for a symbol.
///
/// A **pure function** of `(sym, shards)`: no interner state, no RNG,
/// no global configuration. The sharded world loop relies on this so
/// that the same package lands on the same shard in every run, every
/// process, and every worker count — shard membership is part of the
/// deterministic plan, not of the execution schedule.
///
/// Symbols are dense insertion ranks, so a plain `sym % shards` would
/// stripe correlated neighbours (apps interned back-to-back) across
/// shards in lockstep. A finalizer-style avalanche mix (the murmur3
/// fmix32 constants) decorrelates rank from shard first.
#[inline]
pub fn shard_of(sym: Sym, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = sym.0.wrapping_add(0x9e37_79b9);
    x ^= x >> 16;
    x = x.wrapping_mul(0x85eb_ca6b);
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^= x >> 16;
    x as usize % shards
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Arena-backed deterministic string interner.
///
/// All interned bytes live in one contiguous slab; per-symbol
/// `(offset, len)` pairs live in a parallel offset table, so resolving
/// a [`Sym`] is two array reads and no pointer chasing. The dedup
/// index is a private open-addressing table (FNV-1a, linear probing)
/// that never leaks into symbol numbering — see the module docs for
/// the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Every interned string, concatenated.
    slab: String,
    /// `(byte offset, byte length)` of each symbol, by insertion rank.
    spans: Vec<(u32, u32)>,
    /// Open-addressing dedup index: `slot -> sym index + 1` (0 =
    /// empty). Rebuilt on growth; capacity is always a power of two.
    index: Vec<u32>,
}

/// Content equality: same strings in the same insertion order. The
/// dedup index is deliberately excluded — its capacity depends on the
/// construction path (`new` vs `with_capacity`), not on content.
impl PartialEq for Interner {
    fn eq(&self, other: &Interner) -> bool {
        self.slab == other.slab && self.spans == other.spans
    }
}

impl Eq for Interner {}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// An empty interner with room for `strings` symbols of about
    /// `avg_len` bytes each before the first reallocation.
    pub fn with_capacity(strings: usize, avg_len: usize) -> Interner {
        let mut it = Interner {
            slab: String::with_capacity(strings * avg_len),
            spans: Vec::with_capacity(strings),
            index: Vec::new(),
        };
        it.grow_index((strings * 2).next_power_of_two().max(16));
        it
    }

    /// Interns `s`, returning its symbol. Existing strings return
    /// their original symbol; new strings get the next insertion rank.
    pub fn intern(&mut self, s: &str) -> Sym {
        if self.spans.len() * 2 >= self.index.len() {
            self.grow_index((self.index.len() * 2).max(16));
        }
        let mask = self.index.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.index[slot] {
                0 => break,
                stored => {
                    let sym = Sym(stored - 1);
                    if self.resolve(sym) == s {
                        return sym;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
        let sym = Sym(u32::try_from(self.spans.len()).expect("symbol space overflow"));
        let offset = u32::try_from(self.slab.len()).expect("slab overflow");
        self.slab.push_str(s);
        self.spans.push((offset, s.len() as u32));
        self.index[slot] = sym.0 + 1;
        sym
    }

    /// Looks up `s` without inserting.
    pub fn get(&self, s: &str) -> Option<Sym> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.index[slot] {
                0 => return None,
                stored => {
                    let sym = Sym(stored - 1);
                    if self.resolve(sym) == s {
                        return Some(sym);
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    /// If `sym` did not come from this interner (or a clone sharing
    /// its history).
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        let (off, len) = self.spans[sym.index()];
        &self.slab[off as usize..(off + len) as usize]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total interned bytes (the slab's length).
    pub fn slab_bytes(&self) -> usize {
        self.slab.len()
    }

    /// All symbols in insertion order, with their strings.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> + '_ {
        (0..self.spans.len() as u32).map(move |i| (Sym(i), self.resolve(Sym(i))))
    }

    fn grow_index(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.index = vec![0; capacity];
        let mask = capacity - 1;
        for i in 0..self.spans.len() as u32 {
            let s = self.resolve(Sym(i));
            let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = i + 1;
        }
    }
}

/// A growable bitset over the symbol space — the columnar replacement
/// for `BTreeSet<String>` dedup indices.
///
/// Membership is one word probe; `insert` reports whether the symbol
/// was new (single-probe insert-or-check, no `contains`-then-`insert`
/// double lookup). Iteration yields symbols in ascending numeric
/// (insertion-rank) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymSet {
    words: Vec<u64>,
    len: usize,
}

impl SymSet {
    /// An empty set.
    pub fn new() -> SymSet {
        SymSet::default()
    }

    /// Inserts `sym`; returns true when it was not present.
    pub fn insert(&mut self, sym: Sym) -> bool {
        let (word, bit) = (sym.index() / 64, sym.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, sym: Sym) -> bool {
        self.words
            .get(sym.index() / 64)
            .is_some_and(|w| w & (1 << (sym.index() % 64)) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no symbol is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words backing the set — the memory shape.
    ///
    /// Growth is driven by the highest symbol inserted, not by the
    /// member count: `word_count() == highest_index / 64 + 1`.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Members in ascending symbol order.
    pub fn iter(&self) -> impl Iterator<Item = Sym> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some(Sym((wi * 64) as u32 + bit))
            })
        })
    }
}

impl FromIterator<Sym> for SymSet {
    fn from_iter<I: IntoIterator<Item = Sym>>(iter: I) -> SymSet {
        let mut set = SymSet::new();
        for sym in iter {
            set.insert(sym);
        }
        set
    }
}

/// A dense map over the symbol space — the columnar replacement for
/// `BTreeMap<String, V>`: one `Vec` slot per symbol, no hashing, no
/// tree walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for SymMap<V> {
    fn default() -> SymMap<V> {
        SymMap {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<V> SymMap<V> {
    /// An empty map.
    pub fn new() -> SymMap<V> {
        SymMap::default()
    }

    /// The value for `sym`, if set.
    #[inline]
    pub fn get(&self, sym: Sym) -> Option<&V> {
        self.slots.get(sym.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the value for `sym`, if set.
    #[inline]
    pub fn get_mut(&mut self, sym: Sym) -> Option<&mut V> {
        self.slots.get_mut(sym.index()).and_then(Option::as_mut)
    }

    /// Single-probe entry: the slot for `sym`, inserting
    /// `default()` when vacant.
    pub fn get_or_insert_with(&mut self, sym: Sym, default: impl FnOnce() -> V) -> &mut V {
        if sym.index() >= self.slots.len() {
            self.slots.resize_with(sym.index() + 1, || None);
        }
        let slot = &mut self.slots[sym.index()];
        if slot.is_none() {
            *slot = Some(default());
            self.len += 1;
        }
        slot.as_mut().expect("just filled")
    }

    /// Sets the value for `sym`, returning the previous one.
    pub fn insert(&mut self, sym: Sym, value: V) -> Option<V> {
        if sym.index() >= self.slots.len() {
            self.slots.resize_with(sym.index() + 1, || None);
        }
        let prev = self.slots[sym.index()].replace(value);
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots backing the map — the memory shape.
    ///
    /// Dense maps grow to the highest symbol inserted:
    /// `slot_count() == highest_index + 1` regardless of occupancy.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Occupied `(sym, value)` pairs in ascending symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &V)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (Sym(i as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_is_first_insertion_order() {
        let mut it = Interner::new();
        assert_eq!(it.intern("b"), Sym(0));
        assert_eq!(it.intern("a"), Sym(1));
        assert_eq!(it.intern("c"), Sym(2));
        // Re-interning changes nothing.
        assert_eq!(it.intern("a"), Sym(1));
        assert_eq!(it.intern("b"), Sym(0));
        assert_eq!(it.len(), 3);
        assert_eq!(it.resolve(Sym(0)), "b");
        assert_eq!(it.resolve(Sym(2)), "c");
        assert_eq!(it.get("c"), Some(Sym(2)));
        assert_eq!(it.get("zzz"), None);
    }

    #[test]
    fn survives_index_growth() {
        let mut it = Interner::new();
        let syms: Vec<Sym> = (0..5_000).map(|i| it.intern(&format!("pkg.{i}"))).collect();
        for (i, sym) in syms.iter().enumerate() {
            assert_eq!(sym.index(), i);
            assert_eq!(it.resolve(*sym), format!("pkg.{i}"));
            assert_eq!(it.get(&format!("pkg.{i}")), Some(*sym));
        }
        assert_eq!(it.len(), 5_000);
        assert_eq!(it.slab_bytes(), it.iter().map(|(_, s)| s.len()).sum());
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut it = Interner::new();
        let empty = it.intern("");
        assert_eq!(it.intern(""), empty);
        assert_eq!(it.resolve(empty), "");
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn clone_extends_the_shared_history() {
        let mut base = Interner::new();
        let a = base.intern("com.a");
        let mut fork = base.clone();
        assert_eq!(fork.intern("com.a"), a);
        let b = fork.intern("com.b");
        assert_eq!(b, Sym(1));
        // The original is untouched.
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn symset_single_probe_insert() {
        let mut set = SymSet::new();
        assert!(set.insert(Sym(3)));
        assert!(!set.insert(Sym(3)));
        assert!(set.insert(Sym(130)));
        assert!(set.contains(Sym(3)));
        assert!(!set.contains(Sym(4)));
        assert!(!set.contains(Sym(100_000)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![Sym(3), Sym(130)]);
    }

    #[test]
    fn symset_bitset_growth_at_a_million_syms() {
        let mut set = SymSet::new();
        // Sparse membership across a 1M+ symbol space: the bitset must
        // grow to cover the highest index, one u64 per 64 symbols.
        let top = Sym(1 << 20); // 1_048_576
        assert!(set.insert(top));
        assert_eq!(set.word_count(), top.index() / 64 + 1);
        assert_eq!(set.len(), 1);
        // Dense fill of every 97th symbol up to 1M: len tracks the
        // member count, word_count tracks only the highest index.
        for i in (0..=1_000_000u32).step_by(97) {
            set.insert(Sym(i));
        }
        assert_eq!(set.len(), 1 + 1_000_000 / 97 + 1);
        assert_eq!(set.word_count(), top.index() / 64 + 1);
        assert!(set.contains(Sym(97 * 500)));
        assert!(!set.contains(Sym(97 * 500 + 1)));
        // Iteration order stays ascending through the full range.
        let members: Vec<Sym> = set.iter().collect();
        assert_eq!(members.len(), set.len());
        assert!(members.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*members.last().unwrap(), top);
    }

    #[test]
    fn symmap_dense_shape_at_a_million_syms() {
        let mut map: SymMap<u32> = SymMap::new();
        let top = Sym(1_250_000);
        map.insert(top, 7);
        // One slot per symbol index up to the highest inserted —
        // occupancy does not shrink the dense shape.
        assert_eq!(map.slot_count(), top.index() + 1);
        assert_eq!(map.len(), 1);
        for i in (0..1_250_000u32).step_by(1_000) {
            map.insert(Sym(i), i);
        }
        assert_eq!(map.len(), 1 + 1_250_000 / 1_000);
        assert_eq!(map.slot_count(), top.index() + 1);
        assert_eq!(map.get(Sym(500_000)), Some(&500_000));
        assert!(map.get(Sym(500_001)).is_none());
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Single shard: everything lands on shard 0.
        assert_eq!(shard_of(Sym(0), 1), 0);
        assert_eq!(shard_of(Sym(u32::MAX), 1), 0);
        assert_eq!(shard_of(Sym(42), 0), 0);
        // Every shard receives work for a dense symbol range — the
        // avalanche mix must not collapse insertion ranks onto a few
        // shards.
        for shards in [2usize, 3, 8, 17] {
            let mut counts = vec![0usize; shards];
            for i in 0..10_000u32 {
                let s = shard_of(Sym(i), shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(min > 0, "empty shard at shards={shards}");
            // Loose balance bound: no shard more than 2x another.
            assert!(max < min * 2, "skewed shards={shards}: {counts:?}");
        }
    }

    mod shard_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Shard assignment is a pure function of `(Sym, shard_count)`:
            /// the same pair always yields the same shard, in range, no
            /// matter what other assignments were computed in between or
            /// which interner minted the symbol.
            #[test]
            fn shard_assignment_is_pure(raw in any::<u32>(),
                                        shards in 1usize..64,
                                        noise in prop::collection::vec(any::<u32>(), 0..32)) {
                let first = shard_of(Sym(raw), shards);
                prop_assert!(first < shards);
                // Interleave unrelated assignments — no hidden state may leak.
                for n in noise {
                    let _ = shard_of(Sym(n), shards);
                }
                prop_assert_eq!(first, shard_of(Sym(raw), shards));
                // Symbols with equal ranks from different interners agree:
                // the rank (not the string or the interner) decides.
                let mut a = Interner::new();
                let mut b = Interner::new();
                let sa = a.intern("x");
                b.intern("unrelated");
                let sb = b.intern("x");
                prop_assert_eq!(shard_of(sa, shards), shard_of(Sym(0), shards));
                prop_assert_eq!(shard_of(sb, shards), shard_of(Sym(1), shards));
            }
        }
    }

    #[test]
    fn symmap_dense_ops() {
        let mut map: SymMap<Vec<u32>> = SymMap::new();
        assert!(map.get(Sym(2)).is_none());
        map.get_or_insert_with(Sym(2), Vec::new).push(7);
        map.get_or_insert_with(Sym(2), Vec::new).push(8);
        assert_eq!(map.get(Sym(2)), Some(&vec![7, 8]));
        assert_eq!(map.len(), 1);
        map.insert(Sym(0), vec![1]);
        assert_eq!(
            map.iter().map(|(s, _)| s).collect::<Vec<_>>(),
            vec![Sym(0), Sym(2)]
        );
    }
}
