//! Simulated time.
//!
//! The study plays out on a fixed timeline: the honey-app campaigns run
//! for hours-to-days (§3.2: Fyber and ayeT-Studios deliver within two
//! hours, RankApp takes more than 24), the in-the-wild monitoring spans
//! three months with Play crawls every other day (§4.3.1), and "app
//! age" is measured in days between release and campaign start. All of
//! that is simulated: [`SimTime`] counts seconds since the world epoch
//! and never touches the wall clock, which keeps every experiment
//! reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated timeline, in whole seconds since the
/// world epoch (which the study treats as 2019-03-01 00:00 UTC — the
/// start of the paper's data collection — purely for display).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s, in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The world epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs)
    }

    /// Creates an instant `days` days after the epoch.
    pub const fn from_days(days: u64) -> SimTime {
        SimTime(days * SimDuration::SECS_PER_DAY)
    }

    /// Seconds since epoch.
    pub const fn secs(self) -> u64 {
        self.0
    }

    /// Whole days since epoch (the granularity of the crawler datasets).
    pub const fn days(self) -> u64 {
        self.0 / SimDuration::SECS_PER_DAY
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier`
    /// is actually later (callers compare crawl snapshots that may be
    /// reordered).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at the numeric limit.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    const SECS_PER_DAY: u64 = 86_400;

    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs)
    }

    /// From whole minutes.
    pub const fn from_mins(mins: u64) -> SimDuration {
        SimDuration(mins * 60)
    }

    /// From whole hours.
    pub const fn from_hours(hours: u64) -> SimDuration {
        SimDuration(hours * 3_600)
    }

    /// From whole days.
    pub const fn from_days(days: u64) -> SimDuration {
        SimDuration(days * Self::SECS_PER_DAY)
    }

    /// Length in seconds.
    pub const fn secs(self) -> u64 {
        self.0
    }

    /// Length in whole hours (rounded down).
    pub const fn hours(self) -> u64 {
        self.0 / 3_600
    }

    /// Length in whole days (rounded down).
    pub const fn days(self) -> u64 {
        self.0 / Self::SECS_PER_DAY
    }

    /// Multiplies the span by an integer factor.
    pub const fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    /// Renders as `d<day>+<hh>:<mm>:<ss>`, e.g. `d12+06:30:00`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.days();
        let rem = self.0 % SimDuration::SECS_PER_DAY;
        write!(
            f,
            "d{day}+{:02}:{:02}:{:02}",
            rem / 3_600,
            (rem % 3_600) / 60,
            rem % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SimDuration::SECS_PER_DAY && self.0.is_multiple_of(SimDuration::SECS_PER_DAY) {
            write!(f, "{}d", self.days())
        } else if self.0 >= 3_600 && self.0.is_multiple_of(3_600) {
            write!(f, "{}h", self.hours())
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

/// Constants of the study timeline (Sections 3–4).
pub mod study {
    use super::{SimDuration, SimTime};

    /// Length of the in-the-wild monitoring window ("a period of three
    /// months from March–June 2019", §4.1). We simulate 92 days.
    pub const MONITORING_WINDOW: SimDuration = SimDuration::from_days(92);

    /// Cadence of Play Store profile/top-chart crawls ("periodically
    /// collect this data every other day", §4.3.1).
    pub const CRAWL_CADENCE: SimDuration = SimDuration::from_days(2);

    /// Observation window used to compare baseline apps against
    /// advertised apps ("the average incentivized install campaign
    /// duration", §4.3.1 — 25 days).
    pub const AVG_CAMPAIGN_WINDOW: SimDuration = SimDuration::from_days(25);

    /// Start of the monitoring window on the simulated timeline. The
    /// window starts well after the world epoch so that app release
    /// dates can precede it by years (Table 4: median app ages up to
    /// 854 days at campaign start).
    pub const STUDY_START: SimTime = SimTime::from_days(1500);

    /// End of the monitoring window on the simulated timeline.
    pub const STUDY_END: SimTime = SimTime::from_days(1592);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(6);
        assert_eq!(t.secs(), 3 * 86_400 + 6 * 3_600);
        assert_eq!(t.days(), 3);
        assert_eq!(t - SimTime::from_days(3), SimDuration::from_hours(6));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(20);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(0).to_string(), "d0+00:00:00");
        let t = SimTime::from_days(12) + SimDuration::from_secs(6 * 3600 + 30 * 60);
        assert_eq!(t.to_string(), "d12+06:30:00");
        assert_eq!(SimDuration::from_days(2).to_string(), "2d");
        assert_eq!(SimDuration::from_hours(5).to_string(), "5h");
        assert_eq!(SimDuration::from_secs(61).to_string(), "61s");
    }

    #[test]
    fn study_constants_are_consistent() {
        assert_eq!(
            study::STUDY_END - study::STUDY_START,
            study::MONITORING_WINDOW
        );
        // The crawl cadence must evenly divide the window so snapshot
        // series line up across apps.
        assert_eq!(
            study::MONITORING_WINDOW.days() % study::CRAWL_CADENCE.days(),
            0
        );
        assert!(study::AVG_CAMPAIGN_WINDOW < study::MONITORING_WINDOW);
    }

    #[test]
    fn duration_times() {
        assert_eq!(
            SimDuration::from_days(2).times(3),
            SimDuration::from_days(6)
        );
    }
}
