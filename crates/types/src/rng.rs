//! Deterministic randomness: labelled seed fan-out and the sampling
//! distributions used by the world generators.
//!
//! The whole study derives from one `u64` world seed. Subsystems fork
//! child seeds by *label* ([`SeedFork::fork`]), so adding a new consumer
//! of randomness never perturbs the streams of existing ones — the
//! property that keeps the calibrated tables stable as the codebase
//! grows.
//!
//! Distribution choices mirror the shapes the paper observes:
//! app popularity and payouts are heavy-tailed (log-normal / Zipf),
//! behavioural coin flips are Bernoulli mixtures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled point in the deterministic seed tree.
///
/// ```
/// use iiscope_types::SeedFork;
/// let world = SeedFork::new(42);
/// let a = world.fork("playstore").fork("catalog");
/// let b = world.fork("playstore").fork("catalog");
/// assert_eq!(a.seed(), b.seed());          // same path, same seed
/// assert_ne!(a.seed(), world.fork("iip").seed()); // different path, different seed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedFork(u64);

impl SeedFork {
    /// Root of the seed tree.
    pub fn new(world_seed: u64) -> SeedFork {
        SeedFork(splitmix64(world_seed ^ 0x9E37_79B9_7F4A_7C15))
    }

    /// Derives a child seed for `label`. FNV-1a over the label folded
    /// into the parent seed, finished with splitmix64 for diffusion.
    pub fn fork(&self, label: &str) -> SeedFork {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.0;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SeedFork(splitmix64(h))
    }

    /// Derives a child seed for an indexed entity (e.g. "device #17").
    pub fn fork_idx(&self, label: &str, idx: u64) -> SeedFork {
        SeedFork(splitmix64(self.fork(label).0 ^ splitmix64(idx)))
    }

    /// The raw derived seed.
    pub fn seed(&self) -> u64 {
        self.0
    }

    /// Instantiates a [`StdRng`] at this point of the tree.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }
}

/// splitmix64 finalizer — a cheap, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Samples a log-normal: `exp(N(mu, sigma))`.
///
/// Used for app install counts, payout spreads and app ages — all
/// heavy-tailed in the paper (e.g. Figure 4 spans <1K to >1000M).
pub fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a rank from a Zipf distribution over `{0, .., n-1}` with
/// exponent `s` (> 0), by inverse-CDF over precomputable weights. O(n);
/// for hot paths build a [`ZipfTable`] once instead.
pub fn zipf_once(rng: &mut impl Rng, n: usize, s: f64) -> usize {
    ZipfTable::new(n, s).sample(rng)
}

/// Precomputed Zipf sampler (popularity of apps inside affiliate-app
/// usage lists, offer-selection bias toward high payouts, …).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the cumulative table for `n` ranks and exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> ZipfTable {
        assert!(n > 0, "zipf over empty support");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..len()` (0 is the most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples an index proportionally to `weights`. Returns `None` when
/// `weights` is empty or sums to a non-positive value.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut needle = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if *w <= 0.0 {
            continue;
        }
        needle -= w;
        if needle <= 0.0 {
            return Some(i);
        }
    }
    // Floating-point slop: fall back to the last positive weight.
    weights.iter().rposition(|w| *w > 0.0)
}

/// Bernoulli draw with probability `p` (clamped to [0, 1]).
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Samples an exponential with the given mean (inter-arrival times of
/// installs during a campaign).
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Fisher–Yates shuffle driven by the deterministic RNG.
pub fn shuffle<T>(rng: &mut impl Rng, slice: &mut [T]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

/// Reservoir-samples `k` items out of an iterator, preserving
/// deterministic behaviour for a given RNG state.
pub fn sample_k<T>(rng: &mut impl Rng, iter: impl IntoIterator<Item = T>, k: usize) -> Vec<T> {
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if reservoir.len() < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_is_deterministic_and_label_sensitive() {
        let root = SeedFork::new(7);
        assert_eq!(root.fork("a").seed(), root.fork("a").seed());
        assert_ne!(root.fork("a").seed(), root.fork("b").seed());
        assert_ne!(
            root.fork("a").fork("b").seed(),
            root.fork("b").fork("a").seed()
        );
        assert_ne!(SeedFork::new(7).seed(), SeedFork::new(8).seed());
    }

    #[test]
    fn fork_idx_distinguishes_indices() {
        let root = SeedFork::new(1);
        let s: std::collections::BTreeSet<u64> = (0..100)
            .map(|i| root.fork_idx("device", i).seed())
            .collect();
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = SeedFork::new(3).rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_and_heavy_tailed() {
        let mut rng = SeedFork::new(4).rng();
        let samples: Vec<f64> = (0..10_000)
            .map(|_| log_normal(&mut rng, 2.0, 1.5))
            .collect();
        assert!(samples.iter().all(|x| *x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let med = {
            let mut s = samples;
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(
            mean > med,
            "heavy tail: mean {mean} should exceed median {med}"
        );
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut rng = SeedFork::new(5).rng();
        let table = ZipfTable::new(50, 1.2);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SeedFork::new(6).rng();
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
        assert_eq!(weighted_index(&mut rng, &[]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, -1.0]), None);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeedFork::new(7).rng();
        assert!((0..100).all(|_| chance(&mut rng, 1.1)));
        assert!((0..100).all(|_| !chance(&mut rng, -0.5)));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SeedFork::new(8).rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SeedFork::new(9).rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn sample_k_sizes() {
        let mut rng = SeedFork::new(10).rng();
        assert_eq!(sample_k(&mut rng, 0..10, 20).len(), 10);
        assert_eq!(sample_k(&mut rng, 0..1000, 10).len(), 10);
        let s = sample_k(&mut rng, 0..1000, 10);
        let set: std::collections::BTreeSet<i32> = s.iter().copied().collect();
        assert_eq!(set.len(), 10, "no duplicates from a set source");
    }
}
