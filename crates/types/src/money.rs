//! Exact USD arithmetic in integer micro-dollars.
//!
//! Offer payouts in the study range from $0.02 (RankApp median, Table 4)
//! to multi-dollar purchase offers (Table 3: $2.98 average), and the
//! paper normalizes affiliate-app reward points into dollar amounts
//! (§4.1). Every split in the disbursement chain — developer deposit →
//! IIP cut → affiliate cut → worker payout — must reconcile exactly, so
//! money is represented as a signed integer count of micro-dollars
//! (1 USD = 1_000_000 micro).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A USD amount with micro-dollar resolution.
///
/// ```
/// use iiscope_types::Usd;
/// let payout = Usd::from_cents(52);
/// assert_eq!(payout.to_string(), "$0.52");
/// assert_eq!(payout * 9, Usd::from_cents(468));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Usd(i64);

impl Usd {
    /// Zero dollars.
    pub const ZERO: Usd = Usd(0);
    /// One micro-dollar — the resolution limit.
    pub const MICRO: Usd = Usd(1);

    /// Constructs from micro-dollars (1e-6 USD).
    pub const fn from_micros(micros: i64) -> Usd {
        Usd(micros)
    }

    /// Constructs from whole cents.
    pub const fn from_cents(cents: i64) -> Usd {
        Usd(cents * 10_000)
    }

    /// Constructs from whole dollars.
    pub const fn from_dollars(dollars: i64) -> Usd {
        Usd(dollars * 1_000_000)
    }

    /// Micro-dollar count.
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// Value as floating-point dollars (analysis/reporting only; never
    /// feed the result back into money arithmetic).
    pub fn dollars_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True iff the amount is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Splits the amount into a `percent` share and the exact remainder.
    ///
    /// Used for the payout chain of Figure 1: the IIP keeps a fraction
    /// of the developer's payout and releases the rest to the affiliate
    /// app, which keeps a fraction and releases the rest to the user.
    /// The two parts always sum to `self` exactly (the share rounds
    /// towards zero, the remainder absorbs the rounding).
    pub fn split_percent(self, percent: u8) -> (Usd, Usd) {
        let share = Usd(self.0 * i64::from(percent.min(100)) / 100);
        (share, self - share)
    }

    /// Saturating checked addition (used by account balances that must
    /// not wrap on adversarial inputs).
    pub fn checked_add(self, other: Usd) -> Option<Usd> {
        self.0.checked_add(other.0).map(Usd)
    }

    /// Parses strings like `$0.52`, `0.52`, `$2`, `2.98`.
    ///
    /// This is the inverse of `Usd`'s `Display` output for non-negative
    /// amounts with ≤6 fraction digits and exists because the monitor
    /// pipeline parses payouts out of intercepted offer-wall JSON.
    pub fn parse(s: &str) -> crate::Result<Usd> {
        let t = s.trim();
        let (neg, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t),
        };
        let t = t.strip_prefix('$').unwrap_or(t);
        let bad = || crate::Error::InvalidMoney(s.to_string());
        if t.is_empty() {
            return Err(bad());
        }
        let (int_part, frac_part) = match t.split_once('.') {
            Some((i, f)) => (i, f),
            None => (t, ""),
        };
        if !int_part.chars().all(|c| c.is_ascii_digit())
            || !frac_part.chars().all(|c| c.is_ascii_digit())
            || int_part.is_empty()
            || frac_part.len() > 6
        {
            return Err(bad());
        }
        let int: i64 = int_part.parse().map_err(|_| bad())?;
        let mut frac: i64 = if frac_part.is_empty() {
            0
        } else {
            frac_part.parse().map_err(|_| bad())?
        };
        for _ in frac_part.len()..6 {
            frac *= 10;
        }
        let micros = int
            .checked_mul(1_000_000)
            .and_then(|m| m.checked_add(frac))
            .ok_or_else(bad)?;
        Ok(Usd(if neg { -micros } else { micros }))
    }

    /// Arithmetic mean of a slice, rounding toward zero. Returns
    /// [`Usd::ZERO`] for an empty slice (the tables print `$0.00` when
    /// an offer class is absent).
    pub fn mean(values: &[Usd]) -> Usd {
        if values.is_empty() {
            return Usd::ZERO;
        }
        let total: i128 = values.iter().map(|v| i128::from(v.0)).sum();
        Usd((total / values.len() as i128) as i64)
    }

    /// Median of a slice (lower median for even lengths, matching how
    /// the paper reports "median offer payout" in Table 4).
    pub fn median(values: &[Usd]) -> Usd {
        if values.is_empty() {
            return Usd::ZERO;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) / 2]
    }
}

impl Add for Usd {
    type Output = Usd;
    fn add(self, rhs: Usd) -> Usd {
        Usd(self.0 + rhs.0)
    }
}

impl AddAssign for Usd {
    fn add_assign(&mut self, rhs: Usd) {
        self.0 += rhs.0;
    }
}

impl Sub for Usd {
    type Output = Usd;
    fn sub(self, rhs: Usd) -> Usd {
        Usd(self.0 - rhs.0)
    }
}

impl SubAssign for Usd {
    fn sub_assign(&mut self, rhs: Usd) {
        self.0 -= rhs.0;
    }
}

impl Neg for Usd {
    type Output = Usd;
    fn neg(self) -> Usd {
        Usd(-self.0)
    }
}

impl Mul<i64> for Usd {
    type Output = Usd;
    fn mul(self, rhs: i64) -> Usd {
        Usd(self.0 * rhs)
    }
}

impl Div<i64> for Usd {
    type Output = Usd;
    fn div(self, rhs: i64) -> Usd {
        Usd(self.0 / rhs)
    }
}

impl Sum for Usd {
    fn sum<I: Iterator<Item = Usd>>(iter: I) -> Usd {
        iter.fold(Usd::ZERO, Add::add)
    }
}

impl fmt::Display for Usd {
    /// Renders as `$D.CC` with two decimals (the tables' format); if the
    /// amount has sub-cent precision, extends to as many digits as
    /// needed (up to micro-dollars).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / 1_000_000;
        let micros = abs % 1_000_000;
        if micros.is_multiple_of(10_000) {
            write!(f, "{sign}${dollars}.{:02}", micros / 10_000)
        } else if micros.is_multiple_of(100) {
            write!(f, "{sign}${dollars}.{:04}", micros / 100)
        } else {
            write!(f, "{sign}${dollars}.{micros:06}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_two_decimals() {
        assert_eq!(Usd::from_cents(6).to_string(), "$0.06");
        assert_eq!(Usd::from_cents(298).to_string(), "$2.98");
        assert_eq!(Usd::from_dollars(0).to_string(), "$0.00");
        assert_eq!((-Usd::from_cents(150)).to_string(), "-$1.50");
    }

    #[test]
    fn display_subcent_precision() {
        assert_eq!(Usd::from_micros(1_500).to_string(), "$0.0015");
        assert_eq!(Usd::from_micros(1_501).to_string(), "$0.001501");
    }

    #[test]
    fn parse_round_trips_table_values() {
        for s in ["$0.02", "$0.06", "$0.52", "$2.98", "$1.71", "$0.40"] {
            assert_eq!(Usd::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(Usd::parse("0.52").unwrap(), Usd::from_cents(52));
        assert_eq!(Usd::parse("2").unwrap(), Usd::from_dollars(2));
        assert_eq!(Usd::parse("-$0.10").unwrap(), -Usd::from_cents(10));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "$", "$.5", "1.2345678", "$1,00", "abc", "$-1", "1e6"] {
            assert!(Usd::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn split_percent_reconciles_exactly() {
        let total = Usd::from_micros(1_000_001);
        for pct in 0..=100u8 {
            let (share, rest) = total.split_percent(pct);
            assert_eq!(share + rest, total, "pct={pct}");
            assert!(!share.is_negative() && !rest.is_negative());
        }
    }

    #[test]
    fn split_percent_clamps_above_100() {
        let total = Usd::from_dollars(10);
        let (share, rest) = total.split_percent(200);
        assert_eq!(share, total);
        assert_eq!(rest, Usd::ZERO);
    }

    #[test]
    fn mean_and_median_match_hand_computation() {
        let vals = [
            Usd::from_cents(2),
            Usd::from_cents(5),
            Usd::from_cents(19),
            Usd::from_cents(40),
        ];
        assert_eq!(Usd::mean(&vals), Usd::from_micros(165_000));
        assert_eq!(Usd::median(&vals), Usd::from_cents(5)); // lower median
        assert_eq!(Usd::mean(&[]), Usd::ZERO);
        assert_eq!(Usd::median(&[]), Usd::ZERO);
        assert_eq!(Usd::median(&vals[..3]), Usd::from_cents(5));
    }

    #[test]
    fn sum_and_ops() {
        let total: Usd = [Usd::from_cents(10), Usd::from_cents(15)].into_iter().sum();
        assert_eq!(total, Usd::from_cents(25));
        assert_eq!(total / 5, Usd::from_cents(5));
        assert_eq!(total * 2, Usd::from_cents(50));
        let mut acc = Usd::ZERO;
        acc += Usd::from_cents(7);
        acc -= Usd::from_cents(2);
        assert_eq!(acc, Usd::from_cents(5));
    }
}
