//! Strongly-typed identifiers used across the workspace.
//!
//! The paper joins half a dozen datasets — offer-wall traffic, Play
//! Store profiles, top-chart crawls, honey-app telemetry, Crunchbase —
//! on keys like package names and developer ids. Each key gets its own
//! newtype so the compiler rules out cross-dataset join mistakes.

use std::fmt;

macro_rules! numeric_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

numeric_id!(
    /// Identifier of a mobile app inside the simulated Play Store
    /// catalog. Distinct from [`PackageName`]: the store may (rarely)
    /// recycle a package name, but an `AppId` is forever.
    AppId,
    "app-"
);
numeric_id!(
    /// Identifier of a developer account on the simulated Play Store.
    ///
    /// The paper identifies developers by the Play developer id and
    /// locates them via the mailing address on their store profile.
    DeveloperId,
    "dev-"
);
numeric_id!(
    /// Identifier of an incentivized-install offer as issued by an IIP.
    OfferId,
    "offer-"
);
numeric_id!(
    /// Identifier of an advertising campaign a developer runs on an IIP.
    /// One campaign may publish several offers (e.g. a registration
    /// offer and a purchase offer for the same app).
    CampaignId,
    "camp-"
);
numeric_id!(
    /// Identifier of a physical (simulated) Android device.
    DeviceId,
    "device-"
);
numeric_id!(
    /// Identifier of a human crowd worker (or bot operator) controlling
    /// one or more devices.
    WorkerId,
    "worker-"
);

/// Identifier of an incentivized install platform.
///
/// The study covers exactly seven IIPs (Table 1), so this is a closed
/// enum rather than a numeric id: every analysis in Section 4 is keyed
/// by "which IIP", and exhaustive `match`es keep the tables total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IipId {
    /// fyber.com — vetted.
    Fyber,
    /// offertoro.com — vetted.
    OfferToro,
    /// adscendmedia.com — vetted.
    AdscendMedia,
    /// hangmyads.com — vetted.
    HangMyAds,
    /// adgem.com — vetted.
    AdGem,
    /// ayetstudios.com — unvetted.
    AyetStudios,
    /// rankapp.org — unvetted.
    RankApp,
}

impl IipId {
    /// All seven IIPs of Table 1, in the paper's presentation order.
    pub const ALL: [IipId; 7] = [
        IipId::Fyber,
        IipId::OfferToro,
        IipId::AdscendMedia,
        IipId::HangMyAds,
        IipId::AdGem,
        IipId::AyetStudios,
        IipId::RankApp,
    ];

    /// Whether this IIP has a stringent developer review process
    /// (Table 1's vetted/unvetted split).
    pub fn is_vetted(self) -> bool {
        !matches!(self, IipId::AyetStudios | IipId::RankApp)
    }

    /// Home URL as listed in Table 1.
    pub fn home_url(self) -> &'static str {
        match self {
            IipId::Fyber => "fyber.com",
            IipId::OfferToro => "offertoro.com",
            IipId::AdscendMedia => "adscendmedia.com",
            IipId::HangMyAds => "hangmyads.com",
            IipId::AdGem => "adgem.com",
            IipId::AyetStudios => "ayetstudios.com",
            IipId::RankApp => "rankapp.org",
        }
    }

    /// Marketing name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            IipId::Fyber => "Fyber",
            IipId::OfferToro => "OfferToro",
            IipId::AdscendMedia => "AdscendMedia",
            IipId::HangMyAds => "HangMyAds",
            IipId::AdGem => "AdGem",
            IipId::AyetStudios => "ayeT-Studios",
            IipId::RankApp => "RankApp",
        }
    }

    /// URL-safe lowercase slug — the marketing name lowercased with
    /// punctuation dropped. Used in wall hostnames
    /// (`wall.<slug>.iiscope`) and socket-server routes
    /// (`/wall/<slug>/offers`).
    pub fn slug(self) -> &'static str {
        match self {
            IipId::Fyber => "fyber",
            IipId::OfferToro => "offertoro",
            IipId::AdscendMedia => "adscendmedia",
            IipId::HangMyAds => "hangmyads",
            IipId::AdGem => "adgem",
            IipId::AyetStudios => "ayetstudios",
            IipId::RankApp => "rankapp",
        }
    }

    /// Looks an IIP up by its [`IipId::slug`].
    pub fn from_slug(slug: &str) -> Option<IipId> {
        IipId::ALL.into_iter().find(|iip| iip.slug() == slug)
    }
}

impl fmt::Display for IipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reverse-DNS Android package name, e.g. `com.example.game`.
///
/// Package names uniquely identify apps across every dataset in the
/// study ("Unique apps are identified by their package name", §4.2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageName(String);

impl PackageName {
    /// Creates a package name after validating the reverse-DNS shape:
    /// at least two dot-separated segments, each starting with a letter
    /// and containing only `[a-zA-Z0-9_]`.
    pub fn new(name: impl Into<String>) -> crate::Result<Self> {
        let name = name.into();
        if Self::is_valid(&name) {
            Ok(PackageName(name))
        } else {
            Err(crate::Error::InvalidPackageName(name))
        }
    }

    /// Validation predicate used by [`PackageName::new`].
    pub fn is_valid(name: &str) -> bool {
        let segments: Vec<&str> = name.split('.').collect();
        if segments.len() < 2 {
            return false;
        }
        segments.iter().all(|seg| {
            let mut chars = seg.chars();
            match chars.next() {
                Some(c) if c.is_ascii_alphabetic() => {}
                _ => return false,
            }
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        })
    }

    /// The raw package name string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether the package name contains one of the money-making
    /// keywords the paper uses to spot affiliate apps on worker phones
    /// (§3.2: "names of many apps contain keywords such as 'money',
    /// 'reward', or 'cash'").
    pub fn has_money_keyword(&self) -> bool {
        const KEYWORDS: [&str; 5] = ["money", "reward", "cash", "earn", "rich"];
        let lower = self.0.to_ascii_lowercase();
        KEYWORDS.iter().any(|k| lower.contains(k))
    }
}

impl fmt::Display for PackageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for PackageName {
    type Err = crate::Error;

    fn from_str(s: &str) -> crate::Result<Self> {
        PackageName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_ids_display_with_prefix() {
        assert_eq!(AppId(7).to_string(), "app-7");
        assert_eq!(DeveloperId(0).to_string(), "dev-0");
        assert_eq!(OfferId(42).to_string(), "offer-42");
        assert_eq!(CampaignId(1).to_string(), "camp-1");
        assert_eq!(DeviceId(9).to_string(), "device-9");
        assert_eq!(WorkerId(3).to_string(), "worker-3");
    }

    #[test]
    fn slugs_are_the_punctuation_free_lowercase_names() {
        for iip in IipId::ALL {
            assert_eq!(iip.slug(), iip.name().to_ascii_lowercase().replace('-', ""));
            assert_eq!(IipId::from_slug(iip.slug()), Some(iip));
        }
        assert_eq!(IipId::from_slug("nonsense"), None);
    }

    #[test]
    fn iip_vetting_matches_table1() {
        let vetted: Vec<IipId> = IipId::ALL
            .iter()
            .copied()
            .filter(|i| i.is_vetted())
            .collect();
        assert_eq!(vetted.len(), 5);
        assert!(!IipId::RankApp.is_vetted());
        assert!(!IipId::AyetStudios.is_vetted());
        assert!(IipId::Fyber.is_vetted());
    }

    #[test]
    fn iip_all_is_exhaustive_and_unique() {
        let mut set = std::collections::BTreeSet::new();
        for iip in IipId::ALL {
            assert!(set.insert(iip));
        }
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn package_name_validation() {
        assert!(PackageName::new("com.example.app").is_ok());
        assert!(PackageName::new("eu.gcashapp").is_ok());
        assert!(PackageName::new("proxima.makemoney.android").is_ok());
        assert!(PackageName::new("single").is_err());
        assert!(PackageName::new("").is_err());
        assert!(PackageName::new("com.1bad").is_err());
        assert!(PackageName::new("com..empty").is_err());
        assert!(PackageName::new("com.ok.with_underscore").is_ok());
        assert!(PackageName::new("com.bad-dash").is_err());
    }

    #[test]
    fn money_keywords_match_paper_examples() {
        // §3.2 names three concrete affiliate apps; the keyword
        // heuristic must recognise the ones with money-words.
        assert!(PackageName::new("eu.gcashapp").unwrap().has_money_keyword());
        assert!(PackageName::new("proxima.makemoney.android")
            .unwrap()
            .has_money_keyword());
        assert!(PackageName::new("com.mobvantage.cashforapps")
            .unwrap()
            .has_money_keyword());
        assert!(!PackageName::new("com.ayet.pirate")
            .unwrap()
            .has_money_keyword());
    }

    #[test]
    fn package_name_parses_from_str() {
        let p: PackageName = "com.example.app".parse().unwrap();
        assert_eq!(p.as_str(), "com.example.app");
        assert!("nope".parse::<PackageName>().is_err());
    }
}
