//! The workspace-wide error type.
//!
//! Each subsystem defines richer, local error enums where useful; this
//! type covers the cross-cutting failures that bubble up through the
//! measurement pipeline.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors shared across iiscope crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A string failed [`crate::PackageName`] validation.
    InvalidPackageName(String),
    /// A string failed [`crate::Usd`] parsing.
    InvalidMoney(String),
    /// A lookup by id found nothing (catalog, offer wall, registry…).
    NotFound(String),
    /// An operation violated a protocol or state machine (e.g. paying
    /// out an offer that was never completed).
    InvalidState(String),
    /// A network-level failure from the simulated substrate.
    Network(String),
    /// A wire-format decode failure (JSON, HTTP, TLS records).
    Decode(String),
    /// A policy denial (e.g. an unvetted developer rejected by a vetted
    /// IIP, or the Play Store refusing a publish).
    Denied(String),
    /// A parallel worker panicked; the panic was caught at the fan-out
    /// boundary and surfaced instead of aborting the whole study.
    WorkerPanic(String),
    /// The run was interrupted mid-study (e.g. a simulated process
    /// death from the kill-point injector) and can be resumed.
    Interrupted(String),
}

impl Error {
    /// Short machine-readable kind label, useful in test assertions and
    /// event logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::InvalidPackageName(_) => "invalid_package_name",
            Error::InvalidMoney(_) => "invalid_money",
            Error::NotFound(_) => "not_found",
            Error::InvalidState(_) => "invalid_state",
            Error::Network(_) => "network",
            Error::Decode(_) => "decode",
            Error::Denied(_) => "denied",
            Error::WorkerPanic(_) => "worker_panic",
            Error::Interrupted(_) => "interrupted",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPackageName(s) => write!(f, "invalid package name: {s:?}"),
            Error::InvalidMoney(s) => write!(f, "invalid money literal: {s:?}"),
            Error::NotFound(s) => write!(f, "not found: {s}"),
            Error::InvalidState(s) => write!(f, "invalid state: {s}"),
            Error::Network(s) => write!(f, "network error: {s}"),
            Error::Decode(s) => write!(f, "decode error: {s}"),
            Error::Denied(s) => write!(f, "denied: {s}"),
            Error::WorkerPanic(s) => write!(f, "worker panic: {s}"),
            Error::Interrupted(s) => write!(f, "interrupted: {s}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind() {
        let e = Error::NotFound("app-7".into());
        assert_eq!(e.to_string(), "not found: app-7");
        assert_eq!(e.kind(), "not_found");
        let e = Error::Decode("bad json".into());
        assert_eq!(e.kind(), "decode");
        assert!(e.to_string().contains("bad json"));
        let e = Error::WorkerPanic("index out of bounds".into());
        assert_eq!(e.kind(), "worker_panic");
        assert!(e.to_string().contains("index out of bounds"));
        let e = Error::Interrupted("simulated crash at day 3".into());
        assert_eq!(e.kind(), "interrupted");
        assert!(e.to_string().contains("day 3"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Network("down".into()));
    }
}
