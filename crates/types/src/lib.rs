//! # iiscope-types
//!
//! Foundation crate for the `iiscope` workspace — the reproduction of
//! *"Understanding Incentivized Mobile App Installs on Google Play
//! Store"* (IMC 2020).
//!
//! Everything in the workspace is a deterministic simulation driven by a
//! single world seed, so this crate concentrates the vocabulary shared
//! by every subsystem:
//!
//! * [`ids`] — strongly-typed identifiers (package names, developer ids,
//!   offer ids, device ids, …). Using newtypes instead of raw strings or
//!   integers prevents the classic measurement-pipeline bug of joining
//!   two datasets on the wrong key.
//! * [`money`] — USD amounts in integer micro-dollars. Offer payouts in
//!   the paper go as low as $0.02 and as high as $2.98 averages, and the
//!   disbursement chain (IIP cut → affiliate cut → worker payout) must
//!   add up exactly, so floating point is banned from the money path.
//! * [`time`] — simulated time ([`time::SimTime`], [`time::SimDuration`]).
//!   The paper's study window (March–June 2019, crawls every other day)
//!   is a simulated timeline; wall-clock time never enters the model.
//! * [`country`] / [`genre`] — closed enums for the geographic and
//!   category dimensions reported in Table 4.
//! * [`rng`] — labelled deterministic RNG fan-out plus the handful of
//!   distributions (log-normal, Zipf, Bernoulli mixtures) used by the
//!   population generators.
//! * [`sym`] — deterministic arena-backed string interning
//!   ([`sym::Interner`], [`sym::Sym`]) plus the dense columnar
//!   containers ([`sym::SymSet`], [`sym::SymMap`]) the analytics join
//!   paths run on. Symbol numbers are first-insertion ranks, never
//!   hash-dependent, so interned pipelines stay seed-deterministic.
//! * [`wirestats`] — relaxed process-wide counters for the zero-copy
//!   wire path (buffer reuse, streaming-parse volume); reporting only,
//!   never read by the simulation.
//! * [`rss`] — best-effort peak-RSS sampling (`VmHWM` on Linux) for
//!   the `BENCH_*.json` emitters; telemetry only, never simulation
//!   input.
//! * [`chaosstats`] — the same pattern for the chaos subsystem: fault
//!   injections and graceful-degradation events (retries, give-ups,
//!   abandoned milkings), dumped as `BENCH_chaos.json`.
//! * [`error`] — the shared error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaosstats;
pub mod country;
pub mod error;
pub mod frame;
pub mod genre;
pub mod ids;
pub mod money;
pub mod rng;
pub mod rss;
pub mod servestats;
pub mod sym;
pub mod time;
pub mod wirestats;

pub use country::Country;
pub use error::{Error, Result};
pub use genre::Genre;
pub use ids::{AppId, CampaignId, DeveloperId, DeviceId, IipId, OfferId, PackageName, WorkerId};
pub use money::Usd;
pub use rng::SeedFork;
pub use sym::{shard_of, Interner, Sym, SymMap, SymSet};
pub use time::{SimDuration, SimTime};
