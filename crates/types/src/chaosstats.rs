//! Process-wide chaos/degradation counters.
//!
//! The chaos subsystem injects adversarial faults (bursty loss, outage
//! windows, stalls, truncation, garbage) below the TLS layer and the
//! consumers above it degrade gracefully (retries, give-ups, skipped
//! milkings, partial walls). These counters record how much degradation
//! a run absorbed — the observability half of the chaos harness,
//! surfaced by `repro --timing` as `BENCH_chaos.json`.
//!
//! Like [`crate::wirestats`], they are relaxed write-only atomics:
//! nothing in the simulation ever reads them, so they cannot perturb
//! determinism, and they live in `iiscope-types` so the bottom of the
//! stack (`iiscope-netsim`'s fault injector) can report without
//! depending on the crates above it.

use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed counter.
macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident / $inc:ident / $key:literal;)*) => {
        $( $(#[$doc])* pub static $name: AtomicU64 = AtomicU64::new(0); )*

        $(
            $(#[$doc])*
            #[inline]
            pub fn $inc(n: u64) {
                $name.fetch_add(n, Ordering::Relaxed);
            }
        )*

        /// Snapshot of every counter, in declaration order, as
        /// `(json_key, value)` pairs.
        pub fn snapshot() -> Vec<(&'static str, u64)> {
            vec![$( ($key, $name.load(Ordering::Relaxed)), )*]
        }

        /// Resets every counter to zero (tests and `--timing` runs).
        pub fn reset() {
            $( $name.store(0, Ordering::Relaxed); )*
        }

        /// Restores counters from a checkpoint ledger keyed by the
        /// snapshot keys. Unknown keys are ignored and missing keys
        /// stay at their current value, so ledgers survive counter
        /// additions across versions.
        pub fn restore(ledger: &[(String, u64)]) {
            for (key, value) in ledger {
                match key.as_str() {
                    $( $key => $name.store(*value, Ordering::Relaxed), )*
                    _ => {}
                }
            }
        }
    };
}

counters! {
    /// Deliveries dropped by the memoryless loss coin.
    DROPS_RANDOM / add_drops_random / "drops_random";
    /// Deliveries dropped while a Gilbert–Elliott burst was active.
    DROPS_BURST / add_drops_burst / "drops_burst";
    /// Deliveries dropped inside a scheduled outage window.
    DROPS_OUTAGE / add_drops_outage / "drops_outage";
    /// Deliveries dropped for exceeding the link size limit.
    DROPS_OVERSIZE / add_drops_oversize / "drops_oversize";
    /// Exchanges accepted by the link but never answered (stalls).
    STALLS / add_stalls / "stalls";
    /// Delivered payloads with an injected bit flip.
    CORRUPTIONS / add_corruptions / "corruptions";
    /// Delivered payloads truncated mid-stream.
    TRUNCATIONS / add_truncations / "truncations";
    /// Delivered payloads overwritten with garbage bytes.
    GARBAGE / add_garbage / "garbage_payloads";
    /// HTTP exchanges re-attempted after a transport failure.
    RETRIES / add_retries / "retries";
    /// HTTP exchanges abandoned after the retry policy gave up.
    GIVE_UPS / add_give_ups / "give_ups";
    /// Simulated seconds spent backing off between attempts.
    BACKOFF_SECS / add_backoff_secs / "backoff_secs";
    /// Exchanges abandoned because the per-exchange deadline passed.
    DEADLINE_EXCEEDED / add_deadline_exceeded / "deadline_exceeded";
    /// Offer-wall milking sessions abandoned on network failure.
    MILKS_ABANDONED / add_milks_abandoned / "milks_abandoned";
    /// Play crawls (profile/chart/APK) abandoned on network failure.
    CRAWLS_ABANDONED / add_crawls_abandoned / "crawls_abandoned";
    /// Intercepted offer walls that arrived damaged or incomplete.
    WALLS_PARTIAL / add_walls_partial / "walls_partial";
    /// Telemetry uploads abandoned after retries (collector unreachable).
    UPLOADS_ABANDONED / add_uploads_abandoned / "uploads_abandoned";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_increments_in_order() {
        reset();
        add_drops_random(3);
        add_stalls(2);
        add_uploads_abandoned(5);
        let snap = snapshot();
        assert_eq!(snap[0], ("drops_random", 3));
        assert!(snap.contains(&("stalls", 2)));
        assert_eq!(snap.last().unwrap(), &("uploads_abandoned", 5));
        reset();
        assert!(snapshot().iter().all(|&(_, v)| v == 0));
    }
}
