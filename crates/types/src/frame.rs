//! Durable record framing: the on-disk codec for checkpoint snapshots.
//!
//! A frame file is `MAGIC` followed by a sequence of records and a
//! mandatory END record:
//!
//! ```text
//! [magic 8B] ([type 1B][len u32 LE][crc u32 LE][payload len B])* [END record]
//! ```
//!
//! The CRC-32 (ISO-HDLC, the zlib polynomial) covers the type byte,
//! the length field and the payload, so any single bit-flip anywhere
//! in a record is detected. The END record carries the data-record
//! count; a file torn mid-record fails with a truncation error, and a
//! file torn *between* records (which leaves every remaining record
//! individually valid) fails with [`FrameError::MissingEnd`]. Decoding
//! is total: adversarial bytes produce [`FrameError`], never a panic
//! and never silently wrong data.
//!
//! [`Enc`]/[`Dec`] are the little-endian payload codec used inside
//! records: fixed-width integers, bit-exact `f64` (via `to_bits`), and
//! length-prefixed strings/bytes, all bounds-checked on read.

/// File magic: identifies an iiscope snapshot frame file, revision 01
/// of the *framing* layer (payload schema versions live in records).
pub const MAGIC: [u8; 8] = *b"IISNAP01";

/// Maximum accepted record payload length (1 GiB). A length field
/// beyond this is corruption, not data.
pub const MAX_RECORD: usize = 1 << 30;

const TYPE_DATA: u8 = 0x00;
const TYPE_END: u8 = 0x01;

/// Why a frame file or record payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends inside a record header (torn write).
    TruncatedHeader {
        /// Byte offset of the torn record.
        at: usize,
    },
    /// The file ends inside a record payload (torn write).
    TruncatedPayload {
        /// Byte offset of the torn record.
        at: usize,
        /// Declared payload length.
        want: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Stored CRC does not match the record bytes (bit flip).
    CrcMismatch {
        /// Byte offset of the damaged record.
        at: usize,
        /// CRC stored in the record header.
        want: u32,
        /// CRC computed over the record bytes.
        got: u32,
    },
    /// Record length exceeds [`MAX_RECORD`] (corrupt length field).
    OversizeRecord {
        /// Byte offset of the record.
        at: usize,
        /// The absurd declared length.
        len: u64,
    },
    /// Unknown record type byte.
    BadRecordType {
        /// Byte offset of the record.
        at: usize,
        /// The unknown type byte.
        ty: u8,
    },
    /// The file ended without an END record (trailing records lost).
    MissingEnd,
    /// The END record's data-record count disagrees with the file.
    BadEnd {
        /// Data records actually present before END.
        counted: u64,
        /// Count the END record declares.
        declared: u64,
    },
    /// Bytes follow the END record.
    TrailingBytes {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
    /// A record payload failed structured decoding.
    Codec(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a snapshot frame file (bad magic)"),
            FrameError::TruncatedHeader { at } => {
                write!(
                    f,
                    "torn write: file ends inside a record header at byte {at}"
                )
            }
            FrameError::TruncatedPayload { at, want, have } => write!(
                f,
                "torn write: record at byte {at} declares {want} payload bytes, {have} remain"
            ),
            FrameError::CrcMismatch { at, want, got } => write!(
                f,
                "bit flip: record at byte {at} CRC {got:#010x} != stored {want:#010x}"
            ),
            FrameError::OversizeRecord { at, len } => {
                write!(f, "corrupt length: record at byte {at} claims {len} bytes")
            }
            FrameError::BadRecordType { at, ty } => {
                write!(f, "corrupt record type {ty:#04x} at byte {at}")
            }
            FrameError::MissingEnd => write!(f, "torn write: file ends without an END record"),
            FrameError::BadEnd { counted, declared } => write!(
                f,
                "torn write: {counted} records present, END declares {declared}"
            ),
            FrameError::TrailingBytes { at } => {
                write!(f, "trailing bytes after END record at byte {at}")
            }
            FrameError::Codec(what) => write!(f, "payload decode failed: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (ISO-HDLC / zlib: reflected polynomial `0xEDB88320`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for b in bytes {
        let idx = ((crc ^ u32::from(*b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Builds a frame file in memory. [`FrameWriter::finish`] appends the
/// END record; a file without one never validates.
#[derive(Debug)]
pub struct FrameWriter {
    buf: Vec<u8>,
    records: u64,
}

impl Default for FrameWriter {
    fn default() -> Self {
        FrameWriter::new()
    }
}

impl FrameWriter {
    /// Starts a frame file (writes the magic).
    pub fn new() -> FrameWriter {
        FrameWriter {
            buf: MAGIC.to_vec(),
            records: 0,
        }
    }

    fn push_record(&mut self, ty: u8, payload: &[u8]) {
        let len = payload.len() as u32;
        let mut crc = !0u32;
        for b in std::iter::once(ty)
            .chain(len.to_le_bytes())
            .chain(payload.iter().copied())
        {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ CRC_TABLE[idx];
        }
        self.buf.push(ty);
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&(!crc).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    /// Appends one data record.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`MAX_RECORD`] — a caller bug, not
    /// an input condition.
    pub fn record(&mut self, payload: &[u8]) {
        assert!(payload.len() <= MAX_RECORD, "record exceeds MAX_RECORD");
        self.push_record(TYPE_DATA, payload);
        self.records += 1;
    }

    /// Seals the file with the END record and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let count = self.records;
        self.push_record(TYPE_END, &count.to_le_bytes());
        self.buf
    }
}

/// Streaming reader over a frame file held in memory.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    records: u64,
    done: bool,
}

impl<'a> FrameReader<'a> {
    /// Opens a frame file, checking the magic.
    pub fn new(buf: &'a [u8]) -> Result<FrameReader<'a>, FrameError> {
        if buf.len() < MAGIC.len() || buf[..MAGIC.len()] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        Ok(FrameReader {
            buf,
            pos: MAGIC.len(),
            records: 0,
            done: false,
        })
    }

    /// Returns the next data record payload, `Ok(None)` after a valid
    /// END record at exact end-of-file, or the precise corruption.
    pub fn next_record(&mut self) -> Result<Option<&'a [u8]>, FrameError> {
        if self.done {
            return Ok(None);
        }
        let at = self.pos;
        if at == self.buf.len() {
            return Err(FrameError::MissingEnd);
        }
        let header = 1 + 4 + 4;
        if self.buf.len() - at < header {
            return Err(FrameError::TruncatedHeader { at });
        }
        let ty = self.buf[at];
        let len = u32::from_le_bytes(self.buf[at + 1..at + 5].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(self.buf[at + 5..at + 9].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(FrameError::OversizeRecord {
                at,
                len: len as u64,
            });
        }
        let have = self.buf.len() - at - header;
        if len > have {
            return Err(FrameError::TruncatedPayload {
                at,
                want: len,
                have,
            });
        }
        let payload = &self.buf[at + header..at + header + len];
        let mut crc = !0u32;
        for b in std::iter::once(ty)
            .chain((len as u32).to_le_bytes())
            .chain(payload.iter().copied())
        {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ CRC_TABLE[idx];
        }
        let got = !crc;
        if got != want {
            return Err(FrameError::CrcMismatch { at, want, got });
        }
        self.pos = at + header + len;
        match ty {
            TYPE_DATA => {
                self.records += 1;
                Ok(Some(payload))
            }
            TYPE_END => {
                if payload.len() != 8 {
                    return Err(FrameError::BadEnd {
                        counted: self.records,
                        declared: u64::MAX,
                    });
                }
                let declared = u64::from_le_bytes(payload.try_into().unwrap());
                if declared != self.records {
                    return Err(FrameError::BadEnd {
                        counted: self.records,
                        declared,
                    });
                }
                if self.pos != self.buf.len() {
                    return Err(FrameError::TrailingBytes { at: self.pos });
                }
                self.done = true;
                Ok(None)
            }
            other => Err(FrameError::BadRecordType { at, ty: other }),
        }
    }
}

/// Reads and validates every record of a frame file.
pub fn read_all(buf: &[u8]) -> Result<Vec<&[u8]>, FrameError> {
    let mut reader = FrameReader::new(buf)?;
    let mut out = Vec::new();
    while let Some(payload) = reader.next_record()? {
        out.push(payload);
    }
    Ok(out)
}

/// Little-endian payload encoder for record contents.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Enc {
        self.buf.push(v);
        self
    }

    /// Appends a `bool` as `0`/`1`.
    pub fn bool(&mut self, v: bool) -> &mut Enc {
        self.u8(u8::from(v))
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` bit-exactly (`to_bits`).
    pub fn f64(&mut self, v: f64) -> &mut Enc {
        self.u64(v.to_bits())
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Enc {
        self.bytes_field(v.as_bytes())
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes_field(&mut self, v: &[u8]) -> &mut Enc {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }
}

/// Bounds-checked payload decoder: every accessor is total over
/// arbitrary input, returning [`FrameError::Codec`] instead of
/// panicking or reading out of bounds.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over a record payload.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Codec("field overruns payload"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a strict `bool` (`0` or `1`).
    pub fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::Codec("bool byte not 0/1")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit-exactly (`from_bits`).
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, FrameError> {
        std::str::from_utf8(self.bytes_field()?).map_err(|_| FrameError::Codec("invalid UTF-8"))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes_field(&mut self) -> Result<&'a [u8], FrameError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FrameError::Codec("payload has trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_file() -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.record(b"first record");
        w.record(b"");
        w.record(&[0xFFu8; 300]);
        w.finish()
    }

    #[test]
    fn round_trip() {
        let file = sample_file();
        let records = read_all(&file).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"first record");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], &[0xFFu8; 300][..]);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let file = sample_file();
        for byte in 0..file.len() {
            for bit in 0..8 {
                let mut corrupt = file.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    read_all(&corrupt).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let file = sample_file();
        for cut in 0..file.len() {
            assert!(
                read_all(&file[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn missing_end_record_is_detected() {
        let mut w = FrameWriter::new();
        w.record(b"data");
        // Steal the buffer without finish(): a file torn between
        // records — every record individually valid, END absent.
        let mut torn = MAGIC.to_vec();
        let finished = w.finish();
        torn.extend_from_slice(&finished[MAGIC.len()..finished.len() - (1 + 4 + 4 + 8)]);
        assert_eq!(read_all(&torn), Err(FrameError::MissingEnd));
    }

    #[test]
    fn garbage_decoding_is_total() {
        assert_eq!(read_all(b"short"), Err(FrameError::BadMagic));
        let mut junk = MAGIC.to_vec();
        junk.extend_from_slice(&[0xAB; 37]);
        assert!(read_all(&junk).is_err());
    }

    #[test]
    fn enc_dec_round_trip_and_totality() {
        let mut e = Enc::new();
        e.u8(7)
            .bool(true)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX)
            .i64(-42)
            .f64(std::f64::consts::PI)
            .str("héllo")
            .bytes_field(&[1, 2, 3]);
        let payload = e.into_bytes();
        let mut d = Dec::new(&payload);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes_field().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();

        // Totality: reading past the end errs instead of panicking.
        let mut d = Dec::new(&[0x05, 0x00, 0x00]);
        assert!(d.u64().is_err());
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(d.bytes_field().is_err());
    }
}
