//! Workload generator for the socket server.
//!
//! `repro --serve` exposes a finished world over real TCP;
//! `repro --load` points this harness at it and measures what the
//! serve hot path actually sustains, instead of trusting one-off
//! `BENCH_*.json` snapshots. The harness drives a weighted request
//! mix (wall milks, store profile crawls, APK pulls) through ramped
//! QPS stages over keep-alive connections, in either pacing mode:
//!
//! * **open loop** (`qps > 0`): requests fire on a fixed schedule
//!   regardless of how fast responses come back, and latency is
//!   measured from the *intended* send instant — queueing delay under
//!   overload is charged to the server, not hidden by coordinated
//!   omission;
//! * **closed loop** (`qps = 0`): every connection sends back-to-back,
//!   measuring the throughput ceiling.
//!
//! Per-stage results reduce to the percentile/tally rows of
//! `BENCH_load.json` (shared envelope via [`iiscope_bench::envelope`])
//! and a scalar [`Gate`] that CI compares against the committed
//! `docs/bench_baseline.json` within a tolerance band.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hostile;

use iiscope_serve::stats::{LatencyLog, StatusTally};
use iiscope_types::SeedFork;
use iiscope_wire::{Json, Request, Response};
use rand::Rng;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One ramp stage: hold `qps` for `secs` seconds. `qps = 0` means
/// closed-loop — every connection sends flat-out (the ceiling stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStage {
    /// Target request rate across all connections; 0 = closed loop.
    pub qps: u64,
    /// Stage duration in seconds.
    pub secs: u64,
}

/// One entry of the request mix: a labelled GET target with a weight.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// Short label for reports (`wall:fyber`, `store`, `apk`).
    pub name: String,
    /// Request target (path + query).
    pub target: String,
    /// Relative selection weight (0 entries are never sent).
    pub weight: u32,
}

/// A complete load plan.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Ramp stages, run in order.
    pub stages: Vec<LoadStage>,
    /// Keep-alive connections driving the load.
    pub conns: usize,
    /// Weighted request mix; selection is a pure function of `seed`.
    pub mix: Vec<MixEntry>,
    /// Seed for the per-connection target streams.
    pub seed: u64,
}

/// Measured outcome of one stage.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// The stage as planned.
    pub stage: LoadStage,
    /// Requests that completed (response fully parsed).
    pub done: u64,
    /// Wall-clock seconds the stage actually ran.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub achieved_rps: f64,
    /// Latency percentiles over completed requests, microseconds.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest completed request.
    pub max_us: u64,
    /// Response status tally (client-side books).
    pub tally: StatusTally,
    /// Connections that had to be re-established mid-stage.
    pub reconnects: u64,
}

impl StageResult {
    /// Successful (2xx) responses per second — the overload bench's
    /// honest-client yardstick. Unlike [`StageResult::achieved_rps`],
    /// shed 503s and rejects do not count: a server drowning everyone
    /// in fast 503s has high throughput but zero goodput.
    pub fn goodput_rps(&self) -> f64 {
        self.tally.ok as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// The scalar pair the regression gate compares: the best closed-loop
/// (or overall) throughput and its stage's p99.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Requests per second of the fastest stage.
    pub requests_per_sec: f64,
    /// p99 latency of that same stage, microseconds.
    pub p99_us: u64,
}

/// Read timeout on load connections — a server that stops answering
/// for this long forfeits the request (tallied as `other`).
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Parses a `--load-stages` string: comma-separated `QPSxSECS` pairs,
/// e.g. `200x5,1000x5,0x10` (0 = closed loop).
pub fn parse_stages(s: &str) -> Result<Vec<LoadStage>, String> {
    let mut stages = Vec::new();
    for part in s.split(',') {
        let (qps, secs) = part
            .split_once('x')
            .ok_or_else(|| format!("bad stage {part:?} (want QPSxSECS)"))?;
        let qps: u64 = qps.parse().map_err(|_| format!("bad qps in {part:?}"))?;
        let secs: u64 = secs
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad seconds in {part:?}"))?;
        stages.push(LoadStage { qps, secs });
    }
    if stages.is_empty() {
        return Err("no stages".into());
    }
    Ok(stages)
}

/// Parses a `--load-mix` string of `name=weight` pairs over the three
/// request classes, e.g. `wall=8,store=3,apk=1`. Returns
/// `(wall, store, apk)` weights.
pub fn parse_mix_weights(s: &str) -> Result<(u32, u32, u32), String> {
    let (mut wall, mut store, mut apk) = (0u32, 0u32, 0u32);
    for part in s.split(',') {
        let (name, w) = part
            .split_once('=')
            .ok_or_else(|| format!("bad mix entry {part:?} (want name=weight)"))?;
        let w: u32 = w.parse().map_err(|_| format!("bad weight in {part:?}"))?;
        match name {
            "wall" => wall = w,
            "store" => store = w,
            "apk" => apk = w,
            other => return Err(format!("unknown mix class {other:?} (wall|store|apk)")),
        }
    }
    if wall + store + apk == 0 {
        return Err("mix selects nothing".into());
    }
    Ok((wall, store, apk))
}

/// One keep-alive connection with response reassembly.
struct LoadConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LoadConn {
    fn open(addr: SocketAddr) -> std::io::Result<LoadConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(LoadConn {
            stream,
            buf: Vec::with_capacity(16 * 1024),
        })
    }

    /// Sends one encoded request and reads one full response.
    fn round_trip(&mut self, wire: &[u8]) -> std::io::Result<Response> {
        self.stream.write_all(wire)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((resp, consumed)) = Response::parse(&self.buf)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("{e:?}")))?
            {
                self.buf.drain(..consumed);
                return Ok(resp);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ErrorKind::UnexpectedEof.into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Per-thread stage outcome, merged by [`run`].
struct ThreadResult {
    log: LatencyLog,
    tally: StatusTally,
    done: u64,
    reconnects: u64,
}

/// Probes every mix target once (fresh connection) and returns the
/// first that does not answer 200 — catching a bad mix before the
/// measured stages spend minutes hammering 404s.
pub fn probe(addr: SocketAddr, mix: &[MixEntry]) -> std::io::Result<()> {
    let mut conn = LoadConn::open(addr)?;
    for entry in mix.iter().filter(|e| e.weight > 0) {
        let resp = conn.round_trip(&Request::get(entry.target.clone()).encode())?;
        if resp.status != 200 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "probe {} ({}): status {}",
                    entry.name, entry.target, resp.status
                ),
            ));
        }
    }
    Ok(())
}

/// Runs every stage of the plan against `addr` and returns per-stage
/// results. Connections are established per stage (keep-alive within
/// it); a dropped connection is re-opened and counted.
pub fn run(addr: SocketAddr, spec: &LoadSpec) -> std::io::Result<Vec<StageResult>> {
    let weights: Vec<u32> = spec.mix.iter().map(|e| e.weight).collect();
    let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
    if total_weight == 0 || spec.conns == 0 {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "empty mix or zero connections",
        ));
    }
    // Encode each distinct target once; threads index into the table.
    let wires: Vec<Vec<u8>> = spec
        .mix
        .iter()
        .map(|e| Request::get(e.target.clone()).encode().to_vec())
        .collect();
    let wires = std::sync::Arc::new(wires);
    let weights = std::sync::Arc::new(weights);

    let mut results = Vec::with_capacity(spec.stages.len());
    for (stage_idx, &stage) in spec.stages.iter().enumerate() {
        let mut handles = Vec::with_capacity(spec.conns);
        for conn_idx in 0..spec.conns {
            let wires = std::sync::Arc::clone(&wires);
            let weights = std::sync::Arc::clone(&weights);
            let fork = SeedFork::new(spec.seed)
                .fork_idx("load-stage", stage_idx as u64)
                .fork_idx("conn", conn_idx as u64);
            let conns = spec.conns;
            handles.push(std::thread::spawn(move || {
                drive_conn(addr, stage, conn_idx, conns, &wires, &weights, fork)
            }));
        }
        let mut log = LatencyLog::new();
        let mut tally = StatusTally::new();
        let (mut done, mut reconnects, mut elapsed) = (0u64, 0u64, 0f64);
        for h in handles {
            let (tr, secs) = h.join().expect("load thread panicked")?;
            log.merge(tr.log);
            tally.merge(tr.tally);
            done += tr.done;
            reconnects += tr.reconnects;
            elapsed = elapsed.max(secs);
        }
        results.push(StageResult {
            stage,
            done,
            elapsed_secs: elapsed,
            achieved_rps: done as f64 / elapsed.max(1e-9),
            p50_us: log.percentile_us(50.0),
            p90_us: log.percentile_us(90.0),
            p99_us: log.percentile_us(99.0),
            max_us: log.percentile_us(100.0),
            tally,
            reconnects,
        });
    }
    Ok(results)
}

/// One connection's share of one stage.
#[allow(clippy::too_many_arguments)]
fn drive_conn(
    addr: SocketAddr,
    stage: LoadStage,
    conn_idx: usize,
    conns: usize,
    wires: &[Vec<u8>],
    weights: &[u32],
    fork: SeedFork,
) -> std::io::Result<(ThreadResult, f64)> {
    let mut rng = fork.rng();
    let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
    let pick = |rng: &mut rand::rngs::StdRng| -> usize {
        let mut roll = rng.gen_range(0..total_weight);
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u64;
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    };

    let mut conn = LoadConn::open(addr)?;
    let mut tr = ThreadResult {
        log: LatencyLog::new(),
        tally: StatusTally::new(),
        done: 0,
        reconnects: 0,
    };
    let start = Instant::now();
    let deadline = start + Duration::from_secs(stage.secs);
    // Open loop: this connection owns the global request slots
    // `conn_idx, conn_idx + conns, conn_idx + 2*conns, …`, each due at
    // `start + slot/qps`.
    let mut slot = conn_idx as u64;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // `checked_div` is None exactly when qps = 0: closed loop.
        let intended = match slot.saturating_mul(1_000_000_000).checked_div(stage.qps) {
            Some(ns) => {
                let due = start + Duration::from_nanos(ns);
                if due >= deadline {
                    break;
                }
                if due > now {
                    std::thread::sleep(due - now);
                }
                slot += conns as u64;
                due
            }
            None => now,
        };
        let wire = &wires[pick(&mut rng)];
        match conn.round_trip(wire) {
            Ok(resp) => {
                tr.done += 1;
                tr.tally.record(resp.status);
                tr.log
                    .record(intended.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            Err(_) => {
                // Connection lost (server drop, timeout): record the
                // failure and re-establish for the next slot.
                tr.tally.record(599);
                tr.reconnects += 1;
                conn = LoadConn::open(addr)?;
            }
        }
    }
    Ok((tr, start.elapsed().as_secs_f64()))
}

/// The gate pair: the stage with the highest achieved throughput.
pub fn gate(results: &[StageResult]) -> Option<Gate> {
    results
        .iter()
        .max_by(|a, b| a.achieved_rps.total_cmp(&b.achieved_rps))
        .map(|r| Gate {
            // Rounded to the JSON's one-decimal precision so an
            // emitted gate round-trips exactly through
            // `parse_baseline` (a half-up emission must not outrank
            // the value it was printed from).
            requests_per_sec: (r.achieved_rps * 10.0).round() / 10.0,
            p99_us: r.p99_us,
        })
}

/// Renders `BENCH_load.json`: the shared envelope, the plan, one row
/// per stage, and the gate pair the baseline comparison reads back.
pub fn bench_load_json(
    scale: &str,
    seed: u64,
    parallelism: usize,
    cache_enabled: bool,
    spec: &LoadSpec,
    results: &[StageResult],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallelism));
    s.push_str(&format!("  \"cache\": {cache_enabled},\n"));
    s.push_str(&format!("  \"conns\": {},\n", spec.conns));
    s.push_str("  \"mix\": [\n");
    for (i, e) in spec.mix.iter().enumerate() {
        let comma = if i + 1 < spec.mix.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"weight\": {}}}{comma}\n",
            e.name, e.weight
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"stages\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"qps_target\": {}, \"secs\": {}, \"done\": {}, \
             \"requests_per_sec\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \
             \"p99_us\": {}, \"max_us\": {}, \"reconnects\": {}",
            r.stage.qps,
            r.stage.secs,
            r.done,
            r.achieved_rps,
            r.p50_us,
            r.p90_us,
            r.p99_us,
            r.max_us,
            r.reconnects
        ));
        for (key, value) in r.tally.fields() {
            s.push_str(&format!(", \"{key}\": {value}"));
        }
        s.push_str(&format!("}}{comma}\n"));
    }
    s.push_str("  ],\n");
    match gate(results) {
        Some(g) => s.push_str(&format!(
            "  \"gate\": {{\"requests_per_sec\": {:.1}, \"p99_us\": {}}}\n",
            g.requests_per_sec, g.p99_us
        )),
        None => s.push_str("  \"gate\": null\n"),
    }
    s.push_str("}\n");
    s
}

/// Reads the gate pair out of a committed baseline (any JSON object
/// with a `gate` member in [`bench_load_json`]'s shape).
pub fn parse_baseline(json: &str) -> Result<Gate, String> {
    let doc = Json::parse(json).map_err(|e| format!("baseline parse: {e:?}"))?;
    let gate = doc.get("gate").ok_or("baseline has no \"gate\"")?;
    let rps = gate
        .get("requests_per_sec")
        .and_then(Json::as_f64)
        .ok_or("gate.requests_per_sec missing")?;
    let p99 = gate
        .get("p99_us")
        .and_then(Json::as_i64)
        .filter(|&v| v >= 0)
        .ok_or("gate.p99_us missing")?;
    Ok(Gate {
        requests_per_sec: rps,
        p99_us: p99 as u64,
    })
}

/// Compares a measured gate against the baseline within a tolerance
/// band: throughput may not regress more than `tolerance_pct` below
/// the baseline, p99 not more than `tolerance_pct` above. Returns the
/// human-readable verdict, `Err` on regression.
pub fn check_against_baseline(
    measured: &Gate,
    baseline: &Gate,
    tolerance_pct: f64,
) -> Result<String, String> {
    let rps_floor = baseline.requests_per_sec * (1.0 - tolerance_pct / 100.0);
    let p99_ceiling = baseline.p99_us as f64 * (1.0 + tolerance_pct / 100.0);
    let verdict = format!(
        "throughput {:.0} req/s vs baseline {:.0} (floor {:.0}); \
         p99 {}us vs baseline {}us (ceiling {:.0}us)",
        measured.requests_per_sec,
        baseline.requests_per_sec,
        rps_floor,
        measured.p99_us,
        baseline.p99_us,
        p99_ceiling
    );
    if measured.requests_per_sec < rps_floor {
        return Err(format!("throughput regression: {verdict}"));
    }
    if (measured.p99_us as f64) > p99_ceiling {
        return Err(format!("latency regression: {verdict}"));
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_string_round_trips() {
        assert_eq!(
            parse_stages("200x5,1000x5,0x10").unwrap(),
            vec![
                LoadStage { qps: 200, secs: 5 },
                LoadStage { qps: 1000, secs: 5 },
                LoadStage { qps: 0, secs: 10 },
            ]
        );
        assert!(parse_stages("").is_err());
        assert!(parse_stages("200").is_err());
        assert!(parse_stages("200x0").is_err());
        assert!(parse_stages("x5").is_err());
    }

    #[test]
    fn mix_weights_parse_and_reject_unknown_classes() {
        assert_eq!(
            parse_mix_weights("wall=8,store=3,apk=1").unwrap(),
            (8, 3, 1)
        );
        assert_eq!(parse_mix_weights("wall=1").unwrap(), (1, 0, 0));
        assert!(parse_mix_weights("walls=1").is_err());
        assert!(parse_mix_weights("wall=0").is_err());
        assert!(parse_mix_weights("wall").is_err());
    }

    #[test]
    fn gate_picks_the_fastest_stage() {
        let mk = |rps: f64, p99: u64| StageResult {
            stage: LoadStage { qps: 0, secs: 1 },
            done: 10,
            elapsed_secs: 1.0,
            achieved_rps: rps,
            p50_us: 1,
            p90_us: 2,
            p99_us: p99,
            max_us: p99,
            tally: StatusTally::new(),
            reconnects: 0,
        };
        let g = gate(&[mk(100.0, 9), mk(300.0, 17), mk(200.0, 5)]).unwrap();
        assert!((g.requests_per_sec - 300.0).abs() < 1e-9);
        assert_eq!(g.p99_us, 17);
        assert!(gate(&[]).is_none());
    }

    #[test]
    fn baseline_json_round_trips_through_the_gate() {
        let spec = LoadSpec {
            stages: vec![LoadStage { qps: 0, secs: 1 }],
            conns: 2,
            mix: vec![MixEntry {
                name: "wall:fyber".into(),
                target: "/wall/fyber/offers?affiliate=a".into(),
                weight: 1,
            }],
            seed: 42,
        };
        let results = vec![StageResult {
            stage: LoadStage { qps: 0, secs: 1 },
            done: 1234,
            elapsed_secs: 1.0,
            achieved_rps: 1234.0,
            p50_us: 100,
            p90_us: 200,
            p99_us: 300,
            max_us: 400,
            tally: {
                let mut t = StatusTally::new();
                t.record(200);
                t
            },
            reconnects: 0,
        }];
        let json = bench_load_json("small", 42, 1, true, &spec, &results);
        let g = parse_baseline(&json).unwrap();
        assert!((g.requests_per_sec - 1234.0).abs() < 1e-9);
        assert_eq!(g.p99_us, 300);
        // The stage rows carry the tally fields, sheds included.
        assert!(json.contains("\"rejects_431\": 0"));
        assert!(json.contains("\"sheds_503\": 0"));
        assert!(json.contains("\"ok\": 1"));
    }

    #[test]
    fn goodput_counts_only_successes() {
        let mut tally = StatusTally::new();
        for s in [200, 200, 200, 503, 503, 599] {
            tally.record(s);
        }
        let r = StageResult {
            stage: LoadStage { qps: 0, secs: 2 },
            done: 6,
            elapsed_secs: 2.0,
            achieved_rps: 3.0,
            p50_us: 1,
            p90_us: 1,
            p99_us: 1,
            max_us: 1,
            tally,
            reconnects: 1,
        };
        // 3 oks over 2s; the sheds and the dropped conn don't count.
        assert!((r.goodput_rps() - 1.5).abs() < 1e-9);
        assert_eq!(r.tally.errors(), 1); // only the 599
    }

    #[test]
    fn tolerance_band_cuts_both_ways() {
        let base = Gate {
            requests_per_sec: 1000.0,
            p99_us: 1000,
        };
        let ok = Gate {
            requests_per_sec: 950.0,
            p99_us: 1050,
        };
        assert!(check_against_baseline(&ok, &base, 10.0).is_ok());
        let slow = Gate {
            requests_per_sec: 850.0,
            p99_us: 1000,
        };
        assert!(check_against_baseline(&slow, &base, 10.0)
            .unwrap_err()
            .contains("throughput regression"));
        let laggy = Gate {
            requests_per_sec: 1000.0,
            p99_us: 1500,
        };
        assert!(check_against_baseline(&laggy, &base, 10.0)
            .unwrap_err()
            .contains("latency regression"));
        // Faster-than-baseline always passes.
        let fast = Gate {
            requests_per_sec: 5000.0,
            p99_us: 10,
        };
        assert!(check_against_baseline(&fast, &base, 0.0).is_ok());
    }
}
