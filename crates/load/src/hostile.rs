//! Deterministic misbehaving-client mix for the overload bench.
//!
//! The degradation soak answers one question: when a fraction of the
//! traffic is hostile — aborting mid-response, dripping bytes,
//! squatting on connections, flooding oversized junk — do the honest
//! clients measured by [`crate::run`] keep their goodput and latency?
//! This module supplies the hostile half. Every client thread derives
//! its behavior from a [`SeedFork`] lineage keyed by kind and index,
//! the same scheme the chaos plans use, so a given `(seed, plan)`
//! replays the identical byte schedule run over run.
//!
//! Four client kinds, mirroring the fault taxonomy the server's
//! overload layer is built to absorb (DESIGN.md §15):
//!
//! * **aborters** — send a complete valid request, then drop the
//!   socket without reading the response; the server's write or next
//!   read hits a reset/broken pipe (`read_resets` territory).
//! * **slowloris** — drip a valid request one byte at a time; each
//!   byte resets the server's idle clock, so only the deadline budget
//!   (408) or the idle timeout kills them.
//! * **idlers** — connect and send nothing, holding a connection slot
//!   until the server's idle timeout reclaims it.
//! * **flooders** — send an oversized header block in a loop, eating
//!   431 rejects until the server closes the connection.
//!
//! All kinds reconnect and repeat until [`HostileMix::stop`], so the
//! pressure is continuous across the honest stage, not a one-shot
//! burst at its front edge.

use iiscope_types::SeedFork;
use iiscope_wire::Request;
use rand::Rng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many of each client kind to run, and how they behave.
#[derive(Debug, Clone)]
pub struct HostilePlan {
    /// Threads that send a full request and drop the socket unread.
    pub aborters: usize,
    /// Threads that drip request bytes one at a time.
    pub slowloris: usize,
    /// Threads that connect and go silent.
    pub idlers: usize,
    /// Threads that send oversized header blocks.
    pub flooders: usize,
    /// Milliseconds between dripped bytes.
    pub drip_ms: u64,
    /// Seed for the per-thread behavior streams.
    pub seed: u64,
    /// Valid GET targets the aborters and slowloris draw from.
    pub targets: Vec<String>,
}

impl HostilePlan {
    /// Total hostile threads the plan launches.
    pub fn clients(&self) -> usize {
        self.aborters + self.slowloris + self.idlers + self.flooders
    }
}

/// What the hostile clients observed, merged across threads. These are
/// the attacker's books — the soak cross-checks them against the
/// server's `servestats` side.
#[derive(Debug, Default, Clone, Copy)]
pub struct HostileStats {
    /// Requests sent whole and abandoned unread.
    pub aborts: u64,
    /// Individual bytes dripped by slowloris clients.
    pub drip_bytes: u64,
    /// Silent connections held to server close or stop.
    pub idle_sessions: u64,
    /// Oversized header blocks sent.
    pub floods: u64,
    /// 503 sheds read back by hostile clients (aborters that did read).
    pub denied_503: u64,
    /// Times the server closed a hostile connection (EOF, reset, or
    /// write failure) — evidence it is reclaiming, not leaking, slots.
    pub server_closes: u64,
}

impl HostileStats {
    /// Absorbs another thread's stats.
    pub fn merge(&mut self, other: HostileStats) {
        self.aborts += other.aborts;
        self.drip_bytes += other.drip_bytes;
        self.idle_sessions += other.idle_sessions;
        self.floods += other.floods;
        self.denied_503 += other.denied_503;
        self.server_closes += other.server_closes;
    }
}

/// One hostile client body: runs until the stop flag, returns books.
type ClientBody = fn(SocketAddr, &HostilePlan, SeedFork, &AtomicBool) -> HostileStats;

/// A running hostile mix: launched threads plus the stop flag.
pub struct HostileMix {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<HostileStats>>,
}

impl HostileMix {
    /// Launches every client in the plan against `addr`. Threads run
    /// until [`HostileMix::stop`]; individual connection failures are
    /// absorbed (the server closing on us is the expected outcome).
    pub fn launch(addr: SocketAddr, plan: &HostilePlan) -> HostileMix {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(plan.clients());
        let kinds: [(&str, usize, ClientBody); 4] = [
            ("hostile-abort", plan.aborters, run_aborter),
            ("hostile-drip", plan.slowloris, run_slowloris),
            ("hostile-idle", plan.idlers, run_idler),
            ("hostile-flood", plan.flooders, run_flooder),
        ];
        for (label, count, body) in kinds {
            for i in 0..count {
                let fork = SeedFork::new(plan.seed).fork_idx(label, i as u64);
                let plan = plan.clone();
                let stop = Arc::clone(&stop);
                handles.push(std::thread::spawn(move || body(addr, &plan, fork, &stop)));
            }
        }
        HostileMix { stop, handles }
    }

    /// Signals every client to wind down and returns the merged books.
    pub fn stop(self) -> HostileStats {
        self.stop.store(true, Ordering::SeqCst);
        let mut total = HostileStats::default();
        for h in self.handles {
            if let Ok(stats) = h.join() {
                total.merge(stats);
            }
        }
        total
    }
}

/// Short poll so stopped threads exit promptly mid-wait.
const POLL: Duration = Duration::from_millis(20);

fn connect(addr: SocketAddr) -> Option<TcpStream> {
    let s = TcpStream::connect(addr).ok()?;
    s.set_nodelay(true).ok()?;
    s.set_read_timeout(Some(POLL)).ok()?;
    Some(s)
}

fn pick_wire(plan: &HostilePlan, rng: &mut rand::rngs::StdRng) -> Vec<u8> {
    let t = &plan.targets[rng.gen_range(0..plan.targets.len())];
    Request::get(t.clone()).encode().to_vec()
}

/// Sends one whole request, sometimes reads a little, always drops the
/// socket before draining the response.
fn run_aborter(
    addr: SocketAddr,
    plan: &HostilePlan,
    fork: SeedFork,
    stop: &AtomicBool,
) -> HostileStats {
    let mut rng = fork.rng();
    let mut st = HostileStats::default();
    while !stop.load(Ordering::Relaxed) {
        let Some(mut conn) = connect(addr) else {
            std::thread::sleep(POLL);
            continue;
        };
        let wire = pick_wire(plan, &mut rng);
        if conn.write_all(&wire).is_err() {
            st.server_closes += 1;
            continue;
        }
        st.aborts += 1;
        // Half the time, peek at the status line before vanishing —
        // exercises the server's mid-write abort path as well as the
        // never-read one.
        if rng.gen_bool(0.5) {
            let mut head = [0u8; 64];
            match conn.read(&mut head) {
                Ok(n) if n > 0 => {
                    if head[..n].windows(3).any(|w| w == b"503") {
                        st.denied_503 += 1;
                    }
                }
                Ok(_) => st.server_closes += 1,
                Err(_) => {}
            }
        }
        drop(conn);
        std::thread::sleep(Duration::from_millis(rng.gen_range(1..10)));
    }
    st
}

/// Drips a valid request one byte per `drip_ms`, forever renewing the
/// server's idle clock — only a deadline budget stops these early.
fn run_slowloris(
    addr: SocketAddr,
    plan: &HostilePlan,
    fork: SeedFork,
    stop: &AtomicBool,
) -> HostileStats {
    let mut rng = fork.rng();
    let mut st = HostileStats::default();
    while !stop.load(Ordering::Relaxed) {
        let Some(mut conn) = connect(addr) else {
            std::thread::sleep(POLL);
            continue;
        };
        let wire = pick_wire(plan, &mut rng);
        let mut closed = false;
        for &b in &wire {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if conn.write_all(&[b]).is_err() {
                closed = true;
                break;
            }
            st.drip_bytes += 1;
            std::thread::sleep(Duration::from_millis(plan.drip_ms));
        }
        // Whatever the server answered (408, 503, a real response), we
        // only care whether it hung up on us.
        if !closed {
            let mut sink = [0u8; 256];
            loop {
                match conn.read(&mut sink) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
        }
        if closed {
            st.server_closes += 1;
        }
    }
    st
}

/// Connects and says nothing until the server hangs up or we stop.
fn run_idler(
    addr: SocketAddr,
    _plan: &HostilePlan,
    _fork: SeedFork,
    stop: &AtomicBool,
) -> HostileStats {
    let mut st = HostileStats::default();
    while !stop.load(Ordering::Relaxed) {
        let Some(mut conn) = connect(addr) else {
            std::thread::sleep(POLL);
            continue;
        };
        st.idle_sessions += 1;
        let mut sink = [0u8; 64];
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match conn.read(&mut sink) {
                // EOF or hard error: the server reclaimed the slot.
                Ok(0) => {
                    st.server_closes += 1;
                    break;
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => {
                    st.server_closes += 1;
                    break;
                }
            }
        }
    }
    st
}

/// Sends a single oversized header block per connection and watches
/// the 431-then-close choreography.
fn run_flooder(
    addr: SocketAddr,
    _plan: &HostilePlan,
    fork: SeedFork,
    stop: &AtomicBool,
) -> HostileStats {
    let mut rng = fork.rng();
    let mut st = HostileStats::default();
    // Far past any header cap; the filler byte varies per connection
    // so schedules differ across seeds without changing the size.
    const FLOOD: usize = 64 * 1024;
    while !stop.load(Ordering::Relaxed) {
        let Some(mut conn) = connect(addr) else {
            std::thread::sleep(POLL);
            continue;
        };
        let filler = b'a' + rng.gen_range(0..26u8);
        let mut junk = Vec::with_capacity(FLOOD + 64);
        junk.extend_from_slice(b"GET / HTTP/1.1\r\nX-Flood: ");
        junk.resize(junk.len() + FLOOD, filler);
        junk.extend_from_slice(b"\r\n\r\n");
        st.floods += 1;
        if conn.write_all(&junk).is_err() {
            st.server_closes += 1;
            continue;
        }
        let mut sink = [0u8; 1024];
        loop {
            match conn.read(&mut sink) {
                Ok(0) => {
                    st.server_closes += 1;
                    break;
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(_) => {
                    st.server_closes += 1;
                    break;
                }
            }
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_counts_and_stats_merge() {
        let plan = HostilePlan {
            aborters: 2,
            slowloris: 3,
            idlers: 1,
            flooders: 4,
            drip_ms: 5,
            seed: 42,
            targets: vec!["/healthz".into()],
        };
        assert_eq!(plan.clients(), 10);
        let mut a = HostileStats {
            aborts: 1,
            drip_bytes: 10,
            idle_sessions: 2,
            floods: 3,
            denied_503: 1,
            server_closes: 4,
        };
        a.merge(HostileStats {
            aborts: 1,
            drip_bytes: 5,
            idle_sessions: 0,
            floods: 1,
            denied_503: 0,
            server_closes: 2,
        });
        assert_eq!(a.aborts, 2);
        assert_eq!(a.drip_bytes, 15);
        assert_eq!(a.floods, 4);
        assert_eq!(a.server_closes, 6);
    }
}
