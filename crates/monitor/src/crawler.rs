//! The Play Store crawler of §4.3.
//!
//! "We crawl Google Play Store profiles of apps to collect their
//! install counts. We also crawl Google Play Store 'top charts' …
//! We periodically collect this data every other day from March 2019
//! to June 2019." The crawler runs from the researchers' own machine
//! (no proxy, genuine trust roots) against the store frontend and
//! returns typed snapshots; APK downloads feed the §4.3.2 static
//! analysis.

use bytes::Bytes;
use iiscope_netsim::{HostAddr, Network};
use iiscope_playstore::ChartKind;
use iiscope_types::{Result, SeedFork, SimTime};
use iiscope_wire::tls::TrustStore;
use iiscope_wire::{HttpClient, Json, RetryPolicy};

/// One crawl of one app profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Crawl day (simulated).
    pub day: u64,
    /// Package name.
    pub package: String,
    /// Title.
    pub title: String,
    /// Play genre id.
    pub genre_id: String,
    /// Release day on the simulated timeline.
    pub released_day: u64,
    /// Public lower-bound install count.
    pub min_installs: u64,
    /// Developer id.
    pub developer_id: u64,
    /// Developer name.
    pub developer_name: String,
    /// Developer country code.
    pub developer_country: String,
    /// Developer contact email.
    pub developer_email: String,
    /// Developer website (empty when not listed).
    pub developer_website: String,
    /// Average star rating shown on the profile (0.0 when unrated).
    pub rating: f64,
    /// Number of ratings behind the average.
    pub rating_count: u64,
}

/// One crawl of one top chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChartSnapshot {
    /// Crawl day.
    pub day: u64,
    /// Chart id.
    pub chart: &'static str,
    /// `(package, rank)` entries, rank ascending.
    pub entries: Vec<(String, usize)>,
}

/// The crawler client.
pub struct Crawler {
    client: HttpClient,
    play_host: String,
}

impl Crawler {
    /// Creates a crawler egressing from `from` with genuine `roots`.
    pub fn new(
        net: Network,
        from: HostAddr,
        roots: TrustStore,
        play_host: impl Into<String>,
        seed: SeedFork,
    ) -> Crawler {
        Crawler {
            client: HttpClient::new(net, from, roots, seed)
                .with_retry_policy(RetryPolicy::exponential(4)),
            play_host: play_host.into(),
        }
    }

    /// Captures the crawler's mutable state (the underlying HTTP
    /// client's RNG position and connection lineage) for checkpointing.
    pub fn checkpoint(&self) -> iiscope_wire::ClientState {
        self.client.checkpoint()
    }

    /// Restores state captured by [`Crawler::checkpoint`] onto a
    /// crawler rebuilt with the same seed and configuration.
    pub fn restore(&mut self, state: &iiscope_wire::ClientState) {
        self.client.restore(state);
    }

    /// Crawls one profile. `Ok(None)` when the app is not listed
    /// (404), which the dataset records as a gap.
    pub fn profile(&mut self, package: &str, now: SimTime) -> Result<Option<ProfileSnapshot>> {
        let url = format!("https://{}/store/apps/details?id={package}", self.play_host);
        let resp = self.client.get(&url)?;
        if resp.status == 404 {
            return Ok(None);
        }
        if !resp.is_success() {
            return Err(iiscope_types::Error::Network(format!(
                "profile crawl got {}",
                resp.status
            )));
        }
        let j = resp.body_json()?;
        let dev = j
            .get("developer")
            .ok_or_else(|| iiscope_types::Error::Decode("profile missing developer".into()))?;
        let s = |v: Option<&Json>| -> String {
            v.and_then(Json::as_str).unwrap_or_default().to_string()
        };
        Ok(Some(ProfileSnapshot {
            day: now.days(),
            package: s(j.get("package")),
            title: s(j.get("title")),
            genre_id: s(j.get("genre")),
            released_day: j.get("released_day").and_then(Json::as_i64).unwrap_or(0) as u64,
            min_installs: j.get("min_installs").and_then(Json::as_i64).unwrap_or(0) as u64,
            developer_id: dev.get("id").and_then(Json::as_i64).unwrap_or(0) as u64,
            developer_name: s(dev.get("name")),
            developer_country: s(dev.get("country")),
            developer_email: s(dev.get("email")),
            developer_website: s(dev.get("website")),
            rating: j.get("rating").and_then(Json::as_f64).unwrap_or(0.0),
            rating_count: j.get("rating_count").and_then(Json::as_i64).unwrap_or(0) as u64,
        }))
    }

    /// Crawls one top chart.
    pub fn chart(&mut self, kind: ChartKind, n: usize, now: SimTime) -> Result<ChartSnapshot> {
        let url = format!(
            "https://{}/store/charts?chart={}&n={n}",
            self.play_host,
            kind.id()
        );
        let resp = self.client.get(&url)?;
        let j = resp.body_json()?;
        let entries = j
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| iiscope_types::Error::Decode("chart missing entries".into()))?
            .iter()
            .filter_map(|e| {
                Some((
                    e.get("package")?.as_str()?.to_string(),
                    e.get("rank")?.as_i64()? as usize,
                ))
            })
            .collect();
        Ok(ChartSnapshot {
            day: now.days(),
            chart: kind.id(),
            entries,
        })
    }

    /// Downloads an APK for static analysis. The returned bytes are a
    /// refcounted view of the response slab, not a copy.
    pub fn apk(&mut self, package: &str) -> Result<Option<Bytes>> {
        let url = format!("https://{}/apk?id={package}", self.play_host);
        let resp = self.client.get(&url)?;
        if resp.status == 404 {
            return Ok(None);
        }
        Ok(Some(resp.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_netsim::{AsnId, AsnKind};
    use iiscope_playstore::apk::{AdLibrary, ApkInfo};
    use iiscope_playstore::frontend::StoreFrontend;
    use iiscope_playstore::{InstallSource, PlayStore};
    use iiscope_types::{Country, Genre, PackageName};
    use iiscope_wire::server::HttpsFactory;
    use iiscope_wire::tls::{CertAuthority, ServerIdentity};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn rig() -> (Crawler, Arc<PlayStore>, Network) {
        let seed = SeedFork::new(515);
        let net = Network::new(seed.fork("net"));
        let store = Arc::new(PlayStore::new(seed.fork("store")));
        let dev = store.register_developer("Acme", Country::Il, "a@acme.il", None);
        let app = store
            .publish(
                PackageName::new("com.acme.puzzle").unwrap(),
                "Puzzle",
                dev,
                Genre::GamePuzzle,
                SimTime::from_days(3),
                ApkInfo {
                    ad_libraries: vec![AdLibrary::AdMob],
                    obfuscation: 0.0,
                    dynamic_libraries: vec![],
                },
            )
            .unwrap();
        let t = SimTime::from_days(40);
        for _ in 0..700 {
            store
                .record_install(
                    app,
                    t,
                    iiscope_playstore::InstallSignals::clean(1),
                    &InstallSource::Organic,
                )
                .unwrap();
            store.record_session(app, t, 120).unwrap();
        }
        store.record_ratings_bulk(app, 50, 215); // 4.3 average
        net.clock().advance_to(t);

        let mut ca = CertAuthority::new("Root", seed.fork("ca"));
        let identity = ServerIdentity::issue(&mut ca, "play.iiscope", seed.fork("id"));
        let mut roots = TrustStore::new();
        roots.install_root(ca.root_cert());
        let ip = Ipv4Addr::new(10, 70, 0, 1);
        net.bind(
            ip,
            443,
            Arc::new(HttpsFactory::new(
                Arc::new(StoreFrontend::new(Arc::clone(&store))),
                identity,
                seed.fork("tls"),
            )),
        )
        .unwrap();
        net.register_host("play.iiscope", ip);

        let from = HostAddr {
            ip: Ipv4Addr::new(192, 0, 2, 10),
            asn: AsnId(1),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        };
        (
            Crawler::new(
                net.clone(),
                from,
                roots,
                "play.iiscope",
                seed.fork("crawler"),
            ),
            store,
            net,
        )
    }

    #[test]
    fn profile_crawl() {
        let (mut crawler, _store, net) = rig();
        let snap = crawler
            .profile("com.acme.puzzle", net.clock().now())
            .unwrap()
            .unwrap();
        assert_eq!(snap.min_installs, 500);
        assert_eq!(snap.genre_id, "GAME_PUZZLE");
        assert_eq!(snap.developer_country, "IL");
        assert_eq!(snap.released_day, 3);
        assert_eq!(snap.day, 40);
        assert!((snap.rating - 4.3).abs() < 1e-9, "rating {}", snap.rating);
        assert_eq!(snap.rating_count, 50);
    }

    #[test]
    fn missing_profile_is_none() {
        let (mut crawler, _s, net) = rig();
        assert!(crawler
            .profile("com.not.listed", net.clock().now())
            .unwrap()
            .is_none());
    }

    #[test]
    fn chart_crawl() {
        let (mut crawler, _s, net) = rig();
        let snap = crawler
            .chart(ChartKind::TopGames, 50, net.clock().now())
            .unwrap();
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.entries[0], ("com.acme.puzzle".to_string(), 1));
        assert_eq!(snap.chart, "topselling_free_games");
    }

    #[test]
    fn apk_download() {
        let (mut crawler, _s, _net) = rig();
        let bytes = crawler.apk("com.acme.puzzle").unwrap().unwrap();
        assert!(String::from_utf8_lossy(&bytes).contains("com/google/android/gms/ads"));
        assert!(crawler.apk("com.not.listed").unwrap().is_none());
    }
}
