//! Per-IIP offer-wall parsers.
//!
//! Each parser consumes the *intercepted JSON body* of one wall page
//! and emits [`RawOffer`]s. Inputs are untrusted bytes off the wire:
//! parsers tolerate unknown fields, skip malformed entries (counting
//! them), and never panic. The dialects mirror
//! `iiscope_iip::wall` — but the monitor only knows them the way the
//! paper's authors did: by reverse-engineering captured traffic, so
//! nothing here links against the wall implementation.

use iiscope_types::{Country, IipId, SimTime};
use iiscope_wire::Json;

/// The reward currency as displayed by a wall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardValue {
    /// Direct USD amount (Fyber).
    Usd(f64),
    /// Affiliate-app points (most walls).
    Points(i64),
    /// Whole US cents (RankApp).
    Cents(i64),
}

/// One offer as parsed from a wall page, before enrichment.
#[derive(Debug, Clone, PartialEq)]
pub struct RawOffer {
    /// Wall-scoped offer key (for deduplication across pages/rounds).
    pub offer_key: u64,
    /// Human-readable task description.
    pub description: String,
    /// Displayed reward.
    pub reward: RewardValue,
    /// Advertised package name (as printed; may be garbage).
    pub package: String,
    /// Play Store URL.
    pub store_url: String,
}

/// A fully-enriched observation of an offer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedOffer {
    /// Which IIP's wall it was seen on.
    pub iip: IipId,
    /// The raw parse.
    pub raw: RawOffer,
    /// When it was scraped.
    pub seen_at: SimTime,
    /// Which affiliate app's wall produced it.
    pub affiliate: String,
    /// Vantage-point country of the milker.
    pub vantage: Country,
}

/// Result of parsing one page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageParse {
    /// Successfully parsed offers.
    pub offers: Vec<RawOffer>,
    /// Entries skipped as malformed.
    pub skipped: usize,
}

fn str_field(v: &Json, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn int_field(v: &Json, key: &str) -> Option<i64> {
    v.get(key)?.as_i64()
}

/// Parses one wall page body for the given IIP dialect.
///
/// Returns an error only when the page as a whole is unusable (not
/// JSON / wrong envelope); individual bad entries are skipped.
pub fn parse_wall(iip: IipId, body: &str) -> iiscope_types::Result<PageParse> {
    let json =
        Json::parse(body).map_err(|e| iiscope_types::Error::Decode(format!("{iip} wall: {e}")))?;
    let entries: &[Json] = match iip {
        IipId::Fyber => json
            .get("ofw")
            .and_then(|o| o.get("offers"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::OfferToro => json
            .get("response")
            .and_then(|o| o.get("offers"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::AdscendMedia => json
            .get("adscend")
            .and_then(|o| o.get("entries"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::HangMyAds => json
            .get("result")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::AdGem => json
            .get("data")
            .and_then(|o| o.get("wall"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::AyetStudios => {
            if json.get("status").and_then(Json::as_str) != Some("ok") {
                return Err(bad_envelope(iip));
            }
            json.get("offers")
                .and_then(Json::as_array)
                .ok_or_else(|| bad_envelope(iip))?
        }
        IipId::RankApp => json.as_array().ok_or_else(|| bad_envelope(iip))?,
    };

    let mut offers = Vec::with_capacity(entries.len());
    let mut skipped = 0;
    for entry in entries {
        match parse_entry(iip, entry) {
            Some(offer) => offers.push(offer),
            None => skipped += 1,
        }
    }
    Ok(PageParse { offers, skipped })
}

fn bad_envelope(iip: IipId) -> iiscope_types::Error {
    iiscope_types::Error::Decode(format!("{iip} wall: unexpected envelope"))
}

fn parse_entry(iip: IipId, v: &Json) -> Option<RawOffer> {
    match iip {
        IipId::Fyber => Some(RawOffer {
            offer_key: int_field(v, "offer_id")? as u64,
            description: str_field(v, "title")?,
            reward: RewardValue::Usd(v.get("payout_usd")?.as_f64()?),
            package: str_field(v, "package")?,
            store_url: str_field(v, "play_url")?,
        }),
        IipId::OfferToro => Some(RawOffer {
            offer_key: int_field(v, "id")? as u64,
            description: str_field(v, "offer_desc")?,
            reward: RewardValue::Points(int_field(v, "amount")?),
            package: str_field(v, "package_name")?,
            store_url: str_field(v, "link")?,
        }),
        IipId::AdscendMedia => {
            let app = v.get("app")?;
            Some(RawOffer {
                offer_key: int_field(v, "uid")? as u64,
                description: str_field(v, "description")?,
                reward: RewardValue::Points(int_field(v, "currency_count")?),
                package: str_field(app, "bundle")?,
                store_url: str_field(app, "market_url")?,
            })
        }
        IipId::HangMyAds => Some(RawOffer {
            offer_key: int_field(v, "tid")? as u64,
            description: str_field(v, "task")?,
            reward: RewardValue::Points(int_field(v, "points")?),
            package: str_field(v, "pkg")?,
            store_url: str_field(v, "url")?,
        }),
        IipId::AdGem => Some(RawOffer {
            offer_key: int_field(v, "id")? as u64,
            description: str_field(v, "text")?,
            reward: RewardValue::Points(int_field(v.get("reward")?, "points")?),
            package: str_field(v, "bundle_id")?,
            store_url: str_field(v, "store_link")?,
        }),
        IipId::AyetStudios => Some(RawOffer {
            offer_key: int_field(v, "offer_key")? as u64,
            description: str_field(v, "name")?,
            reward: RewardValue::Points(int_field(v, "payout")?),
            package: str_field(v, "package_id")?,
            store_url: str_field(v, "tracking_link")?,
        }),
        IipId::RankApp => Some(RawOffer {
            offer_key: int_field(v, "rid")? as u64,
            description: str_field(v, "task")?,
            reward: RewardValue::Cents(int_field(v, "price_cents")?),
            package: str_field(v, "app")?,
            store_url: str_field(v, "gp_link")?,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fyber_page_parses() {
        let body = r#"{"ofw":{"count":2,"offers":[
            {"offer_id":1,"title":"Install and Launch","payout_usd":0.03,
             "package":"com.a.b","play_url":"https://play.iiscope/x"},
            {"offer_id":2,"title":"Install and Register","payout_usd":0.26,
             "package":"com.c.d","play_url":"https://play.iiscope/y"}
        ]}}"#;
        let page = parse_wall(IipId::Fyber, body).unwrap();
        assert_eq!(page.offers.len(), 2);
        assert_eq!(page.skipped, 0);
        assert_eq!(page.offers[0].reward, RewardValue::Usd(0.03));
        assert_eq!(page.offers[1].description, "Install and Register");
    }

    #[test]
    fn rankapp_top_level_array() {
        let body = r#"[{"rid":9,"task":"Install and run the application",
            "price_cents":1,"gp_link":"https://play.iiscope/z","app":"com.x.y"}]"#;
        let page = parse_wall(IipId::RankApp, body).unwrap();
        assert_eq!(page.offers.len(), 1);
        assert_eq!(page.offers[0].reward, RewardValue::Cents(1));
    }

    #[test]
    fn nested_schemas_parse() {
        let adscend = r#"{"adscend":{"entries":[{"uid":3,"description":"Install, sign up with email",
            "currency_count":120,"app":{"bundle":"com.q.r","market_url":"https://play.iiscope/q"}}]}}"#;
        let page = parse_wall(IipId::AdscendMedia, adscend).unwrap();
        assert_eq!(page.offers[0].package, "com.q.r");
        let adgem = r#"{"data":{"wall":[{"id":4,"text":"Install & complete level 5",
            "reward":{"points":900},"bundle_id":"com.g.h","store_link":"https://play.iiscope/g"}]}}"#;
        let page = parse_wall(IipId::AdGem, adgem).unwrap();
        assert_eq!(page.offers[0].reward, RewardValue::Points(900));
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let body = r#"{"ofw":{"count":2,"offers":[
            {"offer_id":1,"title":"ok","payout_usd":0.1,"package":"a.b","play_url":"u"},
            {"title":"missing id and payout"}
        ]}}"#;
        let page = parse_wall(IipId::Fyber, body).unwrap();
        assert_eq!(page.offers.len(), 1);
        assert_eq!(page.skipped, 1);
    }

    #[test]
    fn wrong_envelope_is_fatal() {
        assert!(parse_wall(IipId::Fyber, "{}").is_err());
        assert!(parse_wall(IipId::RankApp, "{}").is_err());
        assert!(parse_wall(IipId::AyetStudios, r#"{"status":"error","offers":[]}"#).is_err());
        assert!(parse_wall(IipId::Fyber, "not json at all").is_err());
    }

    #[test]
    fn ayet_requires_ok_status() {
        let body = r#"{"status":"ok","offers":[{"offer_key":5,"name":"Install and Launch",
            "payout":44,"package_id":"com.m.n","tracking_link":"t"}]}"#;
        let page = parse_wall(IipId::AyetStudios, body).unwrap();
        assert_eq!(page.offers[0].offer_key, 5);
    }

    #[test]
    fn empty_pages_are_fine() {
        let page = parse_wall(IipId::HangMyAds, r#"{"result":[]}"#).unwrap();
        assert!(page.offers.is_empty());
        assert_eq!(page.skipped, 0);
    }
}
