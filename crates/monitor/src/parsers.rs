//! Per-IIP offer-wall parsers.
//!
//! Each parser consumes the *intercepted JSON body* of one wall page
//! and emits [`RawOffer`]s. Inputs are untrusted bytes off the wire:
//! parsers tolerate unknown fields, skip malformed entries (counting
//! them), and never panic. The dialects mirror
//! `iiscope_iip::wall` — but the monitor only knows them the way the
//! paper's authors did: by reverse-engineering captured traffic, so
//! nothing here links against the wall implementation.
//!
//! Two implementations share each dialect's schema:
//!
//! * [`parse_wall`] — the milking hot path. It walks the body with the
//!   streaming [`Scanner`], extracting the schema's five fields per
//!   entry without building a value tree (escape-free strings are the
//!   only per-offer allocations). Object keys repeat with last-wins
//!   semantics at every level, exactly like the tree parser's
//!   `BTreeMap` inserts.
//! * [`parse_wall_tree`] — the original `Json::parse`-based reference.
//!   Equivalence between the two is property-tested in
//!   `tests/proptests.rs`; on any streaming error `parse_wall` defers
//!   to the reference so error messages stay bit-identical.

use iiscope_types::{wirestats, Country, IipId, SimTime};
use iiscope_wire::json::{Event, ParseError, Scanner};
use iiscope_wire::Json;

/// The reward currency as displayed by a wall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardValue {
    /// Direct USD amount (Fyber).
    Usd(f64),
    /// Affiliate-app points (most walls).
    Points(i64),
    /// Whole US cents (RankApp).
    Cents(i64),
}

/// One offer as parsed from a wall page, before enrichment.
#[derive(Debug, Clone, PartialEq)]
pub struct RawOffer {
    /// Wall-scoped offer key (for deduplication across pages/rounds).
    pub offer_key: u64,
    /// Human-readable task description.
    pub description: String,
    /// Displayed reward.
    pub reward: RewardValue,
    /// Advertised package name (as printed; may be garbage).
    pub package: String,
    /// Play Store URL.
    pub store_url: String,
}

/// A fully-enriched observation of an offer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedOffer {
    /// Which IIP's wall it was seen on.
    pub iip: IipId,
    /// The raw parse.
    pub raw: RawOffer,
    /// When it was scraped.
    pub seen_at: SimTime,
    /// Which affiliate app's wall produced it.
    pub affiliate: String,
    /// Vantage-point country of the milker.
    pub vantage: Country,
}

/// Result of parsing one page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageParse {
    /// Successfully parsed offers.
    pub offers: Vec<RawOffer>,
    /// Entries skipped as malformed.
    pub skipped: usize,
}

fn str_field(v: &Json, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn int_field(v: &Json, key: &str) -> Option<i64> {
    v.get(key)?.as_i64()
}

/// Parses one wall page body for the given IIP dialect.
///
/// Returns an error only when the page as a whole is unusable (not
/// JSON / wrong envelope); individual bad entries are skipped.
///
/// This is the streaming fast path; it never builds a JSON tree. The
/// rare failure cases re-run [`parse_wall_tree`] so callers see the
/// reference implementation's exact errors.
pub fn parse_wall(iip: IipId, body: &str) -> iiscope_types::Result<PageParse> {
    match parse_wall_streaming(iip, body) {
        Ok(page) => {
            wirestats::add_walls_streamed(1);
            wirestats::add_offers_streamed(page.offers.len() as u64);
            Ok(page)
        }
        // Defensive: if the streaming walk rejects a page, defer to the
        // reference parser for the verdict (and the exact error text).
        // The equivalence proptests assert the two paths agree, so this
        // re-parse only ever runs on genuinely malformed pages.
        Err(_) => parse_wall_tree(iip, body),
    }
}

/// The original tree-building reference parser, kept verbatim: parse
/// the whole body with [`Json::parse`], then navigate the envelope.
pub fn parse_wall_tree(iip: IipId, body: &str) -> iiscope_types::Result<PageParse> {
    let json =
        Json::parse(body).map_err(|e| iiscope_types::Error::Decode(format!("{iip} wall: {e}")))?;
    let entries: &[Json] = match iip {
        IipId::Fyber => json
            .get("ofw")
            .and_then(|o| o.get("offers"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::OfferToro => json
            .get("response")
            .and_then(|o| o.get("offers"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::AdscendMedia => json
            .get("adscend")
            .and_then(|o| o.get("entries"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::HangMyAds => json
            .get("result")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::AdGem => json
            .get("data")
            .and_then(|o| o.get("wall"))
            .and_then(Json::as_array)
            .ok_or_else(|| bad_envelope(iip))?,
        IipId::AyetStudios => {
            if json.get("status").and_then(Json::as_str) != Some("ok") {
                return Err(bad_envelope(iip));
            }
            json.get("offers")
                .and_then(Json::as_array)
                .ok_or_else(|| bad_envelope(iip))?
        }
        IipId::RankApp => json.as_array().ok_or_else(|| bad_envelope(iip))?,
    };

    let mut offers = Vec::with_capacity(entries.len());
    let mut skipped = 0;
    for entry in entries {
        match parse_entry(iip, entry) {
            Some(offer) => offers.push(offer),
            None => skipped += 1,
        }
    }
    Ok(PageParse { offers, skipped })
}

fn bad_envelope(iip: IipId) -> iiscope_types::Error {
    iiscope_types::Error::Decode(format!("{iip} wall: unexpected envelope"))
}

fn parse_entry(iip: IipId, v: &Json) -> Option<RawOffer> {
    match iip {
        IipId::Fyber => Some(RawOffer {
            offer_key: int_field(v, "offer_id")? as u64,
            description: str_field(v, "title")?,
            reward: RewardValue::Usd(v.get("payout_usd")?.as_f64()?),
            package: str_field(v, "package")?,
            store_url: str_field(v, "play_url")?,
        }),
        IipId::OfferToro => Some(RawOffer {
            offer_key: int_field(v, "id")? as u64,
            description: str_field(v, "offer_desc")?,
            reward: RewardValue::Points(int_field(v, "amount")?),
            package: str_field(v, "package_name")?,
            store_url: str_field(v, "link")?,
        }),
        IipId::AdscendMedia => {
            let app = v.get("app")?;
            Some(RawOffer {
                offer_key: int_field(v, "uid")? as u64,
                description: str_field(v, "description")?,
                reward: RewardValue::Points(int_field(v, "currency_count")?),
                package: str_field(app, "bundle")?,
                store_url: str_field(app, "market_url")?,
            })
        }
        IipId::HangMyAds => Some(RawOffer {
            offer_key: int_field(v, "tid")? as u64,
            description: str_field(v, "task")?,
            reward: RewardValue::Points(int_field(v, "points")?),
            package: str_field(v, "pkg")?,
            store_url: str_field(v, "url")?,
        }),
        IipId::AdGem => Some(RawOffer {
            offer_key: int_field(v, "id")? as u64,
            description: str_field(v, "text")?,
            reward: RewardValue::Points(int_field(v.get("reward")?, "points")?),
            package: str_field(v, "bundle_id")?,
            store_url: str_field(v, "store_link")?,
        }),
        IipId::AyetStudios => Some(RawOffer {
            offer_key: int_field(v, "offer_key")? as u64,
            description: str_field(v, "name")?,
            reward: RewardValue::Points(int_field(v, "payout")?),
            package: str_field(v, "package_id")?,
            store_url: str_field(v, "tracking_link")?,
        }),
        IipId::RankApp => Some(RawOffer {
            offer_key: int_field(v, "rid")? as u64,
            description: str_field(v, "task")?,
            reward: RewardValue::Cents(int_field(v, "price_cents")?),
            package: str_field(v, "app")?,
            store_url: str_field(v, "gp_link")?,
        }),
    }
}

// ---------------------------------------------------------------------
// Streaming schemas.
// ---------------------------------------------------------------------

/// Where a dialect keeps its entries array.
#[derive(Clone, Copy)]
enum Envelope {
    /// `{outer: {inner: [entries]}}`
    Nested(&'static str, &'static str),
    /// `{key: [entries]}`
    Flat(&'static str),
    /// `{"status": "ok", key: [entries]}`
    FlatWithStatus(&'static str),
    /// `[entries]`
    TopArray,
}

/// One extracted entry field: a key at the entry's top level, or
/// inside a named sub-object.
#[derive(Clone, Copy)]
struct Field {
    parent: Option<&'static str>,
    name: &'static str,
}

const fn field(name: &'static str) -> Field {
    Field { parent: None, name }
}

const fn sub(parent: &'static str, name: &'static str) -> Field {
    Field {
        parent: Some(parent),
        name,
    }
}

#[derive(Clone, Copy)]
enum RewardKind {
    Usd,
    Points,
    Cents,
}

/// A dialect, described declaratively: the envelope plus the five
/// fields [`RawOffer`] needs.
struct Schema {
    envelope: Envelope,
    id: Field,
    desc: Field,
    reward: Field,
    reward_kind: RewardKind,
    package: Field,
    url: Field,
}

fn schema(iip: IipId) -> Schema {
    match iip {
        IipId::Fyber => Schema {
            envelope: Envelope::Nested("ofw", "offers"),
            id: field("offer_id"),
            desc: field("title"),
            reward: field("payout_usd"),
            reward_kind: RewardKind::Usd,
            package: field("package"),
            url: field("play_url"),
        },
        IipId::OfferToro => Schema {
            envelope: Envelope::Nested("response", "offers"),
            id: field("id"),
            desc: field("offer_desc"),
            reward: field("amount"),
            reward_kind: RewardKind::Points,
            package: field("package_name"),
            url: field("link"),
        },
        IipId::AdscendMedia => Schema {
            envelope: Envelope::Nested("adscend", "entries"),
            id: field("uid"),
            desc: field("description"),
            reward: field("currency_count"),
            reward_kind: RewardKind::Points,
            package: sub("app", "bundle"),
            url: sub("app", "market_url"),
        },
        IipId::HangMyAds => Schema {
            envelope: Envelope::Flat("result"),
            id: field("tid"),
            desc: field("task"),
            reward: field("points"),
            reward_kind: RewardKind::Points,
            package: field("pkg"),
            url: field("url"),
        },
        IipId::AdGem => Schema {
            envelope: Envelope::Nested("data", "wall"),
            id: field("id"),
            desc: field("text"),
            reward: sub("reward", "points"),
            reward_kind: RewardKind::Points,
            package: field("bundle_id"),
            url: field("store_link"),
        },
        IipId::AyetStudios => Schema {
            envelope: Envelope::FlatWithStatus("offers"),
            id: field("offer_key"),
            desc: field("name"),
            reward: field("payout"),
            reward_kind: RewardKind::Points,
            package: field("package_id"),
            url: field("tracking_link"),
        },
        IipId::RankApp => Schema {
            envelope: Envelope::TopArray,
            id: field("rid"),
            desc: field("task"),
            reward: field("price_cents"),
            reward_kind: RewardKind::Cents,
            package: field("app"),
            url: field("gp_link"),
        },
    }
}

/// Last-parsed value of each schema slot for the entry being streamed.
/// Re-occurring keys overwrite — the same last-wins the tree parser
/// gets from `BTreeMap::insert`.
#[derive(Default)]
struct EntryAcc {
    id: Option<i64>,
    desc: Option<String>,
    reward_i: Option<i64>,
    reward_f: Option<f64>,
    package: Option<String>,
    url: Option<String>,
}

impl EntryAcc {
    fn finish(self, kind: RewardKind) -> Option<RawOffer> {
        Some(RawOffer {
            offer_key: self.id? as u64,
            description: self.desc?,
            reward: match kind {
                RewardKind::Usd => RewardValue::Usd(self.reward_f?),
                RewardKind::Points => RewardValue::Points(self.reward_i?),
                RewardKind::Cents => RewardValue::Cents(self.reward_i?),
            },
            package: self.package?,
            store_url: self.url?,
        })
    }
}

/// The streaming walk itself. Public so the equivalence proptests can
/// target it without the tree-parser fallback in the way; production
/// code calls [`parse_wall`].
pub fn parse_wall_streaming(iip: IipId, body: &str) -> iiscope_types::Result<PageParse> {
    let sch = schema(iip);
    let mut sc = Scanner::new(body);
    stream_document(&mut sc, &sch)
        .map_err(|e| iiscope_types::Error::Decode(format!("{iip} wall: {e}")))?
        .map(|(offers, skipped)| PageParse { offers, skipped })
        .ok_or_else(|| bad_envelope(iip))
}

type Entries = (Vec<RawOffer>, usize);

/// Walks the whole document (every byte is validated, matching
/// `Json::parse`'s strictness); `Ok(None)` means valid JSON with the
/// wrong envelope.
fn stream_document(sc: &mut Scanner<'_>, sch: &Schema) -> Result<Option<Entries>, ParseError> {
    let first = sc.next_event()?;
    let result = match (sch.envelope, first) {
        (Envelope::TopArray, Some(Event::StartArray)) => Some(parse_entries(sc, sch)?),
        (_, Some(Event::StartObject)) if !matches!(sch.envelope, Envelope::TopArray) => {
            stream_envelope_object(sc, sch)?
        }
        (_, Some(Event::StartArray | Event::StartObject)) => {
            skip_after_start(sc)?;
            None
        }
        // A scalar document can't hold the envelope; keep draining so
        // trailing-garbage errors surface first, as the tree parser's
        // up-front `Json::parse` would report them.
        (_, Some(_)) => None,
        (_, None) => unreachable!("scanner yields at least one event or errors"),
    };
    drain(sc)?;
    Ok(result)
}

/// Scans the top-level envelope object of every non-array dialect.
fn stream_envelope_object(
    sc: &mut Scanner<'_>,
    sch: &Schema,
) -> Result<Option<Entries>, ParseError> {
    let (entries_key, nested_inner, wants_status) = match sch.envelope {
        Envelope::Nested(outer, inner) => (outer, Some(inner), false),
        Envelope::Flat(key) => (key, None, false),
        Envelope::FlatWithStatus(key) => (key, None, true),
        Envelope::TopArray => unreachable!("handled by stream_document"),
    };
    let mut result: Option<Entries> = None;
    let mut status: Option<String> = None;
    loop {
        match sc.next_event()? {
            Some(Event::EndObject) => break,
            Some(Event::Key(k)) => {
                if k == entries_key {
                    result = match nested_inner {
                        Some(inner) => stream_inner_object(sc, sch, inner)?,
                        None => stream_entries_value(sc, sch)?,
                    };
                } else if wants_status && k == "status" {
                    status = next_string(sc)?;
                } else {
                    sc.skip_value()?;
                }
            }
            ev => unreachable!("object scan got {ev:?}"),
        }
    }
    if wants_status && status.as_deref() != Some("ok") {
        return Ok(None);
    }
    Ok(result)
}

/// Consumes the value under the outer envelope key; entries live one
/// object level down (`{inner: [entries]}`).
fn stream_inner_object(
    sc: &mut Scanner<'_>,
    sch: &Schema,
    inner: &str,
) -> Result<Option<Entries>, ParseError> {
    match sc.next_event()? {
        Some(Event::StartObject) => {
            let mut result = None;
            loop {
                match sc.next_event()? {
                    Some(Event::EndObject) => return Ok(result),
                    Some(Event::Key(k)) if k == inner => {
                        result = stream_entries_value(sc, sch)?;
                    }
                    Some(Event::Key(_)) => sc.skip_value()?,
                    ev => unreachable!("object scan got {ev:?}"),
                }
            }
        }
        Some(Event::StartArray) => {
            skip_after_start(sc)?;
            Ok(None)
        }
        Some(_) => Ok(None),
        None => unreachable!("value follows a key"),
    }
}

/// Consumes the value under the entries key; it must be an array.
fn stream_entries_value(sc: &mut Scanner<'_>, sch: &Schema) -> Result<Option<Entries>, ParseError> {
    match sc.next_event()? {
        Some(Event::StartArray) => Ok(Some(parse_entries(sc, sch)?)),
        Some(Event::StartObject) => {
            skip_after_start(sc)?;
            Ok(None)
        }
        Some(_) => Ok(None),
        None => unreachable!("value follows a key"),
    }
}

/// Streams the entries array (positioned just past its `[`).
fn parse_entries(sc: &mut Scanner<'_>, sch: &Schema) -> Result<Entries, ParseError> {
    let mut offers = Vec::new();
    let mut skipped = 0usize;
    loop {
        match sc.next_event()? {
            Some(Event::EndArray) => return Ok((offers, skipped)),
            Some(Event::StartObject) => {
                let mut acc = EntryAcc::default();
                stream_entry_object(sc, sch, &mut acc)?;
                match acc.finish(sch.reward_kind) {
                    Some(offer) => offers.push(offer),
                    None => skipped += 1,
                }
            }
            Some(Event::StartArray) => {
                skip_after_start(sc)?;
                skipped += 1;
            }
            Some(_) => skipped += 1,
            None => unreachable!("array items precede EndArray"),
        }
    }
}

/// Streams one entry object into the accumulator.
fn stream_entry_object(
    sc: &mut Scanner<'_>,
    sch: &Schema,
    acc: &mut EntryAcc,
) -> Result<(), ParseError> {
    loop {
        match sc.next_event()? {
            Some(Event::EndObject) => return Ok(()),
            Some(Event::Key(k)) => {
                let k: &str = &k;
                if matches_top(sch.id, k) {
                    acc.id = next_i64(sc)?;
                } else if matches_top(sch.desc, k) {
                    acc.desc = next_string(sc)?;
                } else if matches_top(sch.reward, k) {
                    match sch.reward_kind {
                        RewardKind::Usd => acc.reward_f = next_f64(sc)?,
                        RewardKind::Points | RewardKind::Cents => acc.reward_i = next_i64(sc)?,
                    }
                } else if matches_top(sch.package, k) {
                    acc.package = next_string(sc)?;
                } else if matches_top(sch.url, k) {
                    acc.url = next_string(sc)?;
                } else if is_parent(sch, k) {
                    stream_sub_object(sc, sch, k, acc)?;
                } else {
                    sc.skip_value()?;
                }
            }
            ev => unreachable!("object scan got {ev:?}"),
        }
    }
}

/// Streams a named sub-object (`"app"`, `"reward"`). A repeated parent
/// key replaces the previous occurrence wholesale, so every slot under
/// it resets first.
fn stream_sub_object(
    sc: &mut Scanner<'_>,
    sch: &Schema,
    parent: &str,
    acc: &mut EntryAcc,
) -> Result<(), ParseError> {
    if matches_sub(sch.reward, parent, None) {
        acc.reward_i = None;
        acc.reward_f = None;
    }
    if matches_sub(sch.package, parent, None) {
        acc.package = None;
    }
    if matches_sub(sch.url, parent, None) {
        acc.url = None;
    }
    match sc.next_event()? {
        Some(Event::StartObject) => loop {
            match sc.next_event()? {
                Some(Event::EndObject) => return Ok(()),
                Some(Event::Key(k)) => {
                    let k: &str = &k;
                    if matches_sub(sch.reward, parent, Some(k)) {
                        match sch.reward_kind {
                            RewardKind::Usd => acc.reward_f = next_f64(sc)?,
                            RewardKind::Points | RewardKind::Cents => acc.reward_i = next_i64(sc)?,
                        }
                    } else if matches_sub(sch.package, parent, Some(k)) {
                        acc.package = next_string(sc)?;
                    } else if matches_sub(sch.url, parent, Some(k)) {
                        acc.url = next_string(sc)?;
                    } else {
                        sc.skip_value()?;
                    }
                }
                ev => unreachable!("object scan got {ev:?}"),
            }
        },
        Some(Event::StartArray) => skip_after_start(sc),
        Some(_) => Ok(()),
        None => unreachable!("value follows a key"),
    }
}

fn matches_top(f: Field, key: &str) -> bool {
    f.parent.is_none() && f.name == key
}

/// With `name == None`, asks whether `f` lives under `parent` at all;
/// with `Some`, whether it is exactly `parent.name`.
fn matches_sub(f: Field, parent: &str, name: Option<&str>) -> bool {
    f.parent == Some(parent) && name.is_none_or(|n| f.name == n)
}

fn is_parent(sch: &Schema, key: &str) -> bool {
    [sch.id, sch.desc, sch.reward, sch.package, sch.url]
        .iter()
        .any(|f| f.parent == Some(key))
}

// -- typed field readers: `Json::as_*` conversion rules on events ------

fn next_i64(sc: &mut Scanner<'_>) -> Result<Option<i64>, ParseError> {
    Ok(match sc.next_event()? {
        Some(Event::Int(i)) => Some(i),
        Some(Event::Float(f)) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
        Some(Event::StartArray | Event::StartObject) => {
            skip_after_start(sc)?;
            None
        }
        _ => None,
    })
}

fn next_f64(sc: &mut Scanner<'_>) -> Result<Option<f64>, ParseError> {
    Ok(match sc.next_event()? {
        Some(Event::Int(i)) => Some(i as f64),
        Some(Event::Float(f)) => Some(f),
        Some(Event::StartArray | Event::StartObject) => {
            skip_after_start(sc)?;
            None
        }
        _ => None,
    })
}

fn next_string(sc: &mut Scanner<'_>) -> Result<Option<String>, ParseError> {
    Ok(match sc.next_event()? {
        Some(Event::Str(s)) => Some(s.into_owned()),
        Some(Event::StartArray | Event::StartObject) => {
            skip_after_start(sc)?;
            None
        }
        _ => None,
    })
}

/// Consumes events up to and including the `End` matching an already
/// consumed `Start`.
fn skip_after_start(sc: &mut Scanner<'_>) -> Result<(), ParseError> {
    let mut depth = 1usize;
    loop {
        match sc.next_event()? {
            Some(Event::StartArray | Event::StartObject) => depth += 1,
            Some(Event::EndArray | Event::EndObject) => {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
            Some(_) => {}
            None => unreachable!("container closes before document end"),
        }
    }
}

/// Consumes the rest of the document, surfacing any syntax or
/// trailing-garbage error.
fn drain(sc: &mut Scanner<'_>) -> Result<(), ParseError> {
    while sc.next_event()?.is_some() {}
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fyber_page_parses() {
        let body = r#"{"ofw":{"count":2,"offers":[
            {"offer_id":1,"title":"Install and Launch","payout_usd":0.03,
             "package":"com.a.b","play_url":"https://play.iiscope/x"},
            {"offer_id":2,"title":"Install and Register","payout_usd":0.26,
             "package":"com.c.d","play_url":"https://play.iiscope/y"}
        ]}}"#;
        let page = parse_wall(IipId::Fyber, body).unwrap();
        assert_eq!(page.offers.len(), 2);
        assert_eq!(page.skipped, 0);
        assert_eq!(page.offers[0].reward, RewardValue::Usd(0.03));
        assert_eq!(page.offers[1].description, "Install and Register");
    }

    #[test]
    fn rankapp_top_level_array() {
        let body = r#"[{"rid":9,"task":"Install and run the application",
            "price_cents":1,"gp_link":"https://play.iiscope/z","app":"com.x.y"}]"#;
        let page = parse_wall(IipId::RankApp, body).unwrap();
        assert_eq!(page.offers.len(), 1);
        assert_eq!(page.offers[0].reward, RewardValue::Cents(1));
    }

    #[test]
    fn nested_schemas_parse() {
        let adscend = r#"{"adscend":{"entries":[{"uid":3,"description":"Install, sign up with email",
            "currency_count":120,"app":{"bundle":"com.q.r","market_url":"https://play.iiscope/q"}}]}}"#;
        let page = parse_wall(IipId::AdscendMedia, adscend).unwrap();
        assert_eq!(page.offers[0].package, "com.q.r");
        let adgem = r#"{"data":{"wall":[{"id":4,"text":"Install & complete level 5",
            "reward":{"points":900},"bundle_id":"com.g.h","store_link":"https://play.iiscope/g"}]}}"#;
        let page = parse_wall(IipId::AdGem, adgem).unwrap();
        assert_eq!(page.offers[0].reward, RewardValue::Points(900));
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let body = r#"{"ofw":{"count":2,"offers":[
            {"offer_id":1,"title":"ok","payout_usd":0.1,"package":"a.b","play_url":"u"},
            {"title":"missing id and payout"}
        ]}}"#;
        let page = parse_wall(IipId::Fyber, body).unwrap();
        assert_eq!(page.offers.len(), 1);
        assert_eq!(page.skipped, 1);
    }

    #[test]
    fn wrong_envelope_is_fatal() {
        assert!(parse_wall(IipId::Fyber, "{}").is_err());
        assert!(parse_wall(IipId::RankApp, "{}").is_err());
        assert!(parse_wall(IipId::AyetStudios, r#"{"status":"error","offers":[]}"#).is_err());
        assert!(parse_wall(IipId::Fyber, "not json at all").is_err());
    }

    #[test]
    fn ayet_requires_ok_status() {
        let body = r#"{"status":"ok","offers":[{"offer_key":5,"name":"Install and Launch",
            "payout":44,"package_id":"com.m.n","tracking_link":"t"}]}"#;
        let page = parse_wall(IipId::AyetStudios, body).unwrap();
        assert_eq!(page.offers[0].offer_key, 5);
    }

    #[test]
    fn empty_pages_are_fine() {
        let page = parse_wall(IipId::HangMyAds, r#"{"result":[]}"#).unwrap();
        assert!(page.offers.is_empty());
        assert_eq!(page.skipped, 0);
    }
}
