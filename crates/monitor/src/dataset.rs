//! The assembled longitudinal dataset and its query surface.
//!
//! §4.1's summary numbers all come from this store: "a total of 2,126
//! offers from 922 unique advertised apps … a total of 1,128 unique
//! offer descriptions". The analyses of §4.2–4.3 query it for campaign
//! windows, per-IIP app sets, profile timelines and chart presence.

use crate::crawler::{ChartSnapshot, ProfileSnapshot};
use crate::parsers::ScrapedOffer;
use iiscope_types::{IipId, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Per-app summary of everything the monitor saw.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignObservation {
    /// The advertised package.
    pub package: String,
    /// IIPs the app was seen on.
    pub iips: BTreeSet<IipId>,
    /// First offer sighting.
    pub first_seen: SimTime,
    /// Last offer sighting.
    pub last_seen: SimTime,
    /// Distinct offers ((iip, key) pairs).
    pub offer_count: usize,
}

impl CampaignObservation {
    /// Whether any of the app's offers ran on a vetted platform.
    pub fn on_vetted(&self) -> bool {
        self.iips.iter().any(|i| i.is_vetted())
    }

    /// Whether any of the app's offers ran on an unvetted platform.
    pub fn on_unvetted(&self) -> bool {
        self.iips.iter().any(|i| !i.is_vetted())
    }

    /// Campaign duration in days (Table 5/6 use a 25-day average).
    pub fn duration_days(&self) -> u64 {
        (self.last_seen - self.first_seen).days()
    }
}

/// The dataset store.
#[derive(Debug, Default)]
pub struct Dataset {
    offers: Vec<ScrapedOffer>,
    profiles: Vec<ProfileSnapshot>,
    charts: Vec<ChartSnapshot>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Appends scraped offers.
    pub fn add_offers(&mut self, offers: impl IntoIterator<Item = ScrapedOffer>) {
        self.offers.extend(offers);
    }

    /// Appends a profile snapshot.
    pub fn add_profile(&mut self, snap: ProfileSnapshot) {
        self.profiles.push(snap);
    }

    /// Appends a chart snapshot.
    pub fn add_chart(&mut self, snap: ChartSnapshot) {
        self.charts.push(snap);
    }

    /// All raw offer observations.
    pub fn offers(&self) -> &[ScrapedOffer] {
        &self.offers
    }

    /// All profile snapshots.
    pub fn profiles(&self) -> &[ProfileSnapshot] {
        &self.profiles
    }

    /// All chart snapshots.
    pub fn charts(&self) -> &[ChartSnapshot] {
        &self.charts
    }

    /// Deduplicated offers: first observation of each `(iip, key)`.
    pub fn unique_offers(&self) -> Vec<&ScrapedOffer> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for o in &self.offers {
            if seen.insert((o.iip, o.raw.offer_key)) {
                out.push(o);
            }
        }
        out
    }

    /// Unique offer descriptions (the paper counts 1,128).
    pub fn unique_descriptions(&self) -> BTreeSet<&str> {
        self.offers
            .iter()
            .map(|o| o.raw.description.as_str())
            .collect()
    }

    /// Unique advertised packages (the paper counts 922).
    pub fn advertised_packages(&self) -> BTreeSet<&str> {
        self.offers.iter().map(|o| o.raw.package.as_str()).collect()
    }

    /// Packages advertised on a specific IIP.
    pub fn packages_on(&self, iip: IipId) -> BTreeSet<&str> {
        self.offers
            .iter()
            .filter(|o| o.iip == iip)
            .map(|o| o.raw.package.as_str())
            .collect()
    }

    /// Packages advertised on any vetted (true) / unvetted (false)
    /// platform. Note an app can be in both sets (Table 5's N values
    /// overlap: 492 + 538 > 922).
    pub fn packages_by_class(&self, vetted: bool) -> BTreeSet<&str> {
        self.offers
            .iter()
            .filter(|o| o.iip.is_vetted() == vetted)
            .map(|o| o.raw.package.as_str())
            .collect()
    }

    /// Per-app observation summaries, sorted by package.
    pub fn observations(&self) -> Vec<CampaignObservation> {
        let mut map: BTreeMap<&str, CampaignObservation> = BTreeMap::new();
        let mut keys: BTreeMap<&str, BTreeSet<(IipId, u64)>> = BTreeMap::new();
        for o in &self.offers {
            let pkg = o.raw.package.as_str();
            let entry = map.entry(pkg).or_insert_with(|| CampaignObservation {
                package: pkg.to_string(),
                iips: BTreeSet::new(),
                first_seen: o.seen_at,
                last_seen: o.seen_at,
                offer_count: 0,
            });
            entry.iips.insert(o.iip);
            entry.first_seen = entry.first_seen.min(o.seen_at);
            entry.last_seen = entry.last_seen.max(o.seen_at);
            keys.entry(pkg)
                .or_default()
                .insert((o.iip, o.raw.offer_key));
        }
        map.into_iter()
            .map(|(pkg, mut obs)| {
                obs.offer_count = keys.get(pkg).map_or(0, BTreeSet::len);
                obs
            })
            .collect()
    }

    /// Observation for one package.
    pub fn observation(&self, package: &str) -> Option<CampaignObservation> {
        self.observations()
            .into_iter()
            .find(|o| o.package == package)
    }

    /// Profile timeline of one package, day-ascending.
    pub fn profile_series(&self, package: &str) -> Vec<&ProfileSnapshot> {
        let mut v: Vec<&ProfileSnapshot> = self
            .profiles
            .iter()
            .filter(|p| p.package == package)
            .collect();
        v.sort_by_key(|p| p.day);
        v
    }

    /// Days on which `package` appeared in `chart`, with its rank.
    pub fn chart_presence(&self, package: &str, chart: &str) -> Vec<(u64, usize)> {
        let mut v: Vec<(u64, usize)> = self
            .charts
            .iter()
            .filter(|c| c.chart == chart)
            .filter_map(|c| {
                c.entries
                    .iter()
                    .find(|(p, _)| p == package)
                    .map(|(_, rank)| (c.day, *rank))
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether `package` appeared in *any* chart in the day range
    /// `[from, to]`.
    pub fn in_any_chart(&self, package: &str, from: u64, to: u64) -> bool {
        self.charts
            .iter()
            .any(|c| c.day >= from && c.day <= to && c.entries.iter().any(|(p, _)| p == package))
    }

    /// Distinct crawl days present in the chart dataset.
    pub fn chart_days(&self) -> BTreeSet<u64> {
        self.charts.iter().map(|c| c.day).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::{RawOffer, RewardValue};
    use iiscope_types::Country;

    fn offer(iip: IipId, key: u64, pkg: &str, day: u64, desc: &str) -> ScrapedOffer {
        ScrapedOffer {
            iip,
            raw: RawOffer {
                offer_key: key,
                description: desc.into(),
                reward: RewardValue::Cents(5),
                package: pkg.into(),
                store_url: format!("https://play.iiscope/store/apps/details?id={pkg}"),
            },
            seen_at: SimTime::from_days(day),
            affiliate: "com.cash.app".into(),
            vantage: Country::Us,
        }
    }

    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        d.add_offers([
            offer(IipId::Fyber, 1, "com.a.one", 10, "Install and Register"),
            offer(IipId::Fyber, 1, "com.a.one", 12, "Install and Register"), // re-observed
            offer(IipId::RankApp, 7, "com.a.one", 14, "Install and Launch"),
            offer(IipId::RankApp, 8, "com.b.two", 11, "Install and Launch"),
        ]);
        d
    }

    #[test]
    fn dedup_and_counts() {
        let d = dataset();
        assert_eq!(d.offers().len(), 4);
        assert_eq!(d.unique_offers().len(), 3);
        assert_eq!(d.unique_descriptions().len(), 2);
        assert_eq!(d.advertised_packages().len(), 2);
    }

    #[test]
    fn per_class_sets_can_overlap() {
        let d = dataset();
        let vetted = d.packages_by_class(true);
        let unvetted = d.packages_by_class(false);
        assert!(vetted.contains("com.a.one"));
        assert!(unvetted.contains("com.a.one"));
        assert!(!vetted.contains("com.b.two"));
        assert_eq!(d.packages_on(IipId::RankApp).len(), 2);
    }

    #[test]
    fn observations_aggregate_windows() {
        let d = dataset();
        let obs = d.observation("com.a.one").unwrap();
        assert_eq!(obs.first_seen, SimTime::from_days(10));
        assert_eq!(obs.last_seen, SimTime::from_days(14));
        assert_eq!(obs.duration_days(), 4);
        assert_eq!(obs.offer_count, 2);
        assert!(obs.on_vetted() && obs.on_unvetted());
        assert!(d.observation("com.none").is_none());
    }

    #[test]
    fn chart_queries() {
        let mut d = dataset();
        d.add_chart(ChartSnapshot {
            day: 10,
            chart: "topselling_free",
            entries: vec![("com.a.one".into(), 3)],
        });
        d.add_chart(ChartSnapshot {
            day: 12,
            chart: "topselling_free",
            entries: vec![("com.b.two".into(), 1)],
        });
        assert_eq!(
            d.chart_presence("com.a.one", "topselling_free"),
            vec![(10, 3)]
        );
        assert!(d.in_any_chart("com.a.one", 9, 11));
        assert!(!d.in_any_chart("com.a.one", 11, 20));
        assert_eq!(d.chart_days().len(), 2);
    }

    #[test]
    fn profile_series_sorted() {
        let mut d = Dataset::new();
        for day in [14u64, 10, 12] {
            d.add_profile(ProfileSnapshot {
                day,
                package: "com.a.one".into(),
                title: "A".into(),
                genre_id: "TOOLS".into(),
                released_day: 1,
                min_installs: 100 * day,
                developer_id: 1,
                developer_name: "d".into(),
                developer_country: "US".into(),
                developer_email: "e".into(),
                developer_website: String::new(),
                rating: 0.0,
                rating_count: 0,
            });
        }
        let series = d.profile_series("com.a.one");
        assert_eq!(
            series.iter().map(|p| p.day).collect::<Vec<_>>(),
            vec![10, 12, 14]
        );
        assert!(d.profile_series("com.none").is_empty());
    }
}
