//! The assembled longitudinal dataset and its query surface.
//!
//! §4.1's summary numbers all come from this store: "a total of 2,126
//! offers from 922 unique advertised apps … a total of 1,128 unique
//! offer descriptions". The analyses of §4.2–4.3 query it for campaign
//! windows, per-IIP app sets, profile timelines and chart presence.
//!
//! Queries are backed by **incremental indices** maintained on insert:
//! the experiment layer calls `unique_offers()` / `observations()` /
//! `profile_series()` and friends 16+ times per report, so each
//! accessor reads a pre-deduplicated, pre-sorted structure instead of
//! re-scanning the raw observation log. The raw log itself is kept
//! untouched (`offers()` still returns every observation in arrival
//! order) and the accessor signatures are unchanged.

use crate::crawler::{ChartSnapshot, ProfileSnapshot};
use crate::parsers::ScrapedOffer;
use iiscope_types::{IipId, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Per-app summary of everything the monitor saw.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignObservation {
    /// The advertised package.
    pub package: String,
    /// IIPs the app was seen on.
    pub iips: BTreeSet<IipId>,
    /// First offer sighting.
    pub first_seen: SimTime,
    /// Last offer sighting.
    pub last_seen: SimTime,
    /// Distinct offers ((iip, key) pairs).
    pub offer_count: usize,
}

impl CampaignObservation {
    /// Whether any of the app's offers ran on a vetted platform.
    pub fn on_vetted(&self) -> bool {
        self.iips.iter().any(|i| i.is_vetted())
    }

    /// Whether any of the app's offers ran on an unvetted platform.
    pub fn on_unvetted(&self) -> bool {
        self.iips.iter().any(|i| !i.is_vetted())
    }

    /// Campaign duration in days (Table 5/6 use a 25-day average).
    pub fn duration_days(&self) -> u64 {
        (self.last_seen - self.first_seen).days()
    }
}

/// `(day, rank)` timelines keyed by package, for one chart.
type RankTimelines = BTreeMap<String, Vec<(u64, usize)>>;

/// Incremental per-package aggregate behind [`Dataset::observations`].
#[derive(Debug, Clone)]
struct ObservationAgg {
    iips: BTreeSet<IipId>,
    first_seen: SimTime,
    last_seen: SimTime,
    /// Distinct `(iip, key)` pairs seen under this package.
    keys: BTreeSet<(IipId, u64)>,
}

/// The dataset store.
#[derive(Debug, Default)]
pub struct Dataset {
    offers: Vec<ScrapedOffer>,
    profiles: Vec<ProfileSnapshot>,
    charts: Vec<ChartSnapshot>,

    // Incremental indices, maintained by the `add_*` methods.
    /// Dedup set over `(iip, offer_key)`.
    seen_offer_keys: BTreeSet<(IipId, u64)>,
    /// Rows in `offers` holding the first observation of each key, in
    /// arrival order (what `unique_offers()` returns).
    unique_offer_rows: Vec<usize>,
    /// Distinct offer descriptions.
    descriptions: BTreeSet<String>,
    /// Distinct advertised packages.
    packages: BTreeSet<String>,
    /// Distinct packages per platform.
    packages_by_iip: BTreeMap<IipId, BTreeSet<String>>,
    /// Distinct packages on vetted ([1]) / unvetted ([0]) platforms.
    packages_by_class: [BTreeSet<String>; 2],
    /// Per-package campaign aggregates.
    observations: BTreeMap<String, ObservationAgg>,
    /// Rows in `profiles` per package, day-ascending (stable).
    profile_rows: BTreeMap<String, Vec<usize>>,
    /// `(day, rank)` per chart, per package.
    chart_ranks: BTreeMap<&'static str, RankTimelines>,
    /// Days each package appeared in any chart.
    chart_days_by_package: BTreeMap<String, BTreeSet<u64>>,
    /// Distinct chart crawl days.
    chart_days: BTreeSet<u64>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Appends scraped offers, updating every offer index (including
    /// the `(iip, key)` dedup set — first observation wins).
    pub fn add_offers(&mut self, offers: impl IntoIterator<Item = ScrapedOffer>) {
        for o in offers {
            let row = self.offers.len();
            if self.seen_offer_keys.insert((o.iip, o.raw.offer_key)) {
                self.unique_offer_rows.push(row);
            }
            if !self.descriptions.contains(o.raw.description.as_str()) {
                self.descriptions.insert(o.raw.description.clone());
            }
            let pkg = o.raw.package.as_str();
            if !self.packages.contains(pkg) {
                self.packages.insert(pkg.to_string());
            }
            let by_iip = self.packages_by_iip.entry(o.iip).or_default();
            if !by_iip.contains(pkg) {
                by_iip.insert(pkg.to_string());
            }
            let class = &mut self.packages_by_class[usize::from(o.iip.is_vetted())];
            if !class.contains(pkg) {
                class.insert(pkg.to_string());
            }
            match self.observations.get_mut(pkg) {
                Some(agg) => {
                    agg.iips.insert(o.iip);
                    agg.first_seen = agg.first_seen.min(o.seen_at);
                    agg.last_seen = agg.last_seen.max(o.seen_at);
                    agg.keys.insert((o.iip, o.raw.offer_key));
                }
                None => {
                    self.observations.insert(
                        pkg.to_string(),
                        ObservationAgg {
                            iips: BTreeSet::from([o.iip]),
                            first_seen: o.seen_at,
                            last_seen: o.seen_at,
                            keys: BTreeSet::from([(o.iip, o.raw.offer_key)]),
                        },
                    );
                }
            }
            self.offers.push(o);
        }
    }

    /// Appends a profile snapshot, keeping the per-package timeline
    /// day-sorted (stable: equal days stay in arrival order).
    pub fn add_profile(&mut self, snap: ProfileSnapshot) {
        let row = self.profiles.len();
        let rows = self.profile_rows.entry(snap.package.clone()).or_default();
        let at = rows.partition_point(|&r| self.profiles[r].day <= snap.day);
        rows.insert(at, row);
        self.profiles.push(snap);
    }

    /// Appends a chart snapshot, updating the presence indices.
    pub fn add_chart(&mut self, snap: ChartSnapshot) {
        self.chart_days.insert(snap.day);
        for (pkg, rank) in &snap.entries {
            let ranks = self
                .chart_ranks
                .entry(snap.chart)
                .or_default()
                .entry(pkg.clone())
                .or_default();
            let at = ranks.partition_point(|&(d, _)| d <= snap.day);
            ranks.insert(at, (snap.day, *rank));
            self.chart_days_by_package
                .entry(pkg.clone())
                .or_default()
                .insert(snap.day);
        }
        self.charts.push(snap);
    }

    /// All raw offer observations.
    pub fn offers(&self) -> &[ScrapedOffer] {
        &self.offers
    }

    /// All profile snapshots.
    pub fn profiles(&self) -> &[ProfileSnapshot] {
        &self.profiles
    }

    /// All chart snapshots.
    pub fn charts(&self) -> &[ChartSnapshot] {
        &self.charts
    }

    /// Deduplicated offers: first observation of each `(iip, key)`.
    pub fn unique_offers(&self) -> Vec<&ScrapedOffer> {
        self.unique_offer_rows
            .iter()
            .map(|&r| &self.offers[r])
            .collect()
    }

    /// Unique offer descriptions (the paper counts 1,128).
    pub fn unique_descriptions(&self) -> BTreeSet<&str> {
        self.descriptions.iter().map(String::as_str).collect()
    }

    /// Unique advertised packages (the paper counts 922).
    pub fn advertised_packages(&self) -> BTreeSet<&str> {
        self.packages.iter().map(String::as_str).collect()
    }

    /// Packages advertised on a specific IIP.
    pub fn packages_on(&self, iip: IipId) -> BTreeSet<&str> {
        self.packages_by_iip
            .get(&iip)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Packages advertised on any vetted (true) / unvetted (false)
    /// platform. Note an app can be in both sets (Table 5's N values
    /// overlap: 492 + 538 > 922).
    pub fn packages_by_class(&self, vetted: bool) -> BTreeSet<&str> {
        self.packages_by_class[usize::from(vetted)]
            .iter()
            .map(String::as_str)
            .collect()
    }

    /// Per-app observation summaries, sorted by package.
    pub fn observations(&self) -> Vec<CampaignObservation> {
        self.observations
            .iter()
            .map(|(pkg, agg)| CampaignObservation {
                package: pkg.clone(),
                iips: agg.iips.clone(),
                first_seen: agg.first_seen,
                last_seen: agg.last_seen,
                offer_count: agg.keys.len(),
            })
            .collect()
    }

    /// Observation for one package.
    pub fn observation(&self, package: &str) -> Option<CampaignObservation> {
        self.observations
            .get(package)
            .map(|agg| CampaignObservation {
                package: package.to_string(),
                iips: agg.iips.clone(),
                first_seen: agg.first_seen,
                last_seen: agg.last_seen,
                offer_count: agg.keys.len(),
            })
    }

    /// Profile timeline of one package, day-ascending.
    pub fn profile_series(&self, package: &str) -> Vec<&ProfileSnapshot> {
        self.profile_rows
            .get(package)
            .map(|rows| rows.iter().map(|&r| &self.profiles[r]).collect())
            .unwrap_or_default()
    }

    /// Days on which `package` appeared in `chart`, with its rank.
    pub fn chart_presence(&self, package: &str, chart: &str) -> Vec<(u64, usize)> {
        self.chart_ranks
            .get(chart)
            .and_then(|per_pkg| per_pkg.get(package))
            .cloned()
            .unwrap_or_default()
    }

    /// Whether `package` appeared in *any* chart in the day range
    /// `[from, to]`.
    pub fn in_any_chart(&self, package: &str, from: u64, to: u64) -> bool {
        self.chart_days_by_package
            .get(package)
            .is_some_and(|days| days.range(from..=to).next().is_some())
    }

    /// Distinct crawl days present in the chart dataset.
    pub fn chart_days(&self) -> BTreeSet<u64> {
        self.chart_days.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::{RawOffer, RewardValue};
    use iiscope_types::Country;

    fn offer(iip: IipId, key: u64, pkg: &str, day: u64, desc: &str) -> ScrapedOffer {
        ScrapedOffer {
            iip,
            raw: RawOffer {
                offer_key: key,
                description: desc.into(),
                reward: RewardValue::Cents(5),
                package: pkg.into(),
                store_url: format!("https://play.iiscope/store/apps/details?id={pkg}"),
            },
            seen_at: SimTime::from_days(day),
            affiliate: "com.cash.app".into(),
            vantage: Country::Us,
        }
    }

    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        d.add_offers([
            offer(IipId::Fyber, 1, "com.a.one", 10, "Install and Register"),
            offer(IipId::Fyber, 1, "com.a.one", 12, "Install and Register"), // re-observed
            offer(IipId::RankApp, 7, "com.a.one", 14, "Install and Launch"),
            offer(IipId::RankApp, 8, "com.b.two", 11, "Install and Launch"),
        ]);
        d
    }

    #[test]
    fn dedup_and_counts() {
        let d = dataset();
        assert_eq!(d.offers().len(), 4);
        assert_eq!(d.unique_offers().len(), 3);
        assert_eq!(d.unique_descriptions().len(), 2);
        assert_eq!(d.advertised_packages().len(), 2);
    }

    #[test]
    fn dedup_keeps_first_seen_fields_across_crawl_days() {
        // The same (iip, key) re-observed on a later crawl day with a
        // drifted payout/description must not displace the first
        // observation in the deduplicated view.
        let mut d = Dataset::new();
        d.add_offers([offer(
            IipId::Fyber,
            42,
            "com.a.one",
            10,
            "Install and Register",
        )]);
        // Second crawl day: identical key, different payout and text.
        let mut drifted = offer(IipId::Fyber, 42, "com.a.one", 12, "Install and win BIG");
        drifted.raw.reward = RewardValue::Cents(99);
        d.add_offers([drifted]);

        assert_eq!(d.offers().len(), 2, "raw log keeps both observations");
        let unique = d.unique_offers();
        assert_eq!(unique.len(), 1);
        assert_eq!(unique[0].seen_at, SimTime::from_days(10));
        assert_eq!(unique[0].raw.reward, RewardValue::Cents(5));
        assert_eq!(unique[0].raw.description, "Install and Register");
        // The campaign window still spans both sightings.
        let obs = d.observation("com.a.one").unwrap();
        assert_eq!(obs.first_seen, SimTime::from_days(10));
        assert_eq!(obs.last_seen, SimTime::from_days(12));
        assert_eq!(obs.offer_count, 1);
    }

    #[test]
    fn per_class_sets_can_overlap() {
        let d = dataset();
        let vetted = d.packages_by_class(true);
        let unvetted = d.packages_by_class(false);
        assert!(vetted.contains("com.a.one"));
        assert!(unvetted.contains("com.a.one"));
        assert!(!vetted.contains("com.b.two"));
        assert_eq!(d.packages_on(IipId::RankApp).len(), 2);
    }

    #[test]
    fn observations_aggregate_windows() {
        let d = dataset();
        let obs = d.observation("com.a.one").unwrap();
        assert_eq!(obs.first_seen, SimTime::from_days(10));
        assert_eq!(obs.last_seen, SimTime::from_days(14));
        assert_eq!(obs.duration_days(), 4);
        assert_eq!(obs.offer_count, 2);
        assert!(obs.on_vetted() && obs.on_unvetted());
        assert!(d.observation("com.none").is_none());
    }

    #[test]
    fn chart_queries() {
        let mut d = dataset();
        d.add_chart(ChartSnapshot {
            day: 10,
            chart: "topselling_free",
            entries: vec![("com.a.one".into(), 3)],
        });
        d.add_chart(ChartSnapshot {
            day: 12,
            chart: "topselling_free",
            entries: vec![("com.b.two".into(), 1)],
        });
        assert_eq!(
            d.chart_presence("com.a.one", "topselling_free"),
            vec![(10, 3)]
        );
        assert!(d.in_any_chart("com.a.one", 9, 11));
        assert!(!d.in_any_chart("com.a.one", 11, 20));
        assert_eq!(d.chart_days().len(), 2);
    }

    #[test]
    fn profile_series_sorted() {
        let mut d = Dataset::new();
        for day in [14u64, 10, 12] {
            d.add_profile(ProfileSnapshot {
                day,
                package: "com.a.one".into(),
                title: "A".into(),
                genre_id: "TOOLS".into(),
                released_day: 1,
                min_installs: 100 * day,
                developer_id: 1,
                developer_name: "d".into(),
                developer_country: "US".into(),
                developer_email: "e".into(),
                developer_website: String::new(),
                rating: 0.0,
                rating_count: 0,
            });
        }
        let series = d.profile_series("com.a.one");
        assert_eq!(
            series.iter().map(|p| p.day).collect::<Vec<_>>(),
            vec![10, 12, 14]
        );
        assert!(d.profile_series("com.none").is_empty());
    }

    #[test]
    fn indexed_accessors_match_a_rescan() {
        // The incremental indices must agree with a straight rescan of
        // the raw log (the pre-index implementation).
        let mut d = dataset();
        d.add_offers([
            offer(IipId::AdGem, 20, "com.c.three", 16, "Install and Launch"),
            offer(IipId::Fyber, 1, "com.a.one", 18, "Install and Register"),
        ]);

        let mut seen = BTreeSet::new();
        let rescan_unique: Vec<&ScrapedOffer> = d
            .offers()
            .iter()
            .filter(|o| seen.insert((o.iip, o.raw.offer_key)))
            .collect();
        let indexed = d.unique_offers();
        assert_eq!(indexed.len(), rescan_unique.len());
        for (a, b) in indexed.iter().zip(&rescan_unique) {
            assert!(std::ptr::eq(*a, *b), "row identity/order drifted");
        }

        let rescan_packages: BTreeSet<&str> =
            d.offers().iter().map(|o| o.raw.package.as_str()).collect();
        assert_eq!(d.advertised_packages(), rescan_packages);

        for iip in [IipId::Fyber, IipId::RankApp, IipId::AdGem] {
            let rescan: BTreeSet<&str> = d
                .offers()
                .iter()
                .filter(|o| o.iip == iip)
                .map(|o| o.raw.package.as_str())
                .collect();
            assert_eq!(d.packages_on(iip), rescan);
        }
    }
}
