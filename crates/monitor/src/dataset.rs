//! The assembled longitudinal dataset and its query surface.
//!
//! §4.1's summary numbers all come from this store: "a total of 2,126
//! offers from 922 unique advertised apps … a total of 1,128 unique
//! offer descriptions". The analyses of §4.2–4.3 query it for campaign
//! windows, per-IIP app sets, profile timelines and chart presence.
//!
//! Queries are backed by **incremental columnar indices** maintained
//! on insert. Package names and offer descriptions are interned into
//! dense [`Sym`]bols at ingest (ingest is sequential — after the
//! parallel milking fan-out merges in plan order — so symbol numbering
//! is a pure function of the seeded simulation at any parallelism).
//! The dedup indices that used to be four `BTreeSet<String>`s per
//! package are bitsets over the symbol space ([`SymSet`]), and the
//! per-package aggregates (`observations`, profile timelines, chart
//! presence) are dense `Vec`s indexed by symbol ([`SymMap`]). Strings
//! are resolved back — and sorted lexicographically where output
//! order demands it — only at the report/CSV boundary, so accessor
//! signatures and values are unchanged from the string-keyed store.

use crate::crawler::{ChartSnapshot, ProfileSnapshot};
use crate::parsers::ScrapedOffer;
use crate::spill::{RowLog, RowLogIter, SpillManifest, SpillStats};
use iiscope_types::{IipId, Interner, SimTime, Sym, SymMap, SymSet};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Per-app summary of everything the monitor saw.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignObservation {
    /// The advertised package.
    pub package: String,
    /// IIPs the app was seen on.
    pub iips: BTreeSet<IipId>,
    /// First offer sighting.
    pub first_seen: SimTime,
    /// Last offer sighting.
    pub last_seen: SimTime,
    /// Distinct offers ((iip, key) pairs).
    pub offer_count: usize,
}

impl CampaignObservation {
    /// Whether any of the app's offers ran on a vetted platform.
    pub fn on_vetted(&self) -> bool {
        self.iips.iter().any(|i| i.is_vetted())
    }

    /// Whether any of the app's offers ran on an unvetted platform.
    pub fn on_unvetted(&self) -> bool {
        self.iips.iter().any(|i| !i.is_vetted())
    }

    /// Campaign duration in days (Table 5/6 use a 25-day average).
    pub fn duration_days(&self) -> u64 {
        (self.last_seen - self.first_seen).days()
    }
}

/// Borrowed per-app summary for the symbol-keyed join paths — the
/// zero-clone view behind [`Dataset::campaign`]. The experiment
/// tables join on [`Sym`] through this; [`CampaignObservation`] (with
/// its owned `String` and cloned sets) remains the report-boundary
/// shape.
#[derive(Debug, Clone, Copy)]
pub struct CampaignRef<'a> {
    /// The advertised package.
    pub package: Sym,
    /// IIPs the app was seen on.
    pub iips: &'a BTreeSet<IipId>,
    /// First offer sighting.
    pub first_seen: SimTime,
    /// Last offer sighting.
    pub last_seen: SimTime,
    /// Distinct offers ((iip, key) pairs).
    pub offer_count: usize,
}

impl CampaignRef<'_> {
    /// Campaign duration in days.
    pub fn duration_days(&self) -> u64 {
        (self.last_seen - self.first_seen).days()
    }
}

/// Interner sizes for the bench dumps (`BENCH_dataset.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct package symbols.
    pub package_symbols: usize,
    /// Bytes in the package slab.
    pub package_slab_bytes: usize,
    /// Distinct description symbols.
    pub description_symbols: usize,
    /// Bytes in the description slab.
    pub description_slab_bytes: usize,
}

/// Incremental per-package aggregate behind [`Dataset::observations`].
#[derive(Debug, Clone)]
struct ObservationAgg {
    iips: BTreeSet<IipId>,
    first_seen: SimTime,
    last_seen: SimTime,
    /// Distinct `(iip, key)` pairs seen under this package.
    keys: BTreeSet<(IipId, u64)>,
}

/// The dataset store.
///
/// The two bulk logs (offer observations, chart snapshots) live in
/// spill-capable [`RowLog`]s: under a memory budget their cold
/// segments move to disk and the accessors stream them back through
/// an LRU — same rows, same order, any budget. Profiles stay fully
/// resident: they are the random-access query surface
/// (`profile_series`, `first_profile`) and modest in size. The first
/// observation of each unique `(iip, key)` is additionally pinned
/// resident, so the experiment joins over `unique_offers` never touch
/// disk.
#[derive(Debug, Default)]
pub struct Dataset {
    offers: RowLog<ScrapedOffer>,
    profiles: Vec<ProfileSnapshot>,
    charts: RowLog<ChartSnapshot>,

    /// Package symbol space (offers ∪ profiles ∪ charts, plus any
    /// seed the world handed to [`Dataset::with_interner`]).
    pkg_syms: Interner,
    /// Description symbol space — interning *is* the dedup index.
    desc_syms: Interner,
    /// Package symbol of each row in `offers` (columnar).
    offer_pkg: Vec<Sym>,
    /// Description symbol of each row in `offers` (columnar).
    offer_desc: Vec<Sym>,

    // Incremental indices, maintained by the `add_*` methods.
    /// Dedup set over `(iip, offer_key)`.
    seen_offer_keys: BTreeSet<(IipId, u64)>,
    /// Rows in `offers` holding the first observation of each key, in
    /// arrival order.
    unique_offer_rows: Vec<usize>,
    /// Pinned-resident clones of those first observations (same order
    /// as `unique_offer_rows`) — what `unique_offers()` borrows from,
    /// so deduplicated joins stay off the spill path.
    unique_rows: Vec<ScrapedOffer>,
    /// Distinct advertised packages.
    advertised: SymSet,
    /// Distinct packages per platform, indexed by `iip as usize`.
    by_iip: [SymSet; IipId::ALL.len()],
    /// Distinct packages on vetted ([1]) / unvetted ([0]) platforms.
    by_class: [SymSet; 2],
    /// Per-package campaign aggregates.
    observations: SymMap<ObservationAgg>,
    /// Rows in `profiles` per package, day-ascending (stable).
    profile_rows: SymMap<Vec<usize>>,
    /// `(day, rank)` per chart, per package.
    chart_ranks: BTreeMap<&'static str, SymMap<Vec<(u64, usize)>>>,
    /// Days each package appeared in any chart, ascending.
    chart_days_by_package: SymMap<Vec<u64>>,
    /// Distinct chart crawl days.
    chart_days: BTreeSet<u64>,
}

impl Dataset {
    /// Empty dataset with empty symbol tables.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Empty dataset whose package symbol space starts from `seed` —
    /// the world's generation-order interner, so dataset symbols agree
    /// with world symbols for every pre-planned name.
    pub fn with_interner(seed: Interner) -> Dataset {
        Dataset {
            pkg_syms: seed,
            ..Dataset::default()
        }
    }

    /// Rebuilds a dataset from checkpointed parts: both symbol tables
    /// plus the three raw logs in original arrival order.
    ///
    /// Only the raw logs and interners are persisted — every index is
    /// a pure function of (interner seed, insertion sequence), so the
    /// restore *re-ingests* the logs through the normal `add_*` paths
    /// with the serialized interners pre-seeded. Pre-seeding matters:
    /// live ingest interleaves offers, profiles and charts across crawl
    /// days, so symbol numbering cannot be re-derived from any one log
    /// alone. Returns an error if re-ingest mints a symbol the
    /// serialized tables did not contain (a corrupt or inconsistent
    /// snapshot), since that would renumber later symbols.
    pub fn from_parts(
        pkg_syms: Interner,
        desc_syms: Interner,
        offers: Vec<ScrapedOffer>,
        profiles: Vec<ProfileSnapshot>,
        charts: Vec<ChartSnapshot>,
    ) -> iiscope_types::Result<Dataset> {
        Dataset::from_parts_with_spill(
            pkg_syms,
            desc_syms,
            &SpillManifest::default(),
            offers,
            profiles,
            &SpillManifest::default(),
            charts,
        )
    }

    /// [`Dataset::from_parts`] for snapshots whose bulk logs were
    /// partially spilled at checkpoint time: each log is a spill
    /// manifest (segments already on disk, verified and reattached —
    /// not re-serialized in the snapshot) plus the resident suffix
    /// rows. Spilled rows are streamed back through the indexing pass
    /// and stay spilled afterwards.
    pub fn from_parts_with_spill(
        pkg_syms: Interner,
        desc_syms: Interner,
        offers_spill: &SpillManifest,
        offers_suffix: Vec<ScrapedOffer>,
        profiles: Vec<ProfileSnapshot>,
        charts_spill: &SpillManifest,
        charts_suffix: Vec<ChartSnapshot>,
    ) -> iiscope_types::Result<Dataset> {
        let spill_err = |what: &str, e: String| {
            iiscope_types::Error::InvalidState(format!("{what} spill manifest: {e}"))
        };
        let mut d = Dataset {
            pkg_syms,
            desc_syms,
            ..Dataset::default()
        };
        let (want_pkg, want_desc) = (d.pkg_syms.len(), d.desc_syms.len());
        d.offers
            .attach(offers_spill)
            .map_err(|e| spill_err("offers", e))?;
        // Stream the attached (possibly disk-resident) rows through the
        // indexing pass; the log is taken out and put back because the
        // indices borrow `self` mutably.
        let log = std::mem::take(&mut d.offers);
        for (row, o) in log.iter().enumerate() {
            d.index_offer(row, &o);
        }
        d.offers = log;
        d.add_offers(offers_suffix);
        for p in profiles {
            d.add_profile(p);
        }
        d.charts
            .attach(charts_spill)
            .map_err(|e| spill_err("charts", e))?;
        let log = std::mem::take(&mut d.charts);
        for c in log.iter() {
            d.index_chart(&c);
        }
        d.charts = log;
        for c in charts_suffix {
            d.add_chart(c);
        }
        if d.pkg_syms.len() != want_pkg || d.desc_syms.len() != want_desc {
            return Err(iiscope_types::Error::InvalidState(format!(
                "dataset restore minted new symbols: {} -> {} packages, {} -> {} descriptions",
                want_pkg,
                d.pkg_syms.len(),
                want_desc,
                d.desc_syms.len()
            )));
        }
        Ok(d)
    }

    /// Sets the resident-memory budget for the spillable logs (split
    /// evenly between offers and charts) and where their spill files
    /// live. `None` keeps everything resident. Spilling never changes
    /// a query result — only where cold rows wait.
    pub fn set_memory_budget(&mut self, budget: Option<u64>, spill_dir: &Path, label: &str) {
        let per_log = budget.map(|b| (b / 2).max(4096));
        self.offers
            .configure(per_log, spill_dir.join(format!("{label}-offers.spill")));
        self.charts
            .configure(per_log, spill_dir.join(format!("{label}-charts.spill")));
    }

    /// Combined spill counters of the offer and chart logs.
    pub fn spill_stats(&self) -> SpillStats {
        self.offers.stats().merged(self.charts.stats())
    }

    /// Spill manifest of the offer log (for checkpointing).
    pub fn offers_spill(&self) -> SpillManifest {
        self.offers.manifest()
    }

    /// Offer rows not covered by [`Dataset::offers_spill`].
    pub fn offers_suffix(&self) -> Vec<ScrapedOffer> {
        self.offers.suffix_rows()
    }

    /// Spill manifest of the chart log (for checkpointing).
    pub fn charts_spill(&self) -> SpillManifest {
        self.charts.manifest()
    }

    /// Chart rows not covered by [`Dataset::charts_spill`].
    pub fn charts_suffix(&self) -> Vec<ChartSnapshot> {
        self.charts.suffix_rows()
    }

    /// Index maintenance for one appended offer row (shared by live
    /// ingest and the restore re-ingest).
    fn index_offer(&mut self, row: usize, o: &ScrapedOffer) {
        if self.seen_offer_keys.insert((o.iip, o.raw.offer_key)) {
            self.unique_offer_rows.push(row);
            self.unique_rows.push(o.clone());
        }
        let desc = self.desc_syms.intern(&o.raw.description);
        let pkg = self.pkg_syms.intern(&o.raw.package);
        self.advertised.insert(pkg);
        self.by_iip[o.iip as usize].insert(pkg);
        self.by_class[usize::from(o.iip.is_vetted())].insert(pkg);
        let agg = self
            .observations
            .get_or_insert_with(pkg, || ObservationAgg {
                iips: BTreeSet::new(),
                first_seen: o.seen_at,
                last_seen: o.seen_at,
                keys: BTreeSet::new(),
            });
        agg.iips.insert(o.iip);
        agg.first_seen = agg.first_seen.min(o.seen_at);
        agg.last_seen = agg.last_seen.max(o.seen_at);
        agg.keys.insert((o.iip, o.raw.offer_key));
        self.offer_pkg.push(pkg);
        self.offer_desc.push(desc);
    }

    /// Appends scraped offers, updating every offer index (including
    /// the `(iip, key)` dedup set — first observation wins).
    pub fn add_offers(&mut self, offers: impl IntoIterator<Item = ScrapedOffer>) {
        for o in offers {
            let row = self.offers.len();
            self.index_offer(row, &o);
            self.offers.push(o);
        }
    }

    /// Appends a profile snapshot, keeping the per-package timeline
    /// day-sorted (stable: equal days stay in arrival order).
    pub fn add_profile(&mut self, snap: ProfileSnapshot) {
        let row = self.profiles.len();
        let pkg = self.pkg_syms.intern(&snap.package);
        let rows = self.profile_rows.get_or_insert_with(pkg, Vec::new);
        let at = rows.partition_point(|&r| self.profiles[r].day <= snap.day);
        rows.insert(at, row);
        self.profiles.push(snap);
    }

    /// Index maintenance for one chart snapshot (shared by live ingest
    /// and the restore re-ingest).
    fn index_chart(&mut self, snap: &ChartSnapshot) {
        self.chart_days.insert(snap.day);
        let per_pkg = self.chart_ranks.entry(snap.chart).or_default();
        for (pkg, rank) in &snap.entries {
            let sym = self.pkg_syms.intern(pkg);
            let ranks = per_pkg.get_or_insert_with(sym, Vec::new);
            let at = ranks.partition_point(|&(d, _)| d <= snap.day);
            ranks.insert(at, (snap.day, *rank));
            let days = self.chart_days_by_package.get_or_insert_with(sym, Vec::new);
            let at = days.partition_point(|&d| d < snap.day);
            if days.get(at) != Some(&snap.day) {
                days.insert(at, snap.day);
            }
        }
    }

    /// Appends a chart snapshot, updating the presence indices.
    pub fn add_chart(&mut self, snap: ChartSnapshot) {
        self.index_chart(&snap);
        self.charts.push(snap);
    }

    /// All raw offer observations, in arrival order. Streams owned
    /// rows so spilled segments can be decoded on the fly; the
    /// iterator is exact-sized (`.len()` is the row count).
    pub fn offers(&self) -> RowLogIter<'_, ScrapedOffer> {
        self.offers.iter()
    }

    /// All profile snapshots.
    pub fn profiles(&self) -> &[ProfileSnapshot] {
        &self.profiles
    }

    /// All chart snapshots, in arrival order (streaming, like
    /// [`Dataset::offers`]).
    pub fn charts(&self) -> RowLogIter<'_, ChartSnapshot> {
        self.charts.iter()
    }

    /// Deduplicated offers: first observation of each `(iip, key)`.
    /// Served from the pinned-resident copies — never touches the
    /// spill path.
    pub fn unique_offers(&self) -> Vec<&ScrapedOffer> {
        self.unique_rows.iter().collect()
    }

    /// Deduplicated offers with their package and description symbols
    /// — the columnar view the experiment joins run on.
    pub fn unique_offers_with_syms(&self) -> impl Iterator<Item = (&ScrapedOffer, Sym, Sym)> + '_ {
        self.unique_rows
            .iter()
            .zip(&self.unique_offer_rows)
            .map(|(o, &r)| (o, self.offer_pkg[r], self.offer_desc[r]))
    }

    /// Number of deduplicated offers ingested so far — the cursor an
    /// incremental fold records so its next delta pass starts where
    /// this one ended.
    pub fn unique_offer_count(&self) -> usize {
        self.unique_rows.len()
    }

    /// Delta view of [`Dataset::unique_offers_with_syms`]: the
    /// deduplicated offers appended at index `start` and later. Served
    /// from the pinned-resident copies, so a per-day fold never touches
    /// the spill path.
    pub fn unique_offers_with_syms_from(
        &self,
        start: usize,
    ) -> impl Iterator<Item = (&ScrapedOffer, Sym, Sym)> + '_ {
        let start = start.min(self.unique_rows.len());
        self.unique_rows[start..]
            .iter()
            .zip(&self.unique_offer_rows[start..])
            .map(|(o, &r)| (o, self.offer_pkg[r], self.offer_desc[r]))
    }

    /// Number of chart snapshots ingested so far (the chart-log
    /// cursor for incremental folds).
    pub fn charts_len(&self) -> usize {
        self.charts.len()
    }

    /// Delta view of [`Dataset::charts`]: snapshots appended at row
    /// `start` and later. A cursor past the spilled prefix streams
    /// straight from resident segments without reloading cold ones.
    pub fn charts_from(&self, start: usize) -> RowLogIter<'_, ChartSnapshot> {
        self.charts.iter_from(start)
    }

    /// Unique offer descriptions (the paper counts 1,128).
    pub fn unique_descriptions(&self) -> BTreeSet<&str> {
        self.desc_syms.iter().map(|(_, s)| s).collect()
    }

    /// Unique advertised packages (the paper counts 922).
    pub fn advertised_packages(&self) -> BTreeSet<&str> {
        self.resolve_set(&self.advertised)
    }

    /// Packages advertised on a specific IIP.
    pub fn packages_on(&self, iip: IipId) -> BTreeSet<&str> {
        self.resolve_set(&self.by_iip[iip as usize])
    }

    /// Packages advertised on any vetted (true) / unvetted (false)
    /// platform. Note an app can be in both sets (Table 5's N values
    /// overlap: 492 + 538 > 922).
    pub fn packages_by_class(&self, vetted: bool) -> BTreeSet<&str> {
        self.resolve_set(&self.by_class[usize::from(vetted)])
    }

    fn resolve_set(&self, set: &SymSet) -> BTreeSet<&str> {
        set.iter().map(|s| self.pkg_syms.resolve(s)).collect()
    }

    /// The package symbol table (shared with the world's interner when
    /// built via [`Dataset::with_interner`]).
    pub fn package_interner(&self) -> &Interner {
        &self.pkg_syms
    }

    /// The offer-description symbol table.
    pub fn description_interner(&self) -> &Interner {
        &self.desc_syms
    }

    /// Symbol of a package name, if it was ever observed or seeded.
    pub fn pkg_sym(&self, package: &str) -> Option<Sym> {
        self.pkg_syms.get(package)
    }

    /// The package name behind a symbol.
    pub fn pkg_name(&self, sym: Sym) -> &str {
        self.pkg_syms.resolve(sym)
    }

    /// Advertised packages as a bitset over the symbol space.
    pub fn advertised_syms(&self) -> &SymSet {
        &self.advertised
    }

    /// Per-class advertised packages as a bitset.
    pub fn class_syms(&self, vetted: bool) -> &SymSet {
        &self.by_class[usize::from(vetted)]
    }

    /// Per-IIP advertised packages as a bitset.
    pub fn iip_syms(&self, iip: IipId) -> &SymSet {
        &self.by_iip[iip as usize]
    }

    /// Per-app observation summaries, sorted by package.
    pub fn observations(&self) -> Vec<CampaignObservation> {
        let mut named: Vec<(&str, &ObservationAgg)> = self
            .observations
            .iter()
            .map(|(sym, agg)| (self.pkg_syms.resolve(sym), agg))
            .collect();
        named.sort_unstable_by_key(|(name, _)| *name);
        named
            .into_iter()
            .map(|(name, agg)| CampaignObservation {
                package: name.to_string(),
                iips: agg.iips.clone(),
                first_seen: agg.first_seen,
                last_seen: agg.last_seen,
                offer_count: agg.keys.len(),
            })
            .collect()
    }

    /// Observation for one package.
    pub fn observation(&self, package: &str) -> Option<CampaignObservation> {
        let sym = self.pkg_syms.get(package)?;
        self.observations.get(sym).map(|agg| CampaignObservation {
            package: package.to_string(),
            iips: agg.iips.clone(),
            first_seen: agg.first_seen,
            last_seen: agg.last_seen,
            offer_count: agg.keys.len(),
        })
    }

    /// Borrowed observation summary for one package symbol.
    pub fn campaign(&self, sym: Sym) -> Option<CampaignRef<'_>> {
        self.observations.get(sym).map(|agg| CampaignRef {
            package: sym,
            iips: &agg.iips,
            first_seen: agg.first_seen,
            last_seen: agg.last_seen,
            offer_count: agg.keys.len(),
        })
    }

    /// All borrowed observation summaries, in symbol order. Use for
    /// order-insensitive aggregation; [`Dataset::observations`] is the
    /// lexicographically-sorted report-boundary view.
    pub fn campaigns(&self) -> impl Iterator<Item = CampaignRef<'_>> + '_ {
        self.observations.iter().map(|(sym, agg)| CampaignRef {
            package: sym,
            iips: &agg.iips,
            first_seen: agg.first_seen,
            last_seen: agg.last_seen,
            offer_count: agg.keys.len(),
        })
    }

    /// Profile timeline of one package, day-ascending.
    pub fn profile_series(&self, package: &str) -> Vec<&ProfileSnapshot> {
        self.pkg_syms
            .get(package)
            .map(|sym| self.profile_series_sym(sym))
            .unwrap_or_default()
    }

    /// Profile timeline of one package symbol, day-ascending.
    pub fn profile_series_sym(&self, sym: Sym) -> Vec<&ProfileSnapshot> {
        self.profile_rows
            .get(sym)
            .map(|rows| rows.iter().map(|&r| &self.profiles[r]).collect())
            .unwrap_or_default()
    }

    /// First profile snapshot of one package symbol (crawl-day order).
    pub fn first_profile_sym(&self, sym: Sym) -> Option<&ProfileSnapshot> {
        self.profile_rows
            .get(sym)
            .and_then(|rows| rows.first())
            .map(|&r| &self.profiles[r])
    }

    /// Days on which `package` appeared in `chart`, with its rank.
    pub fn chart_presence(&self, package: &str, chart: &str) -> Vec<(u64, usize)> {
        self.pkg_syms
            .get(package)
            .map(|sym| self.chart_presence_sym(sym, chart).to_vec())
            .unwrap_or_default()
    }

    /// Borrowed `(day, rank)` timeline of one package symbol in
    /// `chart`.
    pub fn chart_presence_sym(&self, sym: Sym, chart: &str) -> &[(u64, usize)] {
        self.chart_ranks
            .get(chart)
            .and_then(|per_pkg| per_pkg.get(sym))
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Whether `package` appeared in *any* chart in the day range
    /// `[from, to]`.
    pub fn in_any_chart(&self, package: &str, from: u64, to: u64) -> bool {
        self.pkg_syms
            .get(package)
            .is_some_and(|sym| self.in_any_chart_sym(sym, from, to))
    }

    /// Symbol-keyed variant of [`Dataset::in_any_chart`].
    pub fn in_any_chart_sym(&self, sym: Sym, from: u64, to: u64) -> bool {
        self.chart_days_by_package.get(sym).is_some_and(|days| {
            days.get(days.partition_point(|&d| d < from))
                .is_some_and(|&d| d <= to)
        })
    }

    /// Distinct crawl days present in the chart dataset.
    pub fn chart_days(&self) -> &BTreeSet<u64> {
        &self.chart_days
    }

    /// Symbol-table sizes for the bench dumps.
    pub fn intern_stats(&self) -> InternStats {
        InternStats {
            package_symbols: self.pkg_syms.len(),
            package_slab_bytes: self.pkg_syms.slab_bytes(),
            description_symbols: self.desc_syms.len(),
            description_slab_bytes: self.desc_syms.slab_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::{RawOffer, RewardValue};
    use iiscope_types::Country;

    fn offer(iip: IipId, key: u64, pkg: &str, day: u64, desc: &str) -> ScrapedOffer {
        ScrapedOffer {
            iip,
            raw: RawOffer {
                offer_key: key,
                description: desc.into(),
                reward: RewardValue::Cents(5),
                package: pkg.into(),
                store_url: format!("https://play.iiscope/store/apps/details?id={pkg}"),
            },
            seen_at: SimTime::from_days(day),
            affiliate: "com.cash.app".into(),
            vantage: Country::Us,
        }
    }

    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        d.add_offers([
            offer(IipId::Fyber, 1, "com.a.one", 10, "Install and Register"),
            offer(IipId::Fyber, 1, "com.a.one", 12, "Install and Register"), // re-observed
            offer(IipId::RankApp, 7, "com.a.one", 14, "Install and Launch"),
            offer(IipId::RankApp, 8, "com.b.two", 11, "Install and Launch"),
        ]);
        d
    }

    #[test]
    fn dedup_and_counts() {
        let d = dataset();
        assert_eq!(d.offers().len(), 4);
        assert_eq!(d.unique_offers().len(), 3);
        assert_eq!(d.unique_descriptions().len(), 2);
        assert_eq!(d.advertised_packages().len(), 2);
    }

    #[test]
    fn dedup_keeps_first_seen_fields_across_crawl_days() {
        // The same (iip, key) re-observed on a later crawl day with a
        // drifted payout/description must not displace the first
        // observation in the deduplicated view.
        let mut d = Dataset::new();
        d.add_offers([offer(
            IipId::Fyber,
            42,
            "com.a.one",
            10,
            "Install and Register",
        )]);
        // Second crawl day: identical key, different payout and text.
        let mut drifted = offer(IipId::Fyber, 42, "com.a.one", 12, "Install and win BIG");
        drifted.raw.reward = RewardValue::Cents(99);
        d.add_offers([drifted]);

        assert_eq!(d.offers().len(), 2, "raw log keeps both observations");
        let unique = d.unique_offers();
        assert_eq!(unique.len(), 1);
        assert_eq!(unique[0].seen_at, SimTime::from_days(10));
        assert_eq!(unique[0].raw.reward, RewardValue::Cents(5));
        assert_eq!(unique[0].raw.description, "Install and Register");
        // The campaign window still spans both sightings.
        let obs = d.observation("com.a.one").unwrap();
        assert_eq!(obs.first_seen, SimTime::from_days(10));
        assert_eq!(obs.last_seen, SimTime::from_days(12));
        assert_eq!(obs.offer_count, 1);
    }

    #[test]
    fn per_class_sets_can_overlap() {
        let d = dataset();
        let vetted = d.packages_by_class(true);
        let unvetted = d.packages_by_class(false);
        assert!(vetted.contains("com.a.one"));
        assert!(unvetted.contains("com.a.one"));
        assert!(!vetted.contains("com.b.two"));
        assert_eq!(d.packages_on(IipId::RankApp).len(), 2);
    }

    #[test]
    fn observations_aggregate_windows() {
        let d = dataset();
        let obs = d.observation("com.a.one").unwrap();
        assert_eq!(obs.first_seen, SimTime::from_days(10));
        assert_eq!(obs.last_seen, SimTime::from_days(14));
        assert_eq!(obs.duration_days(), 4);
        assert_eq!(obs.offer_count, 2);
        assert!(obs.on_vetted() && obs.on_unvetted());
        assert!(d.observation("com.none").is_none());
    }

    #[test]
    fn sym_accessors_mirror_string_accessors() {
        let d = dataset();
        let sym = d.pkg_sym("com.a.one").expect("interned");
        assert_eq!(d.pkg_name(sym), "com.a.one");
        let obs = d.observation("com.a.one").unwrap();
        let by_sym = d.campaign(sym).expect("observed");
        assert_eq!(by_sym.first_seen, obs.first_seen);
        assert_eq!(by_sym.last_seen, obs.last_seen);
        assert_eq!(by_sym.offer_count, obs.offer_count);
        assert_eq!(by_sym.iips, &obs.iips);
        assert_eq!(d.advertised_syms().len(), d.advertised_packages().len());
        assert!(d.class_syms(true).contains(sym));
        assert!(d.iip_syms(IipId::Fyber).contains(sym));
        // The columnar unique view carries matching symbols.
        for (o, pkg, desc) in d.unique_offers_with_syms() {
            assert_eq!(d.pkg_name(pkg), o.raw.package);
            assert_eq!(d.pkg_sym(&o.raw.package), Some(pkg));
            assert!(!d.pkg_name(pkg).is_empty());
            let _ = desc;
        }
        assert_eq!(d.campaigns().count(), d.observations().len());
    }

    #[test]
    fn seeded_interner_preserves_world_numbering() {
        let mut seed = Interner::new();
        let pre = seed.intern("com.planned.app");
        let d = Dataset::with_interner(seed);
        assert_eq!(d.pkg_sym("com.planned.app"), Some(pre));
        // Seeded-but-unobserved names are not advertised.
        assert!(d.advertised_packages().is_empty());
        assert!(!d.advertised_syms().contains(pre));
    }

    #[test]
    fn chart_queries() {
        let mut d = dataset();
        d.add_chart(ChartSnapshot {
            day: 10,
            chart: "topselling_free",
            entries: vec![("com.a.one".into(), 3)],
        });
        d.add_chart(ChartSnapshot {
            day: 12,
            chart: "topselling_free",
            entries: vec![("com.b.two".into(), 1)],
        });
        assert_eq!(
            d.chart_presence("com.a.one", "topselling_free"),
            vec![(10, 3)]
        );
        assert!(d.in_any_chart("com.a.one", 9, 11));
        assert!(!d.in_any_chart("com.a.one", 11, 20));
        assert_eq!(d.chart_days().len(), 2);
    }

    #[test]
    fn profile_series_sorted() {
        let mut d = Dataset::new();
        for day in [14u64, 10, 12] {
            d.add_profile(ProfileSnapshot {
                day,
                package: "com.a.one".into(),
                title: "A".into(),
                genre_id: "TOOLS".into(),
                released_day: 1,
                min_installs: 100 * day,
                developer_id: 1,
                developer_name: "d".into(),
                developer_country: "US".into(),
                developer_email: "e".into(),
                developer_website: String::new(),
                rating: 0.0,
                rating_count: 0,
            });
        }
        let series = d.profile_series("com.a.one");
        assert_eq!(
            series.iter().map(|p| p.day).collect::<Vec<_>>(),
            vec![10, 12, 14]
        );
        assert!(d.profile_series("com.none").is_empty());
        let sym = d.pkg_sym("com.a.one").unwrap();
        assert_eq!(d.first_profile_sym(sym).unwrap().day, 10);
    }

    #[test]
    fn from_parts_round_trips_interleaved_ingest() {
        // Interleave offers / profiles / charts the way crawl days do,
        // so symbol numbering depends on the interleaving.
        let mut live = dataset();
        live.add_profile(ProfileSnapshot {
            day: 10,
            package: "com.z.late".into(),
            title: "Z".into(),
            genre_id: "TOOLS".into(),
            released_day: 1,
            min_installs: 500,
            developer_id: 9,
            developer_name: "z".into(),
            developer_country: "US".into(),
            developer_email: "z@z".into(),
            developer_website: String::new(),
            rating: 4.5,
            rating_count: 3,
        });
        live.add_chart(ChartSnapshot {
            day: 10,
            chart: "topselling_free",
            entries: vec![("com.chart.only".into(), 1)],
        });
        live.add_offers([offer(IipId::AdGem, 30, "com.c.three", 12, "Install")]);

        let restored = Dataset::from_parts(
            live.package_interner().clone(),
            live.description_interner().clone(),
            live.offers().collect(),
            live.profiles().to_vec(),
            live.charts().collect(),
        )
        .unwrap();

        assert_eq!(restored.package_interner(), live.package_interner());
        assert_eq!(restored.description_interner(), live.description_interner());
        assert_eq!(
            restored.offers().collect::<Vec<_>>(),
            live.offers().collect::<Vec<_>>()
        );
        assert_eq!(restored.profiles(), live.profiles());
        assert_eq!(
            restored.charts().collect::<Vec<_>>(),
            live.charts().collect::<Vec<_>>()
        );
        assert_eq!(restored.unique_offers(), live.unique_offers());
        assert_eq!(restored.advertised_packages(), live.advertised_packages());
        assert_eq!(restored.observations(), live.observations());
        assert_eq!(
            restored.chart_presence("com.chart.only", "topselling_free"),
            live.chart_presence("com.chart.only", "topselling_free")
        );
        assert_eq!(
            restored.profile_series("com.z.late"),
            live.profile_series("com.z.late")
        );

        // A snapshot whose interner is missing an ingested string is
        // rejected (it would renumber symbols), never silently used.
        let bad = Dataset::from_parts(
            Interner::new(),
            live.description_interner().clone(),
            live.offers().collect(),
            vec![],
            vec![],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn spilled_dataset_matches_resident_dataset() {
        let spill_dir = std::env::temp_dir().join(format!(
            "iiscope-ds-spill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&spill_dir);
        let many: Vec<ScrapedOffer> = (0..3_000)
            .map(|k| {
                offer(
                    IipId::ALL[k % IipId::ALL.len()],
                    k as u64 % 700,
                    &format!("com.app.{}", k % 120),
                    (k % 90) as u64,
                    &format!("Install and run #{}", k % 40),
                )
            })
            .collect();
        let charts: Vec<ChartSnapshot> = (0..200)
            .map(|day| ChartSnapshot {
                day,
                chart: "topselling_free",
                entries: (0..50)
                    .map(|r| (format!("com.app.{}", (day + r) % 120), r as usize))
                    .collect(),
            })
            .collect();

        let mut resident = Dataset::new();
        resident.add_offers(many.clone());
        for c in charts.clone() {
            resident.add_chart(c.clone());
        }

        let mut spilled = Dataset::new();
        spilled.set_memory_budget(Some(32 * 1024), &spill_dir, "test");
        spilled.add_offers(many);
        for c in charts {
            spilled.add_chart(c);
        }
        let stats = spilled.spill_stats();
        assert!(stats.spilled_segments > 0, "budget must force spilling");

        // Every query surface agrees between the two datasets.
        assert_eq!(
            spilled.offers().collect::<Vec<_>>(),
            resident.offers().collect::<Vec<_>>()
        );
        assert_eq!(
            spilled.charts().collect::<Vec<_>>(),
            resident.charts().collect::<Vec<_>>()
        );
        assert_eq!(spilled.unique_offers(), resident.unique_offers());
        assert_eq!(spilled.observations(), resident.observations());
        assert_eq!(
            spilled.advertised_packages(),
            resident.advertised_packages()
        );
        assert_eq!(spilled.chart_days(), resident.chart_days());

        // A spilled dataset restores from (manifest, suffix) without
        // re-serializing the cold segments.
        let restored = Dataset::from_parts_with_spill(
            spilled.package_interner().clone(),
            spilled.description_interner().clone(),
            &spilled.offers_spill(),
            spilled.offers_suffix(),
            spilled.profiles().to_vec(),
            &spilled.charts_spill(),
            spilled.charts_suffix(),
        )
        .unwrap();
        assert_eq!(
            restored.offers().collect::<Vec<_>>(),
            resident.offers().collect::<Vec<_>>()
        );
        assert_eq!(
            restored.charts().collect::<Vec<_>>(),
            resident.charts().collect::<Vec<_>>()
        );
        assert_eq!(restored.observations(), resident.observations());
        assert!(restored.spill_stats().spilled_segments > 0);
        let _ = std::fs::remove_dir_all(&spill_dir);
    }

    #[test]
    fn indexed_accessors_match_a_rescan() {
        // The incremental indices must agree with a straight rescan of
        // the raw log (the pre-index implementation).
        let mut d = dataset();
        d.add_offers([
            offer(IipId::AdGem, 20, "com.c.three", 16, "Install and Launch"),
            offer(IipId::Fyber, 1, "com.a.one", 18, "Install and Register"),
        ]);

        let mut seen = BTreeSet::new();
        let rescan_unique: Vec<ScrapedOffer> = d
            .offers()
            .filter(|o| seen.insert((o.iip, o.raw.offer_key)))
            .collect();
        let indexed = d.unique_offers();
        assert_eq!(indexed.len(), rescan_unique.len());
        for (a, b) in indexed.iter().zip(&rescan_unique) {
            assert_eq!(*a, b, "row value/order drifted");
        }

        let rescan_packages: BTreeSet<String> = d.offers().map(|o| o.raw.package).collect();
        let advertised: BTreeSet<String> = d
            .advertised_packages()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(advertised, rescan_packages);

        for iip in [IipId::Fyber, IipId::RankApp, IipId::AdGem] {
            let rescan: BTreeSet<String> = d
                .offers()
                .filter(|o| o.iip == iip)
                .map(|o| o.raw.package)
                .collect();
            let on: BTreeSet<String> = d.packages_on(iip).iter().map(|s| s.to_string()).collect();
            assert_eq!(on, rescan);
        }

        let stats = d.intern_stats();
        assert_eq!(stats.package_symbols, 3);
        assert_eq!(stats.description_symbols, 2);
        assert!(stats.package_slab_bytes > 0);
    }
}
