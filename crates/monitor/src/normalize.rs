//! Reward normalization: whatever a wall displays → USD.
//!
//! §4.1: "offer payouts use different point systems across different
//! affiliate apps. We normalize offer payouts … by converting their
//! points to equivalent dollar amounts" (footnote: "By analyzing
//! affiliate apps, we convert these reward points to an equivalent
//! offer payout in USD that can be redeemed through gift cards").
//!
//! The [`RateBook`] is the product of that manual analysis: a mapping
//! from affiliate package to points-per-dollar. It is built from the
//! affiliate-app catalog by the rig, not leaked from IIP internals.

use crate::parsers::RewardValue;
use iiscope_types::Usd;
use std::collections::BTreeMap;

/// Redemption rates per affiliate app.
#[derive(Debug, Clone, Default)]
pub struct RateBook {
    rates: BTreeMap<String, u64>,
}

impl RateBook {
    /// Empty book.
    pub fn new() -> RateBook {
        RateBook::default()
    }

    /// Records an affiliate's points-per-dollar redemption rate.
    pub fn set_rate(&mut self, affiliate: impl Into<String>, points_per_dollar: u64) {
        self.rates.insert(affiliate.into(), points_per_dollar);
    }

    /// Builds the book from the monitored affiliate apps.
    pub fn from_catalog(apps: &[iiscope_devices::AffiliateApp]) -> RateBook {
        let mut book = RateBook::new();
        for app in apps {
            book.set_rate(app.package.as_str(), app.points_per_dollar);
        }
        book
    }

    /// Known rate for an affiliate.
    pub fn rate(&self, affiliate: &str) -> Option<u64> {
        self.rates.get(affiliate).copied()
    }

    /// Converts a displayed reward into USD. Point conversions need
    /// the observing affiliate's rate; unknown affiliates yield `None`
    /// (those offers are dropped from payout analyses, as unlabelled
    /// data would be).
    pub fn to_usd(&self, reward: RewardValue, affiliate: &str) -> Option<Usd> {
        match reward {
            RewardValue::Usd(d) if d.is_finite() && d >= 0.0 => {
                Some(Usd::from_micros((d * 1e6).round() as i64))
            }
            RewardValue::Usd(_) => None,
            RewardValue::Cents(c) if c >= 0 => Some(Usd::from_cents(c)),
            RewardValue::Cents(_) => None,
            RewardValue::Points(p) => {
                let rate = self.rate(affiliate)?;
                if p < 0 || rate == 0 {
                    return None;
                }
                Some(Usd::from_micros(
                    ((p as f64 / rate as f64) * 1e6).round() as i64
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usd_and_cents_are_direct() {
        let book = RateBook::new();
        assert_eq!(
            book.to_usd(RewardValue::Usd(0.525), "whoever").unwrap(),
            Usd::from_micros(525_000)
        );
        assert_eq!(
            book.to_usd(RewardValue::Cents(7), "whoever").unwrap(),
            Usd::from_cents(7)
        );
    }

    #[test]
    fn points_need_a_rate() {
        let mut book = RateBook::new();
        assert_eq!(book.to_usd(RewardValue::Points(500), "com.cash.app"), None);
        book.set_rate("com.cash.app", 1_000);
        assert_eq!(
            book.to_usd(RewardValue::Points(500), "com.cash.app")
                .unwrap(),
            Usd::from_cents(50)
        );
        // A different affiliate's rate gives a different dollar value
        // for the same point count — the normalization problem.
        book.set_rate("com.other.app", 100);
        assert_eq!(
            book.to_usd(RewardValue::Points(500), "com.other.app")
                .unwrap(),
            Usd::from_dollars(5)
        );
    }

    #[test]
    fn garbage_rewards_rejected() {
        let mut book = RateBook::new();
        book.set_rate("a.b", 100);
        assert_eq!(book.to_usd(RewardValue::Usd(f64::NAN), "a.b"), None);
        assert_eq!(book.to_usd(RewardValue::Usd(-1.0), "a.b"), None);
        assert_eq!(book.to_usd(RewardValue::Cents(-5), "a.b"), None);
        assert_eq!(book.to_usd(RewardValue::Points(-5), "a.b"), None);
        book.set_rate("zero", 0);
        assert_eq!(book.to_usd(RewardValue::Points(5), "zero"), None);
    }

    #[test]
    fn catalog_round_trip() {
        let apps = iiscope_devices::AffiliateApp::table2_catalog();
        let book = RateBook::from_catalog(&apps);
        for app in &apps {
            assert_eq!(book.rate(app.package.as_str()), Some(app.points_per_dollar));
        }
        // A wall shows 2,500 points on CashPirate (2,500 pts/$):
        // that's a dollar.
        assert_eq!(
            book.to_usd(RewardValue::Points(2_500), "com.ayet.cashpirate")
                .unwrap(),
            Usd::from_dollars(1)
        );
    }
}
