//! The monitoring rig: monitored phone, vantage points, MITM position,
//! intercept parsing.
//!
//! Figure 3's three boxes live here: the automation script (the
//! [`crate::UiFuzzer`]), the Android phone (an [`HttpClient`] whose
//! trust store carries the monitor CA and whose traffic is routed
//! through the proxy), and the MITM proxy (bound on the network by the
//! world builder; this rig only holds its address and intercept log).
//! §4.1's vantage points are modelled as one egress address per
//! country, allocated on the VPN-exit ASes ("datacenter VPN proxies
//! offered by luminati.io").

use crate::parsers::{parse_wall, ScrapedOffer};
use iiscope_devices::AffiliateApp;
use iiscope_netsim::{Direction, HostAddr, Network};
use iiscope_types::chaosstats;
use iiscope_types::{Country, IipId, Result, SeedFork};
use iiscope_wire::tls::{InterceptLog, TrustStore};
use iiscope_wire::{HttpClient, RequestView, ResponseView, RetryPolicy};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The assembled monitoring infrastructure.
pub struct MonitoringInfra {
    /// The world's network.
    pub net: Network,
    /// MITM proxy endpoint the phone's traffic is routed through.
    pub proxy: (Ipv4Addr, u16),
    /// The proxy's decrypted-traffic log.
    pub intercepts: InterceptLog,
    /// The phone's trust store (genuine roots + the installed monitor
    /// CA).
    pub phone_roots: TrustStore,
    /// Phone egress address per vantage country.
    pub vantage_addrs: BTreeMap<Country, HostAddr>,
    /// Certificate pins installed in the monitored affiliate apps
    /// (hostname → expected leaf key). Empty in the paper's world —
    /// "none of the offer walls uses certificate pinning" — and
    /// populated by the pinning ablation, where it blinds the pipeline.
    pub pins: Vec<(String, u64)>,
    /// Determinism root.
    pub seed: SeedFork,
}

impl MonitoringInfra {
    /// The phone's HTTP client when milking from `country`.
    pub fn phone_client(&self, country: Country) -> Result<HttpClient> {
        let addr = self.vantage_addrs.get(&country).ok_or_else(|| {
            iiscope_types::Error::NotFound(format!("no vantage point in {country}"))
        })?;
        let mut client = HttpClient::new(
            self.net.clone(),
            *addr,
            self.phone_roots.clone(),
            self.seed.fork("phone").fork(country.code()),
        )
        .via_proxy(self.proxy.0, self.proxy.1)
        .with_retry_policy(RetryPolicy::exponential(4));
        for (host, key) in &self.pins {
            client = client.with_pin(host.clone(), *key);
        }
        Ok(client)
    }

    /// Milks one affiliate app from one vantage point: drives the
    /// fuzzer under an intercept tap, then parses exactly what this
    /// run's traffic produced.
    ///
    /// The tap ([`InterceptLog::tap_scope`]) captures the plaintext on
    /// the calling thread instead of the shared log, so concurrent
    /// milk jobs on different threads never see each other's pages —
    /// this is what makes the wild study's crawl-day fan-out safe.
    pub fn milk(
        &self,
        app: &AffiliateApp,
        country: Country,
        fuzzer: &crate::UiFuzzer,
    ) -> Result<Vec<ScrapedOffer>> {
        // Consume the log: anything left by earlier (non-milk) traffic
        // is not ours to parse, and draining keeps long runs from
        // hoarding every page body.
        let _stale = self.intercepts.take_all();
        let mut client = self.phone_client(country)?;
        let (run, intercepts) = self.intercepts.tap_scope(|| fuzzer.drive(app, &mut client));
        run?;
        Ok(parse_intercepts(&intercepts, country))
    }
}

/// Maps an intercepted SNI back to the IIP whose wall it is.
fn iip_for_sni(sni: &str) -> Option<IipId> {
    IipId::ALL
        .into_iter()
        .find(|iip| AffiliateApp::wall_host(*iip) == sni)
}

/// Parses a slice of intercepts into scraped offers.
///
/// Requests and responses are paired per SNI in log order: the proxy
/// appends the request before its response, so the most recent
/// ToServer request for an SNI is the one a ToClient body answers.
///
/// The whole path works over borrowed views of the intercepted
/// plaintext: header fields and bodies stay slices of the MITM tap's
/// refcounted buffers, and the wall body is handed to [`parse_wall`]
/// as `&str` without the old `body_text()` copy. `Content-Length` is
/// validated once, inside the view parser; nothing here re-derives it.
pub fn parse_intercepts(
    intercepts: &[iiscope_wire::tls::Intercept],
    vantage: Country,
) -> Vec<ScrapedOffer> {
    let mut last_affiliate: BTreeMap<String, String> = BTreeMap::new();
    let mut scraped = Vec::new();
    for i in intercepts {
        let Some(iip) = iip_for_sni(&i.sni) else {
            continue; // not offer-wall traffic
        };
        match i.dir {
            Direction::ToServer => {
                if let Ok(Some((req, _))) = RequestView::parse(&i.plaintext) {
                    if let Some(aff) = req.query_param("affiliate") {
                        last_affiliate.insert(i.sni.clone(), aff);
                    }
                }
            }
            Direction::ToClient => {
                // A wall response that reached the tap but cannot be
                // parsed — truncated framing, garbage bytes, a body
                // that is not the expected JSON — is counted as a
                // partial wall so chaos sweeps can see the damage.
                let Ok(Some((resp, _))) = ResponseView::parse(&i.plaintext) else {
                    chaosstats::add_walls_partial(1);
                    continue;
                };
                if !resp.is_success() {
                    continue;
                }
                let Ok(body) = resp.body_str() else {
                    chaosstats::add_walls_partial(1);
                    continue; // non-UTF-8 body cannot be a wall page
                };
                let Ok(page) = parse_wall(iip, body) else {
                    chaosstats::add_walls_partial(1);
                    continue;
                };
                let affiliate = last_affiliate.get(&i.sni).cloned().unwrap_or_default();
                for raw in page.offers {
                    scraped.push(ScrapedOffer {
                        iip,
                        raw,
                        seen_at: i.at,
                        affiliate: affiliate.clone(),
                        vantage,
                    });
                }
            }
        }
    }
    scraped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuzzerConfig, UiFuzzer};
    use iiscope_attribution::ConversionGoal;
    use iiscope_iip::{CampaignSpec, DeveloperApplication, IipPlatform, OfferWallHandler};
    use iiscope_netsim::{AsnKind, SessionFactory};
    use iiscope_types::{DeveloperId, PackageName, SeedFork, SimTime, Usd};
    use iiscope_wire::server::HttpsFactory;
    use iiscope_wire::tls::{CertAuthority, MitmProxy, ServerIdentity};
    use std::sync::Arc;

    /// Builds a mini world: one IIP wall behind TLS, the MITM proxy,
    /// and a two-vantage monitoring rig.
    fn rig(iip: IipId, n_offers: u64) -> (MonitoringInfra, Arc<IipPlatform>) {
        let seed = SeedFork::new(4141);
        let net = Network::new(seed.fork("net"));
        let mut ca = CertAuthority::new("iiscope Public CA", seed.fork("ca"));
        let mut genuine = TrustStore::new();
        genuine.install_root(ca.root_cert());

        // The platform + wall service.
        let platform = Arc::new(IipPlatform::new(iip, seed.fork("iip")));
        platform
            .register_developer(&DeveloperApplication {
                developer: DeveloperId(1),
                has_tax_id: true,
                has_bank_account: true,
                deposit: Usd::from_dollars(10_000),
            })
            .unwrap();
        for i in 0..n_offers {
            platform
                .create_campaign(
                    CampaignSpec {
                        developer: DeveloperId(1),
                        package: PackageName::new(format!("com.adv.w{i}")).unwrap(),
                        store_url: format!(
                            "https://play.iiscope/store/apps/details?id=com.adv.w{i}"
                        ),
                        goal: ConversionGoal::InstallAndOpen,
                        payout: Usd::from_cents(10),
                        cap: 100,
                        countries: vec![],
                    },
                    SimTime::EPOCH,
                )
                .unwrap();
        }
        let wall = OfferWallHandler::new(Arc::clone(&platform));
        for app in AffiliateApp::table2_catalog() {
            wall.register_affiliate(app.package.as_str(), app.points_per_dollar);
        }
        let host = AffiliateApp::wall_host(iip);
        let identity = ServerIdentity::issue(&mut ca, &host, seed.fork("wall-id"));
        let wall_ip = Ipv4Addr::new(10, 50, 0, 1);
        net.bind(
            wall_ip,
            443,
            Arc::new(HttpsFactory::new(
                Arc::new(wall),
                identity,
                seed.fork("wall-tls"),
            )),
        )
        .unwrap();
        net.register_host(&host, wall_ip);

        // MITM proxy (transparent w.r.t. egress address).
        let mut registry = iiscope_devices::population::standard_registry();
        let proxy = MitmProxy::new(net.clone(), genuine.clone(), 443, seed.fork("mitm"));
        let intercepts = proxy.intercepts();
        let mitm_root = proxy.root_cert();
        let proxy_ip = Ipv4Addr::new(10, 60, 0, 1);
        net.bind(proxy_ip, 3128, Arc::new(proxy) as Arc<dyn SessionFactory>)
            .unwrap();

        // Phone roots: genuine + monitor CA.
        let mut phone_roots = genuine;
        phone_roots.install_root(mitm_root);

        // Vantage addresses on VPN exits.
        let mut vantage_addrs = BTreeMap::new();
        for c in Country::VANTAGE_POINTS {
            let asn = iiscope_devices::population::vpn_asn(c).unwrap();
            let addr = registry.alloc_host_fresh_block(asn).unwrap();
            assert_eq!(addr.asn_kind, AsnKind::VpnExit);
            vantage_addrs.insert(c, addr);
        }

        (
            MonitoringInfra {
                net,
                proxy: (proxy_ip, 3128),
                intercepts,
                phone_roots,
                vantage_addrs,
                pins: Vec::new(),
                seed: seed.fork("infra"),
            },
            platform,
        )
    }

    #[test]
    fn milking_recovers_all_offers_through_the_proxy() {
        let (infra, _platform) = rig(IipId::Fyber, 23);
        let apps = AffiliateApp::table2_catalog();
        let cash_for_apps = apps
            .iter()
            .find(|a| a.package.as_str() == "com.mobvantage.cashforapps")
            .unwrap();
        let fuzzer = UiFuzzer::default();
        let offers = infra.milk(cash_for_apps, Country::Us, &fuzzer).unwrap();
        // The app has 4 tabs but only the Fyber wall exists in this
        // mini-world; 23 offers across 3 pages.
        let fyber: Vec<_> = offers.iter().filter(|o| o.iip == IipId::Fyber).collect();
        let keys: std::collections::BTreeSet<u64> = fyber.iter().map(|o| o.raw.offer_key).collect();
        assert_eq!(keys.len(), 23, "every offer recovered exactly once");
        assert!(offers.iter().all(|o| o.vantage == Country::Us));
        assert!(offers
            .iter()
            .all(|o| o.affiliate == "com.mobvantage.cashforapps"));
    }

    #[test]
    fn shallow_scrolling_loses_offers() {
        let (infra, _platform) = rig(IipId::Fyber, 35);
        let apps = AffiliateApp::table2_catalog();
        let app = apps
            .iter()
            .find(|a| a.package.as_str() == "proxima.moneyapp.android")
            .unwrap();
        let shallow = UiFuzzer::new(FuzzerConfig {
            max_scroll_pages: 1,
        });
        let offers = infra.milk(app, Country::Us, &shallow).unwrap();
        assert_eq!(offers.len(), 10, "one page only");
        let deep = UiFuzzer::default();
        let offers = infra.milk(app, Country::Us, &deep).unwrap();
        assert_eq!(offers.len(), 35, "deep scroll gets the tail");
    }

    #[test]
    fn unknown_vantage_country_errors() {
        let (infra, _platform) = rig(IipId::Fyber, 1);
        assert!(infra.phone_client(Country::Br).is_err());
    }

    #[test]
    fn geo_targeted_offers_need_the_right_vantage() {
        let (infra, platform) = rig(IipId::Fyber, 0);
        platform
            .create_campaign(
                CampaignSpec {
                    developer: DeveloperId(1),
                    package: PackageName::new("com.geo.only").unwrap(),
                    store_url: "https://play.iiscope/store/apps/details?id=com.geo.only".into(),
                    goal: ConversionGoal::InstallAndOpen,
                    payout: Usd::from_cents(10),
                    cap: 10,
                    countries: vec![Country::De],
                },
                SimTime::EPOCH,
            )
            .unwrap();
        let apps = AffiliateApp::table2_catalog();
        let app = apps
            .iter()
            .find(|a| a.package.as_str() == "proxima.moneyapp.android")
            .unwrap();
        let fuzzer = UiFuzzer::default();
        let us = infra.milk(app, Country::Us, &fuzzer).unwrap();
        assert!(us.is_empty(), "US vantage must not see the DE offer");
        let de = infra.milk(app, Country::De, &fuzzer).unwrap();
        assert_eq!(de.len(), 1);
        assert_eq!(de[0].raw.package, "com.geo.only");
    }
}
