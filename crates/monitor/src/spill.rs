//! Out-of-core row storage for the monitor dataset.
//!
//! The paper-scale dataset fits in memory; a 100×-scale run does not.
//! [`RowLog`] keeps each append-only row log (offer observations,
//! chart timelines) as a resident *tail* plus closed *segments*; when
//! a resident-memory budget is set and exceeded, the oldest closed
//! segments spill to disk through the CRC-framed [`iiscope_types::frame`]
//! codec already proven by checkpointing. Spilled segments decode back
//! through a small LRU cache, so a scan touches disk once per segment
//! per pass, not once per row.
//!
//! Invariants the rest of the workspace leans on:
//!
//! * **Append-only, prefix-spilled.** Rows never mutate after append,
//!   and spilling always takes the *oldest* resident closed segment —
//!   so the spilled segments form a strict prefix of the log. A
//!   checkpoint therefore records `(spill refs, resident suffix)` and
//!   never re-serializes cold rows.
//! * **Byte-invariance.** Spilling is a memory optimization only:
//!   iteration yields the same rows in the same order at any budget,
//!   which is what keeps the seed-42 report and CSVs byte-identical
//!   with or without spilling.
//! * **Checksummed end to end.** Each segment is one frame blob (CRC
//!   per record inside) and its [`SegRef`] additionally carries a CRC
//!   of the whole blob; [`RowLog::attach`] re-reads and verifies every
//!   referenced segment before a resume is allowed to proceed.

use crate::crawler::{ChartSnapshot, ProfileSnapshot};
use crate::parsers::{RawOffer, RewardValue, ScrapedOffer};
use iiscope_playstore::ChartKind;
use iiscope_types::frame::{crc32, Dec, Enc, FrameError, FrameReader, FrameWriter};
use iiscope_types::{Country, IipId, SimTime};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

/// A row type the log knows how to persist: the exact field-by-field
/// codec the checkpoint module uses for the same rows (it imports
/// these impls), so spill files and snapshots stay one format.
pub trait SpillRow: Clone + std::fmt::Debug {
    /// Serializes the row.
    fn enc_row(&self, e: &mut Enc);
    /// Deserializes one row.
    fn dec_row(d: &mut Dec) -> Result<Self, FrameError>;
    /// Rough resident footprint in bytes (struct + owned heap), used
    /// only for budget accounting — never for layout.
    fn approx_bytes(&self) -> usize;
}

/// Location of one spilled segment inside a spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRef {
    /// Rows in the segment.
    pub rows: u64,
    /// Byte offset of the frame blob in the spill file.
    pub offset: u64,
    /// Length of the frame blob.
    pub len: u64,
    /// CRC-32 of the whole blob (defense in depth on top of the
    /// frame's per-record CRC).
    pub crc: u32,
}

/// Everything a checkpoint needs to reference a log's spilled prefix
/// instead of re-serializing it: the spill file and the segment refs,
/// in log order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpillManifest {
    /// Absolute path of the spill file; `None` when nothing spilled.
    pub file: Option<PathBuf>,
    /// Spilled segments, oldest first.
    pub segments: Vec<SegRef>,
}

/// Cumulative spill activity of one log (summed per dataset for
/// `BENCH_scale.json` and the scale-smoke assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Segments written to disk.
    pub spilled_segments: u64,
    /// Rows inside those segments.
    pub spilled_rows: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Segment loads that missed the LRU cache and hit disk.
    pub reloads: u64,
    /// Current resident footprint (tail + resident segments + cache).
    pub resident_bytes: u64,
}

impl SpillStats {
    /// Component-wise sum.
    pub fn merged(self, other: SpillStats) -> SpillStats {
        SpillStats {
            spilled_segments: self.spilled_segments + other.spilled_segments,
            spilled_rows: self.spilled_rows + other.spilled_rows,
            spilled_bytes: self.spilled_bytes + other.spilled_bytes,
            reloads: self.reloads + other.reloads,
            resident_bytes: self.resident_bytes + other.resident_bytes,
        }
    }
}

#[derive(Debug)]
enum Segment<T> {
    Resident { rows: Vec<T>, bytes: usize },
    Spilled(SegRef),
}

/// Disk side of a log: the spill file plus the LRU of decoded
/// segments. Behind a mutex so read-only dataset accessors (which run
/// under the experiment fan-out) can load segments from `&self`.
#[derive(Debug)]
struct Cold<T> {
    file: Option<File>,
    /// End offset of the last written segment (next write position).
    file_end: u64,
    /// Decoded segments, most-recently-used first.
    cache: Vec<(usize, Arc<Vec<T>>, usize)>,
    cache_bytes: usize,
    reloads: u64,
}

impl<T> Default for Cold<T> {
    fn default() -> Cold<T> {
        Cold {
            file: None,
            file_end: 0,
            cache: Vec::new(),
            cache_bytes: 0,
            reloads: 0,
        }
    }
}

/// Default segment-close threshold when no budget is set.
const DEFAULT_SEG_BYTES: usize = 1 << 20;

/// An append-only row log with optional disk spilling.
#[derive(Debug)]
pub struct RowLog<T: SpillRow> {
    tail: Vec<T>,
    tail_bytes: usize,
    closed: Vec<Segment<T>>,
    /// `closed[..spilled_prefix]` are all `Spilled` (prefix invariant).
    spilled_prefix: usize,
    len: usize,
    resident_seg_bytes: usize,
    /// Resident budget in bytes; `None` disables spilling.
    budget: Option<usize>,
    /// Where to create the spill file on first spill.
    spill_target: Option<PathBuf>,
    spilled_rows: u64,
    spilled_bytes: u64,
    cold: Mutex<Cold<T>>,
}

impl<T: SpillRow> Default for RowLog<T> {
    fn default() -> RowLog<T> {
        RowLog {
            tail: Vec::new(),
            tail_bytes: 0,
            closed: Vec::new(),
            spilled_prefix: 0,
            len: 0,
            resident_seg_bytes: 0,
            budget: None,
            spill_target: None,
            spilled_rows: 0,
            spilled_bytes: 0,
            cold: Mutex::new(Cold::default()),
        }
    }
}

impl<T: SpillRow> RowLog<T> {
    /// An empty, fully-resident log.
    pub fn new() -> RowLog<T> {
        RowLog::default()
    }

    /// Sets the resident budget and the spill file path. May be called
    /// before any row or after ingest started; enforcement happens on
    /// the next push (and immediately, for already-closed segments).
    pub fn configure(&mut self, budget: Option<u64>, spill_file: PathBuf) {
        self.budget = budget.map(|b| b as usize);
        self.spill_target = Some(spill_file);
        self.enforce();
    }

    /// Number of rows ever appended.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no row was appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn seg_bytes_threshold(&self) -> usize {
        match self.budget {
            // A quarter of the budget per segment keeps a few segments
            // resident even under tiny budgets; the 4 KiB floor stops
            // pathological per-row segments.
            Some(b) => (b / 4).clamp(4096, DEFAULT_SEG_BYTES),
            None => DEFAULT_SEG_BYTES,
        }
    }

    /// Appends a row, closing the tail into a segment and spilling
    /// cold segments as the budget demands.
    pub fn push(&mut self, row: T) {
        self.tail_bytes += row.approx_bytes();
        self.tail.push(row);
        self.len += 1;
        if self.tail_bytes >= self.seg_bytes_threshold() {
            let rows = std::mem::take(&mut self.tail);
            let bytes = std::mem::take(&mut self.tail_bytes);
            self.closed.push(Segment::Resident { rows, bytes });
            self.resident_seg_bytes += bytes;
            self.enforce();
        }
    }

    /// Spills oldest resident segments until the resident footprint
    /// fits the budget (or nothing closed remains resident).
    fn enforce(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.resident_bytes() > budget as u64 && self.spilled_prefix < self.closed.len() {
            self.spill_oldest();
        }
    }

    fn spill_oldest(&mut self) {
        let idx = self.spilled_prefix;
        let Segment::Resident { rows, bytes } = &self.closed[idx] else {
            unreachable!("spilled_prefix points at a resident segment");
        };
        let mut enc = Enc::new();
        enc.u64(rows.len() as u64);
        for r in rows {
            r.enc_row(&mut enc);
        }
        let mut w = FrameWriter::new();
        w.record(enc.bytes());
        let blob = w.finish();
        let crc = crc32(&blob);
        let n_rows = rows.len() as u64;
        let seg_bytes = *bytes;

        let mut cold = self.cold.lock();
        if cold.file.is_none() {
            let path = self
                .spill_target
                .as_ref()
                .expect("spill budget set without a spill file path");
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("create spill dir");
            }
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
                .unwrap_or_else(|e| panic!("open spill file {}: {e}", path.display()));
            cold.file = Some(file);
            cold.file_end = 0;
        }
        let offset = cold.file_end;
        let file = cold.file.as_mut().expect("just opened");
        file.seek(SeekFrom::Start(offset)).expect("seek spill file");
        file.write_all(&blob).expect("write spill segment");
        cold.file_end = offset + blob.len() as u64;
        drop(cold);

        let seg = SegRef {
            rows: n_rows,
            offset,
            len: blob.len() as u64,
            crc,
        };
        self.closed[idx] = Segment::Spilled(seg);
        self.spilled_prefix += 1;
        self.resident_seg_bytes -= seg_bytes;
        self.spilled_rows += seg.rows;
        self.spilled_bytes += seg.len;
    }

    /// Loads a spilled segment through the LRU cache.
    fn load(&self, seg_idx: usize, seg: SegRef) -> Arc<Vec<T>> {
        let mut cold = self.cold.lock();
        if let Some(pos) = cold.cache.iter().position(|(i, _, _)| *i == seg_idx) {
            let hit = cold.cache.remove(pos);
            let rows = hit.1.clone();
            cold.cache.insert(0, hit);
            return rows;
        }
        cold.reloads += 1;
        let file = cold
            .file
            .as_mut()
            .expect("spilled segment without a spill file");
        let mut blob = vec![0u8; seg.len as usize];
        file.seek(SeekFrom::Start(seg.offset))
            .expect("seek spill file");
        file.read_exact(&mut blob).expect("read spill segment");
        let rows = decode_segment::<T>(&blob, seg)
            .unwrap_or_else(|e| panic!("spill segment corrupt at offset {}: {e}", seg.offset));
        let bytes: usize = rows.iter().map(T::approx_bytes).sum();
        let rows = Arc::new(rows);
        cold.cache.insert(0, (seg_idx, rows.clone(), bytes));
        cold.cache_bytes += bytes;
        // Evict LRU entries past the cache share of the budget, always
        // keeping the entry just loaded.
        let cap = self.budget.map_or(usize::MAX, |b| (b / 4).max(bytes));
        while cold.cache_bytes > cap && cold.cache.len() > 1 {
            let (_, _, b) = cold.cache.pop().expect("len > 1");
            cold.cache_bytes -= b;
        }
        rows
    }

    /// Iterates every row in append order, transparently reloading
    /// spilled segments. Yields owned rows (clones of resident rows,
    /// decoded copies of spilled ones).
    pub fn iter(&self) -> RowLogIter<'_, T> {
        RowLogIter {
            log: self,
            seg: 0,
            cur: None,
            at: 0,
            remaining: self.len,
        }
    }

    /// Iterates rows starting at append index `start_row` — the suffix
    /// of [`RowLog::iter`] — by positioning directly inside the
    /// containing segment. A delta cursor that starts past the spilled
    /// prefix therefore never reloads a cold segment, which is what
    /// lets per-day incremental folds read only the day's new rows.
    pub fn iter_from(&self, start_row: usize) -> RowLogIter<'_, T> {
        if start_row >= self.len {
            return RowLogIter {
                log: self,
                seg: self.closed.len() + 1,
                cur: None,
                at: 0,
                remaining: 0,
            };
        }
        let mut before = 0usize;
        for (idx, seg) in self.closed.iter().enumerate() {
            let rows = match seg {
                Segment::Resident { rows, .. } => rows.len(),
                Segment::Spilled(r) => r.rows as usize,
            };
            if start_row < before + rows {
                let cur = match seg {
                    Segment::Resident { rows, .. } => Cur::Slice(rows.as_slice()),
                    Segment::Spilled(r) => Cur::Loaded(self.load(idx, *r)),
                };
                return RowLogIter {
                    log: self,
                    seg: idx + 1,
                    cur: Some(cur),
                    at: start_row - before,
                    remaining: self.len - start_row,
                };
            }
            before += rows;
        }
        RowLogIter {
            log: self,
            seg: self.closed.len() + 1,
            cur: Some(Cur::Slice(&self.tail)),
            at: start_row - before,
            remaining: self.len - start_row,
        }
    }

    /// Spill-file reference for the spilled prefix (empty manifest when
    /// nothing spilled). Together with [`RowLog::suffix_rows`] this is
    /// the complete persistent form of the log.
    pub fn manifest(&self) -> SpillManifest {
        let segments: Vec<SegRef> = self.closed[..self.spilled_prefix]
            .iter()
            .map(|s| match s {
                Segment::Spilled(r) => *r,
                Segment::Resident { .. } => unreachable!("prefix invariant"),
            })
            .collect();
        SpillManifest {
            file: if segments.is_empty() {
                None
            } else {
                self.spill_target.clone()
            },
            segments,
        }
    }

    /// Clones the rows *after* the spilled prefix (resident segments +
    /// tail) — what a checkpoint serializes inline.
    pub fn suffix_rows(&self) -> Vec<T> {
        let mut out = Vec::new();
        for seg in &self.closed[self.spilled_prefix..] {
            match seg {
                Segment::Resident { rows, .. } => out.extend(rows.iter().cloned()),
                Segment::Spilled(_) => unreachable!("prefix invariant"),
            }
        }
        out.extend(self.tail.iter().cloned());
        out
    }

    /// Reattaches a spilled prefix on restore: opens the manifest's
    /// spill file, verifies every referenced segment (CRC + row
    /// count), truncates any stale bytes a crashed run wrote past the
    /// manifest, and registers the segments. Must be called on an
    /// empty log, before any push.
    pub fn attach(&mut self, manifest: &SpillManifest) -> Result<(), String> {
        assert!(
            self.len == 0 && self.closed.is_empty(),
            "attach on empty log only"
        );
        if manifest.segments.is_empty() {
            return Ok(());
        }
        let path = manifest
            .file
            .as_ref()
            .ok_or_else(|| "spill manifest has segments but no file".to_string())?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("open spill file {}: {e}", path.display()))?;
        let mut end = 0u64;
        for seg in &manifest.segments {
            if seg.offset != end {
                return Err(format!(
                    "spill manifest gap: segment at {} expected at {end}",
                    seg.offset
                ));
            }
            let mut blob = vec![0u8; seg.len as usize];
            file.seek(SeekFrom::Start(seg.offset))
                .map_err(|e| format!("seek spill file: {e}"))?;
            file.read_exact(&mut blob)
                .map_err(|e| format!("read spill segment at {}: {e}", seg.offset))?;
            decode_segment::<T>(&blob, *seg)
                .map_err(|e| format!("spill segment at {} invalid: {e}", seg.offset))?;
            end = seg.offset + seg.len;
        }
        file.set_len(end)
            .map_err(|e| format!("truncate spill file: {e}"))?;
        for seg in &manifest.segments {
            self.closed.push(Segment::Spilled(*seg));
            self.len += seg.rows as usize;
            self.spilled_rows += seg.rows;
            self.spilled_bytes += seg.len;
        }
        self.spilled_prefix = self.closed.len();
        self.spill_target = Some(path.clone());
        let mut cold = self.cold.lock();
        cold.file = Some(file);
        cold.file_end = end;
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        let cache = self.cold.lock().cache_bytes as u64;
        self.tail_bytes as u64 + self.resident_seg_bytes as u64 + cache
    }

    /// Spill activity counters.
    pub fn stats(&self) -> SpillStats {
        let cold = self.cold.lock();
        SpillStats {
            spilled_segments: self.spilled_prefix as u64,
            spilled_rows: self.spilled_rows,
            spilled_bytes: self.spilled_bytes,
            reloads: cold.reloads,
            resident_bytes: self.tail_bytes as u64
                + self.resident_seg_bytes as u64
                + cold.cache_bytes as u64,
        }
    }
}

fn decode_segment<T: SpillRow>(blob: &[u8], seg: SegRef) -> Result<Vec<T>, FrameError> {
    if crc32(blob) != seg.crc {
        return Err(FrameError::Codec("segment blob CRC mismatch"));
    }
    let mut reader = FrameReader::new(blob)?;
    let payload = reader
        .next_record()?
        .ok_or(FrameError::Codec("empty segment blob"))?;
    if reader.next_record()?.is_some() {
        return Err(FrameError::Codec("trailing record in segment blob"));
    }
    let mut d = Dec::new(payload);
    let n = d.u64()?;
    if n != seg.rows {
        return Err(FrameError::Codec("segment row count mismatch"));
    }
    let mut rows = Vec::with_capacity(n as usize);
    for _ in 0..n {
        rows.push(T::dec_row(&mut d)?);
    }
    d.finish()?;
    Ok(rows)
}

enum Cur<'a, T> {
    Slice(&'a [T]),
    Loaded(Arc<Vec<T>>),
}

/// Iterator over a [`RowLog`], yielding owned rows in append order.
pub struct RowLogIter<'a, T: SpillRow> {
    log: &'a RowLog<T>,
    /// Next closed-segment index to enter (`closed.len()` = tail).
    seg: usize,
    cur: Option<Cur<'a, T>>,
    at: usize,
    remaining: usize,
}

impl<T: SpillRow> Iterator for RowLogIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        loop {
            if let Some(cur) = &self.cur {
                let rows: &[T] = match cur {
                    Cur::Slice(s) => s,
                    Cur::Loaded(a) => a.as_slice(),
                };
                if let Some(row) = rows.get(self.at) {
                    let row = row.clone();
                    self.at += 1;
                    self.remaining -= 1;
                    return Some(row);
                }
                self.cur = None;
            }
            self.at = 0;
            if self.seg < self.log.closed.len() {
                let idx = self.seg;
                self.seg += 1;
                self.cur = Some(match &self.log.closed[idx] {
                    Segment::Resident { rows, .. } => Cur::Slice(rows),
                    Segment::Spilled(seg) => Cur::Loaded(self.log.load(idx, *seg)),
                });
            } else if self.seg == self.log.closed.len() {
                self.seg += 1;
                self.cur = Some(Cur::Slice(&self.log.tail));
            } else {
                return None;
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: SpillRow> ExactSizeIterator for RowLogIter<'_, T> {}

// --- Row codecs -----------------------------------------------------
//
// These are the persistent field-by-field formats for the three crawl
// logs — shared by spill segments and checkpoint snapshots (the
// checkpoint module encodes its inline rows through the same impls).

impl SpillRow for ScrapedOffer {
    fn enc_row(&self, e: &mut Enc) {
        e.u8(self.iip as u8).u64(self.raw.offer_key);
        e.str(&self.raw.description);
        match self.raw.reward {
            RewardValue::Usd(v) => e.u8(0).f64(v),
            RewardValue::Points(v) => e.u8(1).i64(v),
            RewardValue::Cents(v) => e.u8(2).i64(v),
        };
        e.str(&self.raw.package).str(&self.raw.store_url);
        e.u64(self.seen_at.secs());
        e.str(&self.affiliate).str(self.vantage.code());
    }

    fn dec_row(d: &mut Dec) -> Result<ScrapedOffer, FrameError> {
        let iip = iip_from_index(d.u8()?)?;
        let offer_key = d.u64()?;
        let description = d.str()?.to_string();
        let reward = match d.u8()? {
            0 => RewardValue::Usd(d.f64()?),
            1 => RewardValue::Points(d.i64()?),
            2 => RewardValue::Cents(d.i64()?),
            _ => return Err(FrameError::Codec("unknown reward tag")),
        };
        let package = d.str()?.to_string();
        let store_url = d.str()?.to_string();
        let seen_at = SimTime::from_secs(d.u64()?);
        let affiliate = d.str()?.to_string();
        let vantage = country_from_code(d.str()?)?;
        Ok(ScrapedOffer {
            iip,
            raw: RawOffer {
                offer_key,
                description,
                reward,
                package,
                store_url,
            },
            seen_at,
            affiliate,
            vantage,
        })
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ScrapedOffer>()
            + self.raw.description.len()
            + self.raw.package.len()
            + self.raw.store_url.len()
            + self.affiliate.len()
    }
}

impl SpillRow for ProfileSnapshot {
    fn enc_row(&self, e: &mut Enc) {
        e.u64(self.day);
        e.str(&self.package).str(&self.title).str(&self.genre_id);
        e.u64(self.released_day)
            .u64(self.min_installs)
            .u64(self.developer_id);
        e.str(&self.developer_name)
            .str(&self.developer_country)
            .str(&self.developer_email)
            .str(&self.developer_website);
        e.f64(self.rating).u64(self.rating_count);
    }

    fn dec_row(d: &mut Dec) -> Result<ProfileSnapshot, FrameError> {
        Ok(ProfileSnapshot {
            day: d.u64()?,
            package: d.str()?.to_string(),
            title: d.str()?.to_string(),
            genre_id: d.str()?.to_string(),
            released_day: d.u64()?,
            min_installs: d.u64()?,
            developer_id: d.u64()?,
            developer_name: d.str()?.to_string(),
            developer_country: d.str()?.to_string(),
            developer_email: d.str()?.to_string(),
            developer_website: d.str()?.to_string(),
            rating: d.f64()?,
            rating_count: d.u64()?,
        })
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ProfileSnapshot>()
            + self.package.len()
            + self.title.len()
            + self.genre_id.len()
            + self.developer_name.len()
            + self.developer_country.len()
            + self.developer_email.len()
            + self.developer_website.len()
    }
}

impl SpillRow for ChartSnapshot {
    fn enc_row(&self, e: &mut Enc) {
        e.u64(self.day)
            .str(self.chart)
            .u64(self.entries.len() as u64);
        for (pkg, rank) in &self.entries {
            e.str(pkg).u64(*rank as u64);
        }
    }

    fn dec_row(d: &mut Dec) -> Result<ChartSnapshot, FrameError> {
        let day = d.u64()?;
        let chart = chart_id_from_str(d.str()?)?;
        let n = d.u64()?;
        let mut entries = Vec::new();
        for _ in 0..n {
            let pkg = d.str()?.to_string();
            entries.push((pkg, d.u64()? as usize));
        }
        Ok(ChartSnapshot {
            day,
            chart,
            entries,
        })
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ChartSnapshot>()
            + self
                .entries
                .iter()
                .map(|(pkg, _)| pkg.len() + std::mem::size_of::<(String, usize)>())
                .sum::<usize>()
    }
}

fn iip_from_index(idx: u8) -> Result<IipId, FrameError> {
    IipId::ALL
        .get(idx as usize)
        .copied()
        .ok_or(FrameError::Codec("IIP index out of range"))
}

fn country_from_code(code: &str) -> Result<Country, FrameError> {
    Country::ALL
        .iter()
        .find(|c| c.code() == code)
        .copied()
        .ok_or(FrameError::Codec("unknown country code"))
}

fn chart_id_from_str(s: &str) -> Result<&'static str, FrameError> {
    ChartKind::ALL
        .iter()
        .find(|k| k.id() == s)
        .map(|k| k.id())
        .ok_or(FrameError::Codec("unknown chart id"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer(key: u64, day: u64) -> ScrapedOffer {
        ScrapedOffer {
            iip: IipId::Fyber,
            raw: RawOffer {
                offer_key: key,
                description: format!("Install and register #{key}"),
                reward: RewardValue::Cents(5 + key as i64),
                package: format!("com.app.{key}"),
                store_url: format!("https://play.iiscope/store/apps/details?id=com.app.{key}"),
            },
            seen_at: SimTime::from_days(day),
            affiliate: "com.cash.app".into(),
            vantage: Country::Us,
        }
    }

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "iiscope-spill-test-{tag}-{}-{:?}.spill",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn resident_log_round_trips_without_a_file() {
        let mut log: RowLog<ScrapedOffer> = RowLog::new();
        for k in 0..100 {
            log.push(offer(k, k));
        }
        assert_eq!(log.len(), 100);
        let back: Vec<ScrapedOffer> = log.iter().collect();
        assert_eq!(back.len(), 100);
        assert_eq!(back[7], offer(7, 7));
        assert_eq!(log.stats().spilled_segments, 0);
        assert!(log.manifest().segments.is_empty());
        assert_eq!(log.suffix_rows().len(), 100);
    }

    #[test]
    fn tiny_budget_spills_and_iteration_is_unchanged() {
        let path = tmpfile("budget");
        let mut log: RowLog<ScrapedOffer> = RowLog::new();
        log.configure(Some(16 * 1024), path.clone());
        let want: Vec<ScrapedOffer> = (0..2_000).map(|k| offer(k, k % 90)).collect();
        for o in &want {
            log.push(o.clone());
        }
        let stats = log.stats();
        assert!(stats.spilled_segments > 0, "budget must force spilling");
        assert!(stats.spilled_rows > 0);
        assert!(stats.resident_bytes < stats.spilled_bytes + stats.resident_bytes);
        // Byte-invariance: same rows, same order.
        let back: Vec<ScrapedOffer> = log.iter().collect();
        assert_eq!(back, want);
        // A second pass reloads through the LRU (some hits, maybe some
        // misses — but never a different answer).
        let again: Vec<ScrapedOffer> = log.iter().collect();
        assert_eq!(again, want);
        assert!(log.stats().reloads >= stats.spilled_segments);
        // Manifest + suffix partition the log.
        let manifest = log.manifest();
        let spilled: u64 = manifest.segments.iter().map(|s| s.rows).sum();
        assert_eq!(spilled as usize + log.suffix_rows().len(), want.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn attach_restores_and_rejects_corruption() {
        let path = tmpfile("attach");
        let mut log: RowLog<ScrapedOffer> = RowLog::new();
        log.configure(Some(8 * 1024), path.clone());
        let want: Vec<ScrapedOffer> = (0..1_500).map(|k| offer(k, k % 90)).collect();
        for o in &want {
            log.push(o.clone());
        }
        let manifest = log.manifest();
        let suffix = log.suffix_rows();
        assert!(!manifest.segments.is_empty());

        // Simulate a crashed run writing stale bytes past the manifest.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"stale garbage from a crashed successor")
                .unwrap();
        }

        let mut restored: RowLog<ScrapedOffer> = RowLog::new();
        restored
            .attach(&manifest)
            .expect("attach verified manifest");
        for o in &suffix {
            restored.push(o.clone());
        }
        let back: Vec<ScrapedOffer> = restored.iter().collect();
        assert_eq!(back, want);
        // The stale bytes were truncated away.
        let end: u64 = manifest
            .segments
            .iter()
            .map(|s| s.offset + s.len)
            .max()
            .unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), end);

        // Flip one byte inside a referenced segment: attach must refuse.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = (manifest.segments[0].offset + manifest.segments[0].len / 2) as usize;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut corrupt: RowLog<ScrapedOffer> = RowLog::new();
        assert!(corrupt.attach(&manifest).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn iter_from_matches_skip_at_every_position() {
        let path = tmpfile("iter-from");
        let mut log: RowLog<ScrapedOffer> = RowLog::new();
        log.configure(Some(16 * 1024), path.clone());
        let want: Vec<ScrapedOffer> = (0..1_200).map(|k| offer(k, k / 40)).collect();
        for o in &want {
            log.push(o.clone());
        }
        assert!(log.stats().spilled_segments > 0);
        // Positions chosen to land inside spilled segments, resident
        // segments, the tail, on boundaries, and past the end.
        for start in [
            0,
            1,
            37,
            400,
            777,
            want.len() - 1,
            want.len(),
            want.len() + 5,
        ] {
            let got: Vec<ScrapedOffer> = log.iter_from(start).collect();
            let expect: Vec<ScrapedOffer> = want.iter().skip(start).cloned().collect();
            assert_eq!(got, expect, "iter_from({start})");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn iter_from_past_spilled_prefix_never_touches_disk() {
        let path = tmpfile("iter-cold");
        let mut log: RowLog<ScrapedOffer> = RowLog::new();
        log.configure(Some(16 * 1024), path.clone());
        for k in 0..2_000 {
            log.push(offer(k, k % 90));
        }
        let stats = log.stats();
        assert!(stats.spilled_rows > 0);
        let first_resident = stats.spilled_rows as usize;
        let reloads_before = log.stats().reloads;
        let n = log.iter_from(first_resident).count();
        assert_eq!(n, log.len() - first_resident);
        assert_eq!(
            log.stats().reloads,
            reloads_before,
            "a cursor past the spilled prefix must not reload cold segments"
        );
        let _ = std::fs::remove_file(&path);
    }

    proptest::proptest! {
        /// Satellite: a day-delta cursor — "rows appended since day d"
        /// — equals the suffix of full iteration at any memory budget,
        /// regardless of where the spill/resident boundary falls.
        #[test]
        fn delta_cursor_equals_full_iteration_suffix(
            n_rows in 1usize..900,
            budget_kib in 0u64..64,
            since_day in 0u64..32,
        ) {
            let path = tmpfile(&format!("prop-{n_rows}-{budget_kib}-{since_day}"));
            let mut log: RowLog<ScrapedOffer> = RowLog::new();
            // budget_kib < 4 means "unbounded" (no spilling at all);
            // otherwise budgets from 4 KiB up sweep the spill/resident
            // boundary across the log.
            if budget_kib >= 4 {
                log.configure(Some(budget_kib * 1024), path.clone());
            }
            // Rows arrive in day order (the append-only crawl pattern),
            // ~30 rows per day.
            let want: Vec<ScrapedOffer> =
                (0..n_rows as u64).map(|k| offer(k, k / 30)).collect();
            for o in &want {
                log.push(o.clone());
            }
            // The cursor for "since day d" is the count of rows strictly
            // before that day — exactly what a per-day fold records.
            let start = want
                .iter()
                .position(|o| o.seen_at.days() >= since_day)
                .unwrap_or(want.len());
            let got: Vec<ScrapedOffer> = log.iter_from(start).collect();
            let full: Vec<ScrapedOffer> = log.iter().collect();
            proptest::prop_assert_eq!(&got[..], &full[start..]);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn chart_and_profile_rows_round_trip_the_codec() {
        let chart = ChartSnapshot {
            day: 12,
            chart: ChartKind::ALL[0].id(),
            entries: vec![("com.a".into(), 1), ("com.b".into(), 2)],
        };
        let mut e = Enc::new();
        chart.enc_row(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(ChartSnapshot::dec_row(&mut d).unwrap(), chart);
        d.finish().unwrap();

        let profile = ProfileSnapshot {
            day: 3,
            package: "com.a.b".into(),
            title: "A".into(),
            genre_id: "TOOLS".into(),
            released_day: 1,
            min_installs: 100,
            developer_id: 4,
            developer_name: "Dev".into(),
            developer_country: "DE".into(),
            developer_email: "d@x".into(),
            developer_website: String::new(),
            rating: 4.5,
            rating_count: 9,
        };
        let mut e = Enc::new();
        profile.enc_row(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(ProfileSnapshot::dec_row(&mut d).unwrap(), profile);
        d.finish().unwrap();
    }
}
