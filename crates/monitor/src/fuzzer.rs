//! The UI fuzzer — this repo's Appium.
//!
//! §4.1: "We implement a UI fuzzer based on Appium to automate UI
//! interactions with an affiliate app … Our UI fuzzer sequentially
//! opens all of the tabs to load the offer walls and then it scrolls
//! through the offer wall to make sure that all the offers are
//! loaded."
//!
//! Mechanically: opening a tab issues the wall's page-0 request;
//! each scroll issues the next page. The fuzzer stops scrolling when a
//! page comes back empty (or the scroll budget runs out — the
//! coverage-vs-depth ablation knob). The fuzzer never interprets
//! offers; it only needs to know whether the page had any, which it
//! checks with the wall parser.

use crate::parsers::parse_wall;
use iiscope_devices::AffiliateApp;
use iiscope_types::Result;
use iiscope_wire::HttpClient;

/// Fuzzer tuning.
#[derive(Debug, Clone)]
pub struct FuzzerConfig {
    /// Maximum scroll pages fetched per tab (including page 0).
    pub max_scroll_pages: usize,
}

impl Default for FuzzerConfig {
    fn default() -> FuzzerConfig {
        FuzzerConfig {
            max_scroll_pages: 50,
        }
    }
}

/// Statistics from one fuzzing run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzRun {
    /// Tabs opened.
    pub tabs: usize,
    /// Wall pages fetched successfully.
    pub pages: usize,
    /// Requests that failed (network faults, handshake failures).
    pub failed_requests: usize,
}

/// The automation driver.
#[derive(Debug, Clone, Default)]
pub struct UiFuzzer {
    /// Tuning.
    pub config: FuzzerConfig,
}

impl UiFuzzer {
    /// Creates a fuzzer with the given scroll budget.
    pub fn new(config: FuzzerConfig) -> UiFuzzer {
        UiFuzzer { config }
    }

    /// Drives every offer-wall tab of `app` through `client` (the
    /// monitored phone's HTTP stack, normally proxied through the MITM
    /// box). Returns run statistics; the *data* is whatever the proxy
    /// intercepted.
    pub fn drive(&self, app: &AffiliateApp, client: &mut HttpClient) -> Result<FuzzRun> {
        let mut run = FuzzRun::default();
        for tab in &app.tabs {
            run.tabs += 1;
            for page in 0..self.config.max_scroll_pages {
                let url = format!(
                    "https://{}/offers?affiliate={}&page={page}",
                    tab.hostname,
                    app.package.as_str()
                );
                let resp = match client.get(&url) {
                    Ok(r) if r.is_success() => r,
                    Ok(_) | Err(_) => {
                        run.failed_requests += 1;
                        break;
                    }
                };
                run.pages += 1;
                // Scroll detection: stop when the page shows nothing.
                // The body is parsed in place (a borrowed slice of the
                // response slab) — no copy per page.
                let parsed = resp.body_str().and_then(|b| parse_wall(tab.iip, b));
                match parsed {
                    Ok(p) if p.offers.is_empty() && p.skipped == 0 => break,
                    Ok(_) => {}
                    Err(_) => {
                        // Unparseable page: the UI would render nothing;
                        // stop scrolling this tab.
                        run.failed_requests += 1;
                        break;
                    }
                }
            }
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fuzzer is integration-tested against the full rig in
    // `infra.rs`; here we only cover the config plumbing.
    #[test]
    fn default_scroll_budget() {
        let f = UiFuzzer::default();
        assert_eq!(f.config.max_scroll_pages, 50);
        let f = UiFuzzer::new(FuzzerConfig {
            max_scroll_pages: 2,
        });
        assert_eq!(f.config.max_scroll_pages, 2);
    }
}
