//! Dataset export — the repo's equivalent of the paper's public data
//! release ("we have also publicly shared our crawled data", §5.2).
//!
//! Three CSV files, mirroring what the authors could share: the offer
//! observations, the profile crawl, and the chart crawl. CSV writing
//! is implemented here (RFC-4180-style quoting) because the offline
//! dependency set has no csv crate.

use crate::dataset::Dataset;
use iiscope_types::Result;
use std::fmt::Write as _;
use std::path::Path;

/// Quotes one CSV field if needed.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_row(fields: &[&str]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&csv_field(f));
    }
    out.push('\n');
    out
}

/// Renders the offers CSV (one row per observation).
pub fn offers_csv(ds: &Dataset) -> String {
    let mut out = csv_row(&[
        "iip",
        "offer_key",
        "seen_day",
        "vantage",
        "affiliate",
        "package",
        "description",
        "reward",
        "store_url",
    ]);
    for o in ds.offers() {
        let reward = match &o.raw.reward {
            crate::parsers::RewardValue::Usd(v) => format!("usd:{v}"),
            crate::parsers::RewardValue::Points(p) => format!("points:{p}"),
            crate::parsers::RewardValue::Cents(c) => format!("cents:{c}"),
        };
        out.push_str(&csv_row(&[
            o.iip.name(),
            &o.raw.offer_key.to_string(),
            &o.seen_at.days().to_string(),
            o.vantage.code(),
            &o.affiliate,
            &o.raw.package,
            &o.raw.description,
            &reward,
            &o.raw.store_url,
        ]));
    }
    out
}

/// Renders the profiles CSV (one row per crawl snapshot).
pub fn profiles_csv(ds: &Dataset) -> String {
    let mut out = csv_row(&[
        "day",
        "package",
        "title",
        "genre",
        "released_day",
        "min_installs",
        "developer_id",
        "developer_name",
        "developer_country",
        "developer_website",
        "rating",
        "rating_count",
    ]);
    for p in ds.profiles() {
        out.push_str(&csv_row(&[
            &p.day.to_string(),
            &p.package,
            &p.title,
            &p.genre_id,
            &p.released_day.to_string(),
            &p.min_installs.to_string(),
            &p.developer_id.to_string(),
            &p.developer_name,
            &p.developer_country,
            &p.developer_website,
            &format!("{:.1}", p.rating),
            &p.rating_count.to_string(),
        ]));
    }
    out
}

/// Renders the charts CSV (one row per chart entry per crawl).
pub fn charts_csv(ds: &Dataset) -> String {
    let mut out = csv_row(&["day", "chart", "rank", "package"]);
    for c in ds.charts() {
        for (pkg, rank) in &c.entries {
            let mut row = String::new();
            let _ = write!(row, "{},{},{rank},", c.day, c.chart);
            row.push_str(&csv_field(pkg));
            row.push('\n');
            out.push_str(&row);
        }
    }
    out
}

/// Writes `offers.csv`, `profiles.csv` and `charts.csv` into `dir`
/// (created if missing). Returns the number of data rows written.
pub fn export_csv(ds: &Dataset, dir: &Path) -> Result<usize> {
    std::fs::create_dir_all(dir)
        .map_err(|e| iiscope_types::Error::InvalidState(format!("mkdir {dir:?}: {e}")))?;
    let mut rows = 0;
    for (name, content) in [
        ("offers.csv", offers_csv(ds)),
        ("profiles.csv", profiles_csv(ds)),
        ("charts.csv", charts_csv(ds)),
    ] {
        rows += content.lines().count().saturating_sub(1);
        std::fs::write(dir.join(name), content)
            .map_err(|e| iiscope_types::Error::InvalidState(format!("write {name}: {e}")))?;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::{ChartSnapshot, ProfileSnapshot};
    use crate::parsers::{RawOffer, RewardValue, ScrapedOffer};
    use iiscope_types::{Country, IipId, SimTime};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.add_offers([ScrapedOffer {
            iip: IipId::Fyber,
            raw: RawOffer {
                offer_key: 9,
                description: "Install, \"register\", earn".into(),
                reward: RewardValue::Usd(0.25),
                package: "com.a.b".into(),
                store_url: "https://play.iiscope/x?id=com.a.b".into(),
            },
            seen_at: SimTime::from_days(3),
            affiliate: "com.cash,app".into(), // comma on purpose
            vantage: Country::De,
        }]);
        ds.add_profile(ProfileSnapshot {
            day: 3,
            package: "com.a.b".into(),
            title: "A, B".into(),
            genre_id: "TOOLS".into(),
            released_day: 1,
            min_installs: 100,
            developer_id: 4,
            developer_name: "Dev \"X\"".into(),
            developer_country: "DE".into(),
            developer_email: "d@x".into(),
            developer_website: String::new(),
            rating: 0.0,
            rating_count: 0,
        });
        ds.add_chart(ChartSnapshot {
            day: 3,
            chart: "topselling_free",
            entries: vec![("com.a.b".into(), 1)],
        });
        ds
    }

    #[test]
    fn csv_escaping_is_correct() {
        let ds = dataset();
        let offers = offers_csv(&ds);
        assert!(offers.contains("\"Install, \"\"register\"\", earn\""));
        assert!(offers.contains("\"com.cash,app\""));
        let profiles = profiles_csv(&ds);
        assert!(profiles.contains("\"A, B\""));
        assert!(profiles.contains("\"Dev \"\"X\"\"\""));
        let charts = charts_csv(&ds);
        assert!(charts.contains("3,topselling_free,1,com.a.b"));
    }

    #[test]
    fn export_writes_three_files() {
        let ds = dataset();
        let dir = std::env::temp_dir().join(format!("iiscope-export-{}", std::process::id()));
        let rows = export_csv(&ds, &dir).unwrap();
        assert_eq!(rows, 3, "one data row per file");
        for f in ["offers.csv", "profiles.csv", "charts.csv"] {
            let content = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(content.lines().count() >= 2, "{f} missing rows");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_rows_are_stable() {
        let ds = Dataset::new();
        assert!(offers_csv(&ds).starts_with("iip,offer_key,seen_day,"));
        assert!(profiles_csv(&ds).starts_with("day,package,title,"));
        assert!(charts_csv(&ds).starts_with("day,chart,rank,package"));
    }
}
