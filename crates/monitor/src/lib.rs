//! # iiscope-monitor
//!
//! The §4.1 monitoring infrastructure (Figure 3), end to end:
//!
//! ```text
//!  UI fuzzer ──drives──▶ affiliate app ──TLS──▶ MITM proxy ──TLS──▶ IIP walls
//!                                             │
//!                                   intercepted plaintext
//!                                             ▼
//!                               per-IIP JSON parsers (this crate)
//!                                             ▼
//!                         payout normalization ▶ offer dataset
//! ```
//!
//! * [`fuzzer`] — the Appium-like automation: opens every offer-wall
//!   tab of an affiliate app and scrolls until no more offers load.
//! * [`parsers`] — one parser per IIP wall dialect, operating on
//!   *intercepted* HTTP bodies (never on ground-truth structs).
//! * [`normalize`] — reward-currency normalization: points → USD via
//!   each affiliate app's redemption rate (§4.1 fn 6).
//! * [`infra`] — the vantage-point rig: a monitored phone per country
//!   (VPN-exit egress), proxy configuration, milk-and-parse runs.
//! * [`crawler`] — the §4.3 Play Store crawler: profiles and top
//!   charts every other day, plus APK downloads.
//! * [`dataset`] — the assembled longitudinal dataset with the query
//!   surface the analyses consume (campaign windows, per-IIP app sets,
//!   profile/chart timelines).
//! * [`export`] — CSV export of the dataset, mirroring the paper's
//!   public data release.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod crawler;
pub mod dataset;
pub mod export;
pub mod fuzzer;
pub mod infra;
pub mod normalize;
pub mod parsers;
pub mod spill;

pub use baseline::StringIndexedIngest;
pub use crawler::{ChartSnapshot, Crawler, ProfileSnapshot};
pub use dataset::{CampaignObservation, CampaignRef, Dataset, InternStats};
pub use export::export_csv;
pub use fuzzer::{FuzzerConfig, UiFuzzer};
pub use infra::MonitoringInfra;
pub use normalize::RateBook;
pub use parsers::{
    parse_wall, parse_wall_streaming, parse_wall_tree, RawOffer, RewardValue, ScrapedOffer,
};
pub use spill::{RowLog, SegRef, SpillManifest, SpillRow, SpillStats};
