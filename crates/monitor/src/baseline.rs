//! Reference `String`-keyed offer ingest, kept for benchmarking.
//!
//! This is the index maintenance `Dataset::add_offers` performed
//! before the symbol rewrite, preserved verbatim — four owned-`String`
//! tree indices, a `String`-keyed observation map, and the original
//! `contains`-then-`insert` double probes. Nothing in the pipeline
//! uses it; it exists so the `substrates/dataset_intern` benches and
//! `repro --timing`'s ingest micro-bench measure the interned columnar
//! ingest against the exact shape it replaced (the same role
//! `parse_wall_tree` plays for the streaming wall parser).

use crate::parsers::ScrapedOffer;
use iiscope_types::{IipId, SimTime};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug)]
struct Agg {
    iips: BTreeSet<IipId>,
    first_seen: SimTime,
    last_seen: SimTime,
    keys: BTreeSet<(IipId, u64)>,
}

/// The pre-interning offer store (ingest surface only).
#[derive(Debug, Default)]
pub struct StringIndexedIngest {
    offers: Vec<ScrapedOffer>,
    seen_offer_keys: BTreeSet<(IipId, u64)>,
    unique_offer_rows: Vec<usize>,
    descriptions: BTreeSet<String>,
    packages: BTreeSet<String>,
    packages_by_iip: BTreeMap<IipId, BTreeSet<String>>,
    packages_by_class: [BTreeSet<String>; 2],
    observations: BTreeMap<String, Agg>,
}

impl StringIndexedIngest {
    /// Empty store.
    pub fn new() -> StringIndexedIngest {
        StringIndexedIngest::default()
    }

    /// The pre-interning `Dataset::add_offers`, double probes and
    /// per-index key clones included.
    pub fn add_offers(&mut self, offers: impl IntoIterator<Item = ScrapedOffer>) {
        for o in offers {
            let row = self.offers.len();
            if !self.seen_offer_keys.contains(&(o.iip, o.raw.offer_key)) {
                self.seen_offer_keys.insert((o.iip, o.raw.offer_key));
                self.unique_offer_rows.push(row);
            }
            if !self.descriptions.contains(&o.raw.description) {
                self.descriptions.insert(o.raw.description.clone());
            }
            if !self.packages.contains(&o.raw.package) {
                self.packages.insert(o.raw.package.clone());
            }
            self.packages_by_iip
                .entry(o.iip)
                .or_default()
                .insert(o.raw.package.clone());
            self.packages_by_class[usize::from(o.iip.is_vetted())].insert(o.raw.package.clone());
            let agg = self
                .observations
                .entry(o.raw.package.clone())
                .or_insert_with(|| Agg {
                    iips: BTreeSet::new(),
                    first_seen: o.seen_at,
                    last_seen: o.seen_at,
                    keys: BTreeSet::new(),
                });
            agg.iips.insert(o.iip);
            agg.first_seen = agg.first_seen.min(o.seen_at);
            agg.last_seen = agg.last_seen.max(o.seen_at);
            agg.keys.insert((o.iip, o.raw.offer_key));
            self.offers.push(o);
        }
    }

    /// Raw rows ingested.
    pub fn len(&self) -> usize {
        self.offers.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.offers.is_empty()
    }

    /// Deduplicated offer count.
    pub fn unique_offers(&self) -> usize {
        self.unique_offer_rows.len()
    }

    /// Distinct advertised packages.
    pub fn advertised_packages(&self) -> usize {
        self.packages.len()
    }

    /// Distinct offer descriptions.
    pub fn unique_descriptions(&self) -> usize {
        self.descriptions.len()
    }

    /// Per-package observation count.
    pub fn observations(&self) -> usize {
        self.observations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::parsers::{RawOffer, RewardValue};
    use iiscope_types::Country;

    /// The baseline must agree with the interned `Dataset` on every
    /// summary count — it is only a performance reference, never a
    /// second source of truth.
    #[test]
    fn baseline_agrees_with_the_interned_dataset() {
        let offers: Vec<ScrapedOffer> = (0..200)
            .map(|i| ScrapedOffer {
                iip: IipId::ALL[i % IipId::ALL.len()],
                raw: RawOffer {
                    offer_key: (i as u64) % 60,
                    description: format!("Install and reach level {}", i % 9),
                    reward: RewardValue::Cents(5),
                    package: format!("com.adv.app{}", i % 37),
                    store_url: String::new(),
                },
                seen_at: SimTime::from_days((i as u64) % 14),
                affiliate: "com.cash.app".into(),
                vantage: Country::Us,
            })
            .collect();
        let mut reference = StringIndexedIngest::new();
        reference.add_offers(offers.iter().cloned());
        let mut interned = Dataset::new();
        interned.add_offers(offers);
        assert_eq!(reference.len(), interned.offers().len());
        assert!(!reference.is_empty());
        assert_eq!(reference.unique_offers(), interned.unique_offers().len());
        assert_eq!(
            reference.advertised_packages(),
            interned.advertised_packages().len()
        );
        assert_eq!(
            reference.unique_descriptions(),
            interned.unique_descriptions().len()
        );
        assert_eq!(reference.observations(), interned.observations().len());
    }
}
