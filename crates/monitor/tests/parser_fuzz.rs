//! Adversarial-input property tests for the wall parsers: whatever the
//! proxy hands them (truncated, mangled, or hostile bodies), they must
//! never panic and must only yield structurally-complete offers.

use iiscope_monitor::parsers::{parse_wall, RewardValue};
use iiscope_types::IipId;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes as a page body: parse must return, not panic.
    #[test]
    fn arbitrary_text_never_panics(iip_idx in 0usize..7, body in "\\PC{0,400}") {
        let iip = IipId::ALL[iip_idx];
        let _ = parse_wall(iip, &body);
    }

    /// Arbitrary *valid JSON* (wrong shapes included) never panics and
    /// never fabricates offers out of scalars.
    #[test]
    fn arbitrary_json_shapes_never_panic(
        iip_idx in 0usize..7,
        n in -1000i64..1000,
        s in "[a-z]{0,12}",
    ) {
        let iip = IipId::ALL[iip_idx];
        for body in [
            format!("{n}"),
            format!("\"{s}\""),
            format!("[{n}, \"{s}\"]"),
            format!("{{\"{s}\": {n}}}"),
            "null".to_string(),
            "{}".to_string(),
            "[]".to_string(),
        ] {
            let _ = parse_wall(iip, &body);
        }
    }

    /// A well-formed Fyber page with randomized field values parses
    /// every entry, preserving values exactly.
    #[test]
    fn wellformed_fyber_pages_round_trip(
        ids in prop::collection::vec(0u32..1_000_000, 0..12),
        payout in 0.0f64..100.0,
    ) {
        let offers: Vec<String> = ids
            .iter()
            .map(|id| {
                format!(
                    "{{\"offer_id\":{id},\"title\":\"Install and Launch\",\
                     \"payout_usd\":{payout},\"package\":\"com.a.b{id}\",\
                     \"play_url\":\"https://play.iiscope/d?id=com.a.b{id}\"}}"
                )
            })
            .collect();
        let body = format!(
            "{{\"ofw\":{{\"offers\":[{}],\"count\":{}}}}}",
            offers.join(","),
            ids.len()
        );
        let page = parse_wall(IipId::Fyber, &body).unwrap();
        prop_assert_eq!(page.offers.len(), ids.len());
        prop_assert_eq!(page.skipped, 0);
        for (offer, id) in page.offers.iter().zip(&ids) {
            prop_assert_eq!(offer.offer_key, u64::from(*id));
            prop_assert_eq!(offer.reward, RewardValue::Usd(payout));
        }
    }

    /// Entries with a hostile mix of missing/mistyped fields are
    /// skipped without contaminating the good ones.
    #[test]
    fn partial_entries_are_skipped_cleanly(good in 0usize..6, bad in 0usize..6) {
        let mut entries: Vec<String> = Vec::new();
        for i in 0..good {
            entries.push(format!(
                "{{\"rid\":{i},\"task\":\"Install and run the application\",\
                 \"price_cents\":2,\"gp_link\":\"u\",\"app\":\"com.g.a{i}\"}}"
            ));
        }
        for i in 0..bad {
            entries.push(format!("{{\"rid\":\"not-a-number-{i}\"}}"));
        }
        let body = format!("[{}]", entries.join(","));
        let page = parse_wall(IipId::RankApp, &body).unwrap();
        prop_assert_eq!(page.offers.len(), good);
        prop_assert_eq!(page.skipped, bad);
    }
}
