//! The shared `BENCH_*.json` envelope: every bench dump the workspace
//! emits (the six `repro --timing` dumps and anything CI archives)
//! opens with the same header fields from [`envelope`], so downstream
//! consumers (the `BENCH_load`/`BENCH_report` trend tooling of ROADMAP
//! item 3) can parse one stable preamble instead of per-dump formats.
//!
//! The Criterion bench fixtures live under `benches/` (see
//! `benches/fixture.rs`), not here: this library stays
//! dependency-light (`iiscope-types` only) so `repro` — which the
//! heavy bench targets dev-depend on — can link it without a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Schema version stamped into every `BENCH_*.json` envelope. Bump on
/// any incompatible change to the shared header fields below.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Peak resident set size of the current process, in bytes.
///
/// `VmHWM` from `/proc/self/status` on Linux; `None` elsewhere.
/// Re-exported from `iiscope_types::rss` so emitters and benches share
/// the exact sampler.
pub use iiscope_types::rss::peak_rss_bytes;

/// The shared header every `BENCH_*.json` dump opens with: schema
/// version, run identity (`scale`, `seed`, `parallelism`) and the
/// process's peak RSS at emit time (`null` where `/proc` is
/// unavailable).
///
/// Returns the header as indented `"key": value,` lines — the caller
/// appends its own fields after it inside the same top-level object:
///
/// ```
/// let mut s = String::from("{\n");
/// s.push_str(&iiscope_bench::envelope("paper", 42, 8));
/// s.push_str("  \"answer\": 42\n}\n");
/// ```
pub fn envelope(scale: &str, seed: u64, parallelism: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"parallelism\": {parallelism},\n"));
    match peak_rss_bytes() {
        Some(bytes) => s.push_str(&format!("  \"peak_rss_bytes\": {bytes},\n")),
        None => s.push_str("  \"peak_rss_bytes\": null,\n"),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_carries_the_stable_header_fields() {
        let e = envelope("paper:10", 42, 8);
        assert!(e.contains("\"schema_version\": 1,"));
        assert!(e.contains("\"scale\": \"paper:10\","));
        assert!(e.contains("\"seed\": 42,"));
        assert!(e.contains("\"parallelism\": 8,"));
        assert!(e.contains("\"peak_rss_bytes\": "));
        // Every line is a `"key": value,` continuation — the caller
        // owns the braces.
        assert!(!e.contains('{') && !e.contains('}'));
        assert!(e.lines().all(|l| l.starts_with("  \"") && l.ends_with(',')));
    }
}
