//! Shared fixtures for the Criterion benches: one small world with
//! both studies run, built once per bench binary — plus the peak-RSS
//! sampler every `BENCH_*.json` emitter reports.

use iiscope_core::{HoneyStudy, WildArtifacts, World, WorldConfig};
use std::sync::OnceLock;

/// Peak resident set size of the current process, in bytes.
///
/// `VmHWM` from `/proc/self/status` on Linux; `None` elsewhere. The
/// implementation lives in `iiscope_types::rss` so the `repro` binary
/// (which cannot depend on this crate without a cycle) shares the
/// exact sampler the benches use.
pub use iiscope_types::rss::peak_rss_bytes;

/// A fully-run world shared by the table/figure benches.
pub struct Fixture {
    /// The world.
    pub world: World,
    /// §4 artifacts.
    pub artifacts: WildArtifacts,
    /// §3 study results.
    pub honey: HoneyStudy,
}

/// Builds (once) and returns the shared fixture.
pub fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::build(WorldConfig::small(31_337)).expect("world build");
        let honey = world
            .run_honey_study(world.study_start())
            .expect("honey study");
        let artifacts = world.run_wild_study().expect("wild study");
        Fixture {
            world,
            artifacts,
            honey,
        }
    })
}
