//! One bench per paper table and figure: each measures regenerating
//! that artifact from the (pre-run) study data. The bench names mirror
//! the paper's numbering, so `cargo bench table5` re-times exactly the
//! Table 5 computation.

mod fixture;

use criterion::{criterion_group, criterion_main, Criterion};
use fixture::fixture;
use iiscope_core::experiments::{
    DetectorEval, Disclosure, Figure4, Figure5, Figure6, Monetization, Section3, Section5, Table1,
    Table2, Table3, Table4, Table5, Table6, Table7, Table8,
};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("tables");
    g.sample_size(20);
    g.bench_function("table1_vetting_probe", |b| {
        b.iter(|| black_box(Table1::run(&fx.world)))
    });
    g.bench_function("table2_integration_matrix", |b| {
        b.iter(|| black_box(Table2::run(&fx.world, fx.world.cfg.milk_countries[0]).unwrap()))
    });
    g.bench_function("table3_offer_types_payouts", |b| {
        b.iter(|| black_box(Table3::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("table4_per_iip_summary", |b| {
        b.iter(|| black_box(Table4::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("table5_install_increases", |b| {
        b.iter(|| black_box(Table5::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("table6_chart_appearances", |b| {
        b.iter(|| black_box(Table6::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("table7_funding", |b| {
        b.iter(|| black_box(Table7::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("table8_funded_app_offers", |b| {
        b.iter(|| black_box(Table8::run(&fx.world, &fx.artifacts)))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    g.bench_function("figure4_baseline_histogram", |b| {
        b.iter(|| black_box(Figure4::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("figure5_case_studies", |b| {
        b.iter(|| black_box(Figure5::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("figure6_ad_library_cdfs", |b| {
        b.iter(|| black_box(Figure6::run(&fx.world, &fx.artifacts)))
    });
    g.finish();
}

fn bench_sections(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("sections");
    g.sample_size(20);
    g.bench_function("section3_honey_findings", |b| {
        b.iter(|| black_box(Section3::run(&fx.world, fx.honey.clone())))
    });
    g.bench_function("section5_enforcement", |b| {
        b.iter(|| black_box(Section5::run(&fx.world, &fx.artifacts)))
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("extensions");
    g.sample_size(20);
    g.bench_function("monetization_arbitrage", |b| {
        b.iter(|| black_box(Monetization::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("disclosure_round", |b| {
        b.iter(|| black_box(Disclosure::run(&fx.world, &fx.artifacts)))
    });
    g.bench_function("detector_train_eval", |b| {
        b.iter(|| black_box(DetectorEval::run(&fx.world, &fx.artifacts)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_figures,
    bench_sections,
    bench_extensions
);
criterion_main!(benches);
