//! Shared fixture for the Criterion benches: one small world with both
//! studies run, built once per bench binary. Lives in `benches/` (not
//! the crate's lib) so the `iiscope-bench` library itself stays
//! dependency-light enough for `repro` to use its JSON envelope.
#![allow(dead_code)] // not every bench binary touches every field

use iiscope_core::{HoneyStudy, WildArtifacts, World, WorldConfig};
use std::sync::OnceLock;

/// A fully-run world shared by the table/figure benches.
pub struct Fixture {
    /// The world.
    pub world: World,
    /// §4 artifacts.
    pub artifacts: WildArtifacts,
    /// §3 study results.
    pub honey: HoneyStudy,
}

/// Builds (once) and returns the shared fixture.
pub fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::build(WorldConfig::small(31_337)).expect("world build");
        let honey = world
            .run_honey_study(world.study_start())
            .expect("honey study");
        let artifacts = world.run_wild_study().expect("wild study");
        Fixture {
            world,
            artifacts,
            honey,
        }
    })
}
