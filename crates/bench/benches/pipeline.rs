//! Pipeline benches: the expensive end-to-end operations — milking a
//! wall through the MITM proxy, crawling a profile, and building a
//! world.

mod fixture;

use criterion::{criterion_group, criterion_main, Criterion};
use fixture::fixture;
use iiscope_core::{World, WorldConfig};
use iiscope_monitor::UiFuzzer;
use iiscope_types::Country;
use std::hint::black_box;

fn bench_milk(c: &mut Criterion) {
    let fx = fixture();
    let app = &fx.world.affiliate_apps[0];
    let fuzzer = UiFuzzer::default();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("milk_one_affiliate_app", |b| {
        b.iter(|| black_box(fx.world.infra.milk(app, Country::Us, &fuzzer).unwrap()))
    });
    g.finish();
}

fn bench_crawl(c: &mut Criterion) {
    let fx = fixture();
    let pkg = fx.world.plan.baseline[0].package.as_str();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("crawl_one_profile", |b| {
        let mut crawler = fx.world.crawler();
        b.iter(|| black_box(crawler.profile(pkg, fx.world.study_start()).unwrap()))
    });
    g.bench_function("crawl_one_apk", |b| {
        let mut crawler = fx.world.crawler();
        b.iter(|| black_box(crawler.apk(pkg).unwrap()))
    });
    g.finish();
}

fn bench_world_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("build_small_world", |b| {
        b.iter(|| black_box(World::build(WorldConfig::small(9)).unwrap()))
    });
    g.finish();
}

/// Reduced wild-study config for the sequential/parallel comparison.
/// Each iteration builds a fresh world (campaign escrow is consumed by
/// a run, so the study is not re-runnable on the same world); compare
/// against `build_small_world` to subtract the build cost.
fn wild_cfg(parallelism: usize) -> WorldConfig {
    let mut cfg = WorldConfig::small(9);
    cfg.monitoring_days = 8;
    cfg.crawl_cadence_days = 4;
    cfg.advertised_apps = 25;
    cfg.baseline_apps = 10;
    cfg.parallelism = parallelism;
    cfg
}

fn bench_wild_study(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("wild_study_sequential", |b| {
        b.iter(|| {
            let world = World::build(wild_cfg(1)).unwrap();
            black_box(world.run_wild_study().unwrap())
        })
    });
    g.bench_function("wild_study_parallel", |b| {
        b.iter(|| {
            let world = World::build(wild_cfg(workers)).unwrap();
            black_box(world.run_wild_study().unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_milk,
    bench_crawl,
    bench_world_build,
    bench_wild_study
);
criterion_main!(benches);
