//! Pipeline benches: the expensive end-to-end operations — milking a
//! wall through the MITM proxy, crawling a profile, and building a
//! world.

use criterion::{criterion_group, criterion_main, Criterion};
use iiscope_bench::fixture;
use iiscope_core::{World, WorldConfig};
use iiscope_monitor::UiFuzzer;
use iiscope_types::Country;
use std::hint::black_box;

fn bench_milk(c: &mut Criterion) {
    let fx = fixture();
    let app = &fx.world.affiliate_apps[0];
    let fuzzer = UiFuzzer::default();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("milk_one_affiliate_app", |b| {
        b.iter(|| black_box(fx.world.infra.milk(app, Country::Us, &fuzzer).unwrap()))
    });
    g.finish();
}

fn bench_crawl(c: &mut Criterion) {
    let fx = fixture();
    let pkg = fx.world.plan.baseline[0].package.as_str();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("crawl_one_profile", |b| {
        let mut crawler = fx.world.crawler();
        b.iter(|| black_box(crawler.profile(pkg, fx.world.study_start()).unwrap()))
    });
    g.bench_function("crawl_one_apk", |b| {
        let mut crawler = fx.world.crawler();
        b.iter(|| black_box(crawler.apk(pkg).unwrap()))
    });
    g.finish();
}

fn bench_world_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("build_small_world", |b| {
        b.iter(|| black_box(World::build(WorldConfig::small(9)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_milk, bench_crawl, bench_world_build);
criterion_main!(benches);
