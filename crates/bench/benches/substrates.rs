//! Substrate micro-benches: the wire formats, crypto-ish layers, and
//! statistics everything else is built on.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iiscope_analysis::libradar::count_libraries;
use iiscope_analysis::stats::{chi2_2x2, chi2_sf};
use iiscope_netsim::{encode_frame, FrameDecoder};
use iiscope_playstore::apk::{AdLibrary, ApkInfo};
use iiscope_playstore::charts;
use iiscope_playstore::engagement::DayStats;
use iiscope_types::rng::ZipfTable;
use iiscope_types::{AppId, SeedFork, Usd};
use iiscope_wire::http::{Request, Response};
use iiscope_wire::tls::{open_records, seal_records, RecordType};
use iiscope_wire::Json;
use std::hint::black_box;

fn sample_offer_wall_body() -> String {
    // A realistic 10-offer wall page.
    let offers: Vec<Json> = (0..10)
        .map(|i| {
            Json::obj([
                ("offer_id", Json::Int(i)),
                ("title", Json::str("Install and Reach level 10")),
                ("payout_usd", Json::Float(0.52)),
                ("package", Json::str(format!("com.adv.app{i}"))),
                (
                    "play_url",
                    Json::str(format!(
                        "https://play.iiscope/store/apps/details?id=com.adv.app{i}"
                    )),
                ),
            ])
        })
        .collect();
    Json::obj([(
        "ofw",
        Json::obj([("offers", Json::Array(offers)), ("count", Json::Int(10))]),
    )])
    .to_string()
}

fn bench_json(c: &mut Criterion) {
    let body = sample_offer_wall_body();
    let mut g = c.benchmark_group("json");
    g.throughput(Throughput::Bytes(body.len() as u64));
    g.bench_function("parse_offer_wall_page", |b| {
        b.iter(|| black_box(Json::parse(&body).unwrap()))
    });
    let value = Json::parse(&body).unwrap();
    g.bench_function("serialize_offer_wall_page", |b| {
        b.iter(|| black_box(value.to_string()))
    });
    g.finish();
}

fn bench_tls(c: &mut Criterion) {
    let payload = vec![0x42u8; 16 * 1024];
    let mut g = c.benchmark_group("tls");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("seal_16k", |b| {
        b.iter(|| {
            let mut seq = 0;
            black_box(seal_records(7, &mut seq, RecordType::AppData, &payload))
        })
    });
    let mut seq = 0;
    let wire = seal_records(7, &mut seq, RecordType::AppData, &payload);
    g.bench_function("open_16k", |b| {
        b.iter(|| {
            let mut recv = 0;
            black_box(open_records(7, &mut recv, &wire).unwrap())
        })
    });
    g.finish();
}

fn bench_http(c: &mut Criterion) {
    let req = Request::post("/offers?affiliate=com.cash.app&page=3", vec![0u8; 256]);
    let wire = req.encode();
    let mut g = c.benchmark_group("http");
    g.bench_function("encode_request", |b| b.iter(|| black_box(req.encode())));
    g.bench_function("parse_request", |b| {
        b.iter(|| black_box(Request::parse(&wire).unwrap().unwrap()))
    });
    let resp = Response::ok_text(sample_offer_wall_body());
    let rwire = resp.encode();
    g.bench_function("parse_response", |b| {
        b.iter(|| black_box(Response::parse(&rwire).unwrap().unwrap()))
    });
    g.finish();
}

/// A crawl-day-sized Fyber wall page (`n` offers) for the milking
/// benches — the hot shape of the wild study.
fn large_offer_wall_body(n: i64) -> String {
    let offers: Vec<Json> = (0..n)
        .map(|i| {
            Json::obj([
                ("offer_id", Json::Int(i)),
                ("title", Json::str("Install and Reach level 10")),
                ("payout_usd", Json::Float(0.52)),
                ("package", Json::str(format!("com.adv.app{i}"))),
                (
                    "play_url",
                    Json::str(format!(
                        "https://play.iiscope/store/apps/details?id=com.adv.app{i}"
                    )),
                ),
            ])
        })
        .collect();
    Json::obj([(
        "ofw",
        Json::obj([("offers", Json::Array(offers)), ("count", Json::Int(n))]),
    )])
    .to_string()
}

/// The zero-copy fast path end to end: streaming wall parse vs the
/// tree-building reference, raw scanner event throughput, and a full
/// sealed-response "milk" (open TLS records → borrowed HTTP view →
/// streaming wall parse) that never copies the body out of the slab.
fn bench_wire_milking(c: &mut Criterion) {
    use iiscope_monitor::{parse_wall_streaming, parse_wall_tree};
    use iiscope_types::IipId;
    use iiscope_wire::{JsonScanner, ResponseView};

    let body = large_offer_wall_body(100);
    let mut g = c.benchmark_group("wire_milking");
    g.throughput(Throughput::Bytes(body.len() as u64));
    g.bench_function("parse_wall_streaming_100", |b| {
        b.iter(|| black_box(parse_wall_streaming(IipId::Fyber, &body).unwrap()))
    });
    g.bench_function("parse_wall_tree_100", |b| {
        b.iter(|| black_box(parse_wall_tree(IipId::Fyber, &body).unwrap()))
    });
    g.bench_function("scan_events_100", |b| {
        b.iter(|| {
            let mut sc = JsonScanner::new(&body);
            let mut n = 0usize;
            while let Some(ev) = sc.next_event().unwrap() {
                black_box(&ev);
                n += 1;
            }
            n
        })
    });
    let resp = Response::ok_text(body.clone());
    let mut seq = 0;
    let wire = seal_records(7, &mut seq, RecordType::AppData, &resp.encode());
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("milk_sealed_response_100", |b| {
        b.iter(|| {
            let mut recv = 0;
            let plain = open_records(7, &mut recv, &wire).unwrap();
            let (view, _) = ResponseView::parse(&plain).unwrap().unwrap();
            black_box(parse_wall_streaming(IipId::Fyber, view.body_str().unwrap()).unwrap())
        })
    });
    g.finish();
}

fn bench_framing(c: &mut Criterion) {
    let payload = vec![7u8; 4096];
    let mut wire = BytesMut::new();
    for _ in 0..16 {
        encode_frame(&mut wire, &payload);
    }
    let mut g = c.benchmark_group("framing");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("decode_16x4k", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.extend(&wire);
            black_box(dec.drain_frames().unwrap())
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    g.bench_function("chi2_2x2", |b| {
        b.iter(|| black_box(chi2_2x2(294.0, 6.0, 431.0, 61.0).unwrap()))
    });
    g.bench_function("chi2_sf_tail", |b| b.iter(|| black_box(chi2_sf(26.0, 1))));
    g.finish();
}

fn bench_libradar(c: &mut Criterion) {
    let apk = ApkInfo {
        ad_libraries: AdLibrary::ALL.into_iter().take(12).collect(),
        obfuscation: 0.2,
        dynamic_libraries: vec![],
    }
    .render(SeedFork::new(5));
    let mut g = c.benchmark_group("libradar");
    g.throughput(Throughput::Bytes(apk.len() as u64));
    g.bench_function("scan_apk", |b| b.iter(|| black_box(count_libraries(&apk))));
    g.finish();
}

fn bench_charts(c: &mut Criterion) {
    let entries: Vec<(AppId, f64)> = (0..1_200)
        .map(|i| (AppId(i), (i as f64 * 37.0) % 9_999.0))
        .collect();
    let mut g = c.benchmark_group("charts");
    g.bench_function("rank_1200_apps", |b| {
        b.iter(|| black_box(charts::rank(entries.iter().copied())))
    });
    let stats = DayStats {
        installs: 100,
        sessions: 500,
        session_secs: 90_000,
        registrations: 40,
        purchases: 5,
        revenue_micros: 25_000_000,
    };
    g.bench_function("score", |b| {
        b.iter(|| {
            black_box(charts::score(
                charts::ChartRanking::EngagementWeighted,
                charts::ChartKind::TopFree,
                &stats,
            ))
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let table = ZipfTable::new(10_000, 1.1);
    let mut rng = SeedFork::new(1).rng();
    let mut g = c.benchmark_group("rng");
    g.bench_function("zipf_sample", |b| {
        b.iter(|| black_box(table.sample(&mut rng)))
    });
    g.finish();
}

fn bench_money(c: &mut Criterion) {
    let mut g = c.benchmark_group("money");
    g.bench_function("usd_parse", |b| {
        b.iter(|| black_box(Usd::parse("$2.98").unwrap()))
    });
    let v: Vec<Usd> = (0..1_000).map(Usd::from_cents).collect();
    g.bench_function("usd_median_1000", |b| b.iter(|| black_box(Usd::median(&v))));
    g.finish();
}

/// A wild-study-shaped dataset: ~600 packages × repeated observations
/// across 46 crawl days (the paper's 92-day window at cadence 2), with
/// per-package profile timelines and chart snapshots.
fn synthetic_dataset() -> iiscope_monitor::Dataset {
    use iiscope_monitor::crawler::{ChartSnapshot, ProfileSnapshot};
    use iiscope_monitor::parsers::{RawOffer, RewardValue, ScrapedOffer};
    use iiscope_types::{Country, IipId, SimTime};

    let mut ds = iiscope_monitor::Dataset::new();
    for day in (0..92u64).step_by(2) {
        let offers = (0..600)
            .filter(|p| !(p + day as usize).is_multiple_of(3))
            .map(|p| {
                let iip = IipId::ALL[p % IipId::ALL.len()];
                ScrapedOffer {
                    iip,
                    raw: RawOffer {
                        offer_key: (p as u64) << 8 | (p as u64 % 5),
                        description: format!("Install and reach level {}", p % 12),
                        reward: RewardValue::Cents(5 + (p as i64 % 40)),
                        package: format!("com.adv.app{p}"),
                        store_url: format!(
                            "https://play.iiscope/store/apps/details?id=com.adv.app{p}"
                        ),
                    },
                    seen_at: SimTime::from_days(day),
                    affiliate: "com.cash.app".into(),
                    vantage: Country::Us,
                }
            });
        ds.add_offers(offers);
        for p in (0..600).step_by(4) {
            ds.add_profile(ProfileSnapshot {
                day,
                package: format!("com.adv.app{p}"),
                title: format!("App {p}"),
                genre_id: "TOOLS".into(),
                released_day: 1,
                min_installs: 1_000 + day * 50,
                developer_id: p as u64,
                developer_name: format!("dev{p}"),
                developer_country: "US".into(),
                developer_email: format!("d{p}@example.com"),
                developer_website: String::new(),
                rating: 4.0,
                rating_count: 100,
            });
        }
        ds.add_chart(ChartSnapshot {
            day,
            chart: "topselling_free",
            entries: (0..200)
                .map(|r| (format!("com.adv.app{}", r * 3), r + 1))
                .collect(),
        });
    }
    ds
}

fn bench_dataset_queries(c: &mut Criterion) {
    let ds = synthetic_dataset();
    let pkg = "com.adv.app4";
    let mut g = c.benchmark_group("substrates");
    g.bench_function("dataset_queries/unique_offers", |b| {
        b.iter(|| black_box(ds.unique_offers().len()))
    });
    g.bench_function("dataset_queries/observations", |b| {
        b.iter(|| black_box(ds.observations().len()))
    });
    g.bench_function("dataset_queries/profile_series", |b| {
        b.iter(|| black_box(ds.profile_series(black_box(pkg)).len()))
    });
    g.bench_function("dataset_queries/packages_on", |b| {
        b.iter(|| black_box(ds.packages_on(iiscope_types::IipId::Fyber).len()))
    });
    g.bench_function("dataset_queries/packages_by_class", |b| {
        b.iter(|| black_box(ds.packages_by_class(true).len()))
    });
    g.bench_function("dataset_queries/in_any_chart", |b| {
        b.iter(|| black_box(ds.in_any_chart(black_box("com.adv.app9"), 10, 40)))
    });
    g.finish();
}

/// The interned columnar core against the `String`-keyed shapes it
/// replaced: full ingest (interned `Dataset` vs the kept
/// `StringIndexedIngest` reference) and the experiment-side campaign
/// join (`Sym` bitset walk vs string-set walk + `BTreeMap` lookups).
fn bench_dataset_intern(c: &mut Criterion) {
    use iiscope_monitor::parsers::{RawOffer, RewardValue, ScrapedOffer};
    use iiscope_monitor::StringIndexedIngest;
    use iiscope_types::{Country, IipId, SimTime};

    // The offer stream of `synthetic_dataset`, flattened so each
    // ingest iteration replays the whole 46-crawl-day window.
    let offers: Vec<ScrapedOffer> = (0..92u64)
        .step_by(2)
        .flat_map(|day| {
            (0..600)
                .filter(move |p| !(p + day as usize).is_multiple_of(3))
                .map(move |p| {
                    let iip = IipId::ALL[p % IipId::ALL.len()];
                    ScrapedOffer {
                        iip,
                        raw: RawOffer {
                            offer_key: (p as u64) << 8 | (p as u64 % 5),
                            description: format!("Install and reach level {}", p % 12),
                            reward: RewardValue::Cents(5 + (p as i64 % 40)),
                            package: format!("com.adv.app{p}"),
                            store_url: format!(
                                "https://play.iiscope/store/apps/details?id=com.adv.app{p}"
                            ),
                        },
                        seen_at: SimTime::from_days(day),
                        affiliate: "com.cash.app".into(),
                        vantage: Country::Us,
                    }
                })
        })
        .collect();
    let ds = synthetic_dataset();

    let mut g = c.benchmark_group("substrates");
    g.throughput(Throughput::Elements(offers.len() as u64));
    g.bench_function("dataset_intern/ingest_interned", |b| {
        b.iter(|| {
            let mut ds = iiscope_monitor::Dataset::new();
            ds.add_offers(offers.iter().cloned());
            black_box(ds.unique_offers().len())
        })
    });
    g.bench_function("dataset_intern/ingest_string_baseline", |b| {
        b.iter(|| {
            let mut ds = StringIndexedIngest::new();
            ds.add_offers(offers.iter().cloned());
            black_box(ds.unique_offers())
        })
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("dataset_intern/campaign_join_sym", |b| {
        b.iter(|| {
            let mut days = 0u64;
            for sym in ds.class_syms(true).iter() {
                if let Some(obs) = ds.campaign(black_box(sym)) {
                    days += obs.duration_days();
                }
            }
            black_box(days)
        })
    });
    g.bench_function("dataset_intern/campaign_join_string", |b| {
        b.iter(|| {
            let mut days = 0u64;
            for pkg in ds.packages_by_class(true) {
                if let Some(obs) = ds.observation(black_box(pkg)) {
                    days += obs.duration_days();
                }
            }
            black_box(days)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_json,
    bench_tls,
    bench_http,
    bench_wire_milking,
    bench_framing,
    bench_stats,
    bench_libradar,
    bench_charts,
    bench_rng,
    bench_money,
    bench_dataset_queries,
    bench_dataset_intern,
);
criterion_main!(benches);
