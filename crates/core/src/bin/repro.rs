//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale small|paper] [--seed N] [--export DIR]
//! ```
//!
//! Builds the world, runs the §3 honey study and the §4 wild study,
//! and prints the full report (the measured side of `EXPERIMENTS.md`).

use iiscope_core::{experiments, World, WorldConfig};

fn main() {
    let mut scale = "paper".to_string();
    let mut seed = 42u64;
    let mut export: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| usage()),
            "--export" => export = Some(args.next().unwrap_or_else(|| usage())),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    let cfg = match scale.as_str() {
        "paper" => WorldConfig::paper(seed),
        "small" => WorldConfig::small(seed),
        other => {
            eprintln!("unknown scale {other:?} (use small|paper)");
            std::process::exit(2);
        }
    };

    eprintln!(
        "building world: {} advertised apps, {} baseline apps, {} days, seed {seed}",
        cfg.advertised_apps, cfg.baseline_apps, cfg.monitoring_days
    );
    let world = World::build(cfg).expect("world build");

    eprintln!("running the Section 3 honey-app study…");
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study");

    eprintln!("running the Section 4 wild study (this is the long part)…");
    let t = std::time::Instant::now();
    let artifacts = world.run_wild_study().expect("wild study");
    eprintln!(
        "wild study done in {:.1}s: {} offer observations, {} unique offers, {} apps observed",
        t.elapsed().as_secs_f64(),
        artifacts.offer_observations,
        artifacts.dataset.unique_offers().len(),
        artifacts.dataset.advertised_packages().len(),
    );

    if let Some(dir) = export {
        let rows = iiscope_monitor::export_csv(&artifacts.dataset, std::path::Path::new(&dir))
            .expect("csv export");
        eprintln!("exported {rows} dataset rows to {dir}/");
    }

    println!("{}", experiments::full_report(&world, &artifacts, honey));
}

fn usage() -> ! {
    eprintln!("usage: repro [--scale small|paper] [--seed N] [--export DIR]");
    std::process::exit(2);
}
