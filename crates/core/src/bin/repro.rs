//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale small|paper|N|small:N|paper:N] [--seed N] [--parallel N]
//!       [--shards N] [--memory-budget BYTES] [--spill-dir DIR]
//!       [--export DIR] [--timing]
//!       [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//!       [--serve ADDR] [--serve-workers N] [--conn-cap N] [--idle-timeout MS]
//!       [--serve-cache on|off] [--shed-inflight N] [--shed-route N]
//!       [--shed-queue-ms MS] [--shed-deadline-ms MS]
//!       [--load] [--load-stages SPEC] [--load-conns N] [--load-mix SPEC]
//!       [--load-baseline PATH] [--load-tolerance PCT] [--load-out PATH]
//! ```
//!
//! Builds the world, runs the §3 honey study and the §4 wild study,
//! and prints the full report (the measured side of `EXPERIMENTS.md`).
//! `--parallel N` fans the wild study's crawl days, sim shards and the
//! experiment suite over N worker threads — the report is bit-identical
//! to the sequential run at any N. `--timing` prints a per-experiment
//! timing table to stderr and dumps the `BENCH_*.json` series,
//! including `BENCH_report.json` — the incremental-vs-batch report
//! pass comparison (wall time and spill reloads).
//!
//! `--scale` takes a profile (`small`/`paper`), a bare multiplier
//! (`100` = the paper profile at 100× campaign volume), or both
//! (`small:10`, `paper:100`). The multiplier scales campaign caps and
//! daily delivery — a 100× paper run is the "million-device world".
//! `--shards N` splits the device population and sim state into N
//! deterministic shards; like `--scale`, the shard count selects which
//! RNG streams drive the sim, so it is part of the world's identity —
//! but at any fixed shard count the report stays bit-identical at any
//! `--parallel` worker count. `--memory-budget` (suffixes `k`/`m`/`g`)
//! caps the resident dataset, spilling cold column segments to
//! `--spill-dir` (byte-invariant at any budget).
//!
//! `--serve ADDR` binds a real TCP server (`iiscope-serve`) on `ADDR`
//! right after the world is built, exposing the Play-store frontend
//! (`/store/...`, `/apk`), the offer walls (`/wall/<slug>/offers`),
//! `GET /healthz` and `POST /admin/shutdown`. The server runs through
//! the studies (its handlers are pure reads — the report stays
//! byte-identical) and keeps serving after the report prints, until
//! the shutdown route is hit. `ADDR` may name port 0 for an ephemeral
//! port; the resolved address is announced on stderr as
//! `serving on <addr>`.
//!
//! `--serve-cache off` disables the day-versioned response cache in
//! the served router (the A/B baseline for the load harness; the
//! default `on` serves cache hits as `Arc`-backed clones of rendered
//! bodies, invalidated as the sim advances days).
//!
//! The `--shed-*` flags (all requiring `--serve`, all off by default)
//! arm the overload watermarks of DESIGN.md §15: `--shed-inflight N`
//! and `--shed-route N` bound concurrent renders (total / per route
//! class) and answer `503 + Retry-After` past the bound;
//! `--shed-queue-ms MS` sheds pre-parse when a connection waited
//! longer than `MS` for an accept permit; `--shed-deadline-ms MS`
//! gives every request a deadline budget — renders that would start
//! past it are shed, partial reads older than it are answered 408.
//! Cache hits are exempt from shedding, and `/healthz` + `/admin/*`
//! are never shed.
//!
//! `--load` (requires `--serve`) skips the studies entirely: it binds
//! the server on the freshly built world — the same state the PR 8
//! soak measured — and drives the `iiscope-load` workload generator
//! against it: `--load-stages QPSxSECS,…` ramp stages (`0xN` = a
//! closed-loop ceiling stage), `--load-conns` keep-alive connections,
//! and a `--load-mix wall=W,store=W,apk=W` request mix over the seven
//! offer walls, store profile/chart crawls, and APK pulls. Results go
//! to `--load-out` (default `BENCH_load.json`); with
//! `--load-baseline PATH` the measured gate is compared against the
//! committed baseline and the run exits `6` on a regression beyond
//! `--load-tolerance` percent (default 20).
//!
//! `--checkpoint-dir DIR` durably snapshots the wild study into `DIR`
//! every `--checkpoint-every N` sim days (default: the crawl cadence).
//! `--resume` restores the newest *valid* snapshot from `DIR` —
//! corrupt or torn snapshots are detected by CRC, logged, and skipped
//! back to the last good one — and the finished run is byte-identical
//! to an uninterrupted one, at any worker count.
//!
//! Exit codes: `0` success, `1` study/pipeline error, `2` usage error
//! (including bad flag combinations), `3` checkpoint directory
//! unreadable, `4` snapshots present but none valid, `5` a valid
//! snapshot exists but its seed/config does not match this run, `6`
//! the load harness measured a regression beyond the baseline band.

use iiscope_core::wildsim::{CheckpointPolicy, WildRunOptions};
use iiscope_core::{checkpoint, experiments, World, WorldConfig};
use iiscope_serve::{AdminHandler, ServeConfig, Server, ShutdownFlag};
use iiscope_types::{chaosstats, servestats, wirestats};
use std::sync::Arc;

fn main() {
    let mut scale = "paper".to_string();
    let mut seed = 42u64;
    let mut export: Option<String> = None;
    let mut timing = false;
    let mut parallel = 1usize;
    let mut shards = 1usize;
    let mut memory_budget: Option<u64> = None;
    let mut spill_dir: Option<String> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut resume = false;
    let mut serve_addr: Option<String> = None;
    let mut serve_workers: Option<usize> = None;
    let mut conn_cap: Option<usize> = None;
    let mut idle_timeout_ms: Option<u64> = None;
    let mut serve_cache = true;
    let mut shed_inflight: Option<usize> = None;
    let mut shed_route: Option<usize> = None;
    let mut shed_queue_ms: Option<u64> = None;
    let mut shed_deadline_ms: Option<u64> = None;
    let mut load = false;
    let mut load_stages = "500x2,2000x2,0x5".to_string();
    let mut load_conns = 4usize;
    let mut load_mix = "wall=8,store=3,apk=1".to_string();
    let mut load_baseline: Option<String> = None;
    let mut load_tolerance = 20.0f64;
    let mut load_out = "BENCH_load.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| usage()),
            "--export" => export = Some(args.next().unwrap_or_else(|| usage())),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--parallel" => {
                parallel = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--memory-budget" => {
                memory_budget = Some(
                    args.next()
                        .and_then(|s| parse_bytes(&s))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--spill-dir" => spill_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--checkpoint-dir" => checkpoint_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--resume" => resume = true,
            "--serve" => serve_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--serve-workers" => {
                serve_workers = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--conn-cap" => {
                conn_cap = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--idle-timeout" => {
                idle_timeout_ms = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--serve-cache" => {
                serve_cache = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--shed-inflight" => {
                shed_inflight = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--shed-route" => {
                shed_route = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--shed-queue-ms" => {
                shed_queue_ms = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--shed-deadline-ms" => {
                shed_deadline_ms = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--load" => load = true,
            "--load-stages" => load_stages = args.next().unwrap_or_else(|| usage()),
            "--load-conns" => {
                load_conns = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--load-mix" => load_mix = args.next().unwrap_or_else(|| usage()),
            "--load-baseline" => load_baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--load-tolerance" => {
                load_tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage())
            }
            "--load-out" => load_out = args.next().unwrap_or_else(|| usage()),
            "--timing" => timing = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    let (profile, multiplier) = match parse_scale(&scale) {
        Some(parts) => parts,
        None => {
            eprintln!("unknown scale {scale:?} (use small|paper|N|small:N|paper:N)");
            std::process::exit(2);
        }
    };
    let mut cfg = match profile {
        "paper" => WorldConfig::paper(seed),
        "small" => WorldConfig::small(seed),
        _ => unreachable!("parse_scale only yields small|paper"),
    };
    cfg.parallelism = parallel;
    cfg.scale = multiplier;
    cfg.shards = shards;
    cfg.memory_budget = memory_budget;
    cfg.spill_dir = spill_dir.map(std::path::PathBuf::from);

    // Flag-combination checks (exit 2, one line, no backtrace).
    if resume && checkpoint_dir.is_none() {
        eprintln!("repro: --resume requires --checkpoint-dir");
        std::process::exit(2);
    }
    if checkpoint_every.is_some() && checkpoint_dir.is_none() {
        eprintln!("repro: --checkpoint-every requires --checkpoint-dir");
        std::process::exit(2);
    }
    if checkpoint_every == Some(0) {
        eprintln!("repro: --checkpoint-every must be at least 1 day");
        std::process::exit(2);
    }
    if serve_addr.is_none()
        && (shed_inflight.is_some()
            || shed_route.is_some()
            || shed_queue_ms.is_some()
            || shed_deadline_ms.is_some())
    {
        eprintln!("repro: --shed-* flags require --serve");
        std::process::exit(2);
    }
    if serve_addr.is_none()
        && (serve_workers.is_some() || conn_cap.is_some() || idle_timeout_ms.is_some())
    {
        eprintln!("repro: --serve-workers/--conn-cap/--idle-timeout require --serve");
        std::process::exit(2);
    }
    if load && serve_addr.is_none() {
        eprintln!("repro: --load requires --serve");
        std::process::exit(2);
    }
    let load_plan = if load {
        let stages = match iiscope_load::parse_stages(&load_stages) {
            Ok(stages) => stages,
            Err(e) => {
                eprintln!("repro: --load-stages: {e}");
                std::process::exit(2);
            }
        };
        let weights = match iiscope_load::parse_mix_weights(&load_mix) {
            Ok(weights) => weights,
            Err(e) => {
                eprintln!("repro: --load-mix: {e}");
                std::process::exit(2);
            }
        };
        Some((stages, weights))
    } else {
        None
    };

    let policy = checkpoint_dir.as_ref().map(|dir| CheckpointPolicy {
        dir: std::path::PathBuf::from(dir),
        every_days: checkpoint_every.unwrap_or(cfg.crawl_cadence_days),
    });
    if let Some(policy) = &policy {
        if let Err(e) = std::fs::create_dir_all(&policy.dir) {
            eprintln!(
                "repro: checkpoint dir {} unusable: {e}",
                policy.dir.display()
            );
            std::process::exit(3);
        }
    }

    // Start the wire-, chaos- and serve-layer counters from zero so
    // the `--timing` dumps reflect this run only (process-global
    // atomics).
    wirestats::reset();
    chaosstats::reset();
    servestats::reset();

    eprintln!(
        "building world: {} advertised apps, {} baseline apps, {} days, seed {seed}, \
         {} worker(s), {}x scale, {} shard(s){}",
        cfg.advertised_apps,
        cfg.baseline_apps,
        cfg.monitoring_days,
        cfg.parallelism,
        cfg.scale,
        cfg.shards,
        match cfg.memory_budget {
            Some(b) => format!(", {:.0} MB budget", b as f64 / (1 << 20) as f64),
            None => String::new(),
        }
    );
    let world = match World::build(cfg) {
        Ok(world) => world,
        Err(e) => {
            eprintln!("repro: world build failed: {e}");
            std::process::exit(1);
        }
    };

    // Bind the socket server before the studies so external clients
    // can hammer the frontends mid-run — every route is a pure read,
    // so the report below stays byte-identical regardless.
    let serving = serve_addr.map(|addr| {
        let flag = ShutdownFlag::new();
        let serve_cfg = ServeConfig {
            workers: serve_workers.unwrap_or(2),
            conn_cap: conn_cap.unwrap_or(256),
            idle_timeout: std::time::Duration::from_millis(idle_timeout_ms.unwrap_or(10_000)),
            sim_now: world.study_end(),
            shed: iiscope_serve::ShedConfig {
                accept_queue_ms: shed_queue_ms,
                max_inflight: shed_inflight,
                per_route: shed_route,
                deadline: shed_deadline_ms.map(std::time::Duration::from_millis),
            },
            ..ServeConfig::default()
        };
        let router = if serve_cache {
            world.serve_router()
        } else {
            world.serve_router_uncached()
        };
        let handler = Arc::new(AdminHandler::new(router, flag.clone()));
        let server = match Server::start(addr.as_str(), serve_cfg, handler) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("repro: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("serving on {}", server.local_addr());
        (server, flag)
    });

    // --load: drive the workload generator against the bound server
    // instead of running the studies (the served state is the freshly
    // built world, matching the PR 8 soak's conditions).
    if let Some((stages, (wall_w, store_w, apk_w))) = load_plan {
        let (server, flag) = serving.expect("--load requires --serve (checked above)");
        let spec = iiscope_load::LoadSpec {
            stages,
            conns: load_conns,
            mix: load_mix_targets(&world, wall_w, store_w, apk_w),
            seed,
        };
        eprintln!(
            "load: {} stage(s), {} conn(s), cache {}",
            spec.stages.len(),
            spec.conns,
            if serve_cache { "on" } else { "off" }
        );
        let addr = server.local_addr();
        if let Err(e) = iiscope_load::probe(addr, &spec.mix) {
            eprintln!("repro: load probe failed: {e}");
            std::process::exit(1);
        }
        let results = match iiscope_load::run(addr, &spec) {
            Ok(results) => results,
            Err(e) => {
                eprintln!("repro: load run failed: {e}");
                std::process::exit(1);
            }
        };
        for r in &results {
            eprintln!(
                "  stage qps={:<6} {:>5.1}s: {:>8.0} req/s  p50 {}us  p90 {}us  p99 {}us  \
                 max {}us  errors {}  reconnects {}",
                r.stage.qps,
                r.elapsed_secs,
                r.achieved_rps,
                r.p50_us,
                r.p90_us,
                r.p99_us,
                r.max_us,
                r.tally.errors(),
                r.reconnects
            );
        }
        let json =
            iiscope_load::bench_load_json(&scale, seed, load_conns, serve_cache, &spec, &results);
        std::fs::write(&load_out, json).expect("write BENCH_load.json");
        eprintln!("wrote {load_out}");
        eprintln!("serve-layer counters:");
        for (name, value) in servestats::snapshot() {
            eprintln!("  {name:<24} {value:>14}");
        }
        flag.trigger();
        server.stop();
        if let Some(path) = load_baseline {
            let baseline_json = match std::fs::read_to_string(&path) {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("repro: cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            let baseline = match iiscope_load::parse_baseline(&baseline_json) {
                Ok(gate) => gate,
                Err(e) => {
                    eprintln!("repro: baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            let measured = iiscope_load::gate(&results).expect("stages are non-empty");
            match iiscope_load::check_against_baseline(&measured, &baseline, load_tolerance) {
                Ok(verdict) => eprintln!("load gate OK ({load_tolerance}% band): {verdict}"),
                Err(why) => {
                    eprintln!("repro: load gate FAILED: {why}");
                    std::process::exit(6);
                }
            }
        }
        return;
    }

    eprintln!("running the Section 3 honey-app study…");
    let honey = match world.run_honey_study(world.study_start()) {
        Ok(honey) => honey,
        Err(e) => {
            eprintln!("repro: honey study failed: {e}");
            std::process::exit(1);
        }
    };

    // Resolve --resume into a validated snapshot (exit 3/4/5 on the
    // failure modes) before the long run starts.
    let snapshot = if resume {
        let dir = policy.as_ref().expect("checked above").dir.clone();
        let scan = match checkpoint::load_latest(&dir) {
            Ok(scan) => scan,
            Err(e) => {
                eprintln!("repro: {e}");
                std::process::exit(3);
            }
        };
        match scan.snapshot {
            Some((snap, path)) => {
                if let Err(why) = snap.check_compatible(&world.cfg) {
                    eprintln!("repro: cannot resume from {}: {why}", path.display());
                    std::process::exit(5);
                }
                eprintln!(
                    "resuming from {} (sim day {}, {} corrupt snapshot(s) skipped)",
                    path.display(),
                    snap.day,
                    scan.skipped.len()
                );
                Some(snap)
            }
            None if scan.candidates > 0 => {
                eprintln!(
                    "repro: {} snapshot file(s) in {} but none valid; \
                     delete the directory or fix the files to proceed",
                    scan.candidates,
                    dir.display()
                );
                std::process::exit(4);
            }
            None => {
                eprintln!(
                    "no snapshots in {}; starting fresh (first checkpointed run)",
                    dir.display()
                );
                None
            }
        }
    } else {
        None
    };

    eprintln!("running the Section 4 wild study (this is the long part)…");
    let t = std::time::Instant::now();
    let artifacts = match world.run_wild_study_with(WildRunOptions {
        checkpoint: policy,
        resume: snapshot,
        crash: None,
    }) {
        Ok(artifacts) => artifacts,
        Err(e) => {
            eprintln!("repro: wild study failed: {e}");
            std::process::exit(1);
        }
    };
    let wild_secs = t.elapsed().as_secs_f64();
    let ckpt = artifacts.checkpoints;
    if ckpt.snapshots_written > 0 {
        eprintln!(
            "wrote {} snapshot(s): last {:.1} KB, {:.1} KB total, {:.3}s total write time",
            ckpt.snapshots_written,
            ckpt.last_bytes as f64 / 1e3,
            ckpt.total_bytes as f64 / 1e3,
            ckpt.total_write_secs
        );
    }
    if let Some(day) = ckpt.resumed_from_day {
        eprintln!(
            "resumed from sim day {day}: replay + verification took {:.3}s",
            ckpt.replay_secs
        );
    }
    eprintln!(
        "wild study done in {wild_secs:.1}s: {} offer observations, {} unique offers, {} apps observed",
        artifacts.offer_observations,
        artifacts.dataset.unique_offers().len(),
        artifacts.dataset.advertised_packages().len(),
    );

    if let Some(dir) = export {
        let rows = iiscope_monitor::export_csv(&artifacts.dataset, std::path::Path::new(&dir))
            .expect("csv export");
        eprintln!("exported {rows} dataset rows to {dir}/");
    }

    // When timing, render the incremental report first — on the
    // still-cold dataset — so its reload counter reflects what the
    // aggregate layer actually avoids; the batch pass runs second and
    // can only benefit from whatever the first pass left in the LRU,
    // which understates (never inflates) the measured win.
    let incremental_pass = timing.then(|| {
        // Warm-up render, untimed: the sections shared by both paths
        // (detector, APK static analysis) fault their working set in
        // on first touch, which would otherwise be billed to
        // whichever timed pass ran first. The warm-up is the cheap
        // incremental render, and it touches no cold spill segments,
        // so the reload counters below stay honest.
        let _ = experiments::full_report_incremental(&world, &artifacts, honey.clone());
        let before = artifacts.dataset.spill_stats().reloads;
        let t = std::time::Instant::now();
        let (report, timings) =
            experiments::full_report_incremental_timed(&world, &artifacts, honey.clone());
        let secs = t.elapsed().as_secs_f64();
        let reloads = artifacts.dataset.spill_stats().reloads - before;
        (report, timings, secs, reloads)
    });

    let batch_reloads_before = artifacts.dataset.spill_stats().reloads;
    let t = std::time::Instant::now();
    let (report, timings) = experiments::full_report_timed(&world, &artifacts, honey);
    let batch_secs = t.elapsed().as_secs_f64();
    let batch_reloads = artifacts.dataset.spill_stats().reloads - batch_reloads_before;
    if timing {
        let total: f64 = timings.iter().map(|t| t.seconds).sum();
        eprintln!("experiment timings ({total:.2}s total):");
        for t in &timings {
            eprintln!("  {:<14} {:>8.3}s", t.label, t.seconds);
        }
        let path = "BENCH_repro.json";
        std::fs::write(
            path,
            bench_json(&scale, seed, parallel, wild_secs, &timings),
        )
        .expect("write BENCH_repro.json");
        eprintln!("wrote {path}");

        let counters = wirestats::snapshot();
        eprintln!("wire-layer counters:");
        for (name, value) in &counters {
            eprintln!("  {name:<18} {value:>14}");
        }
        let milking = milking_bench();
        eprintln!(
            "wall milking: streaming {:.1} MB/s vs tree baseline {:.1} MB/s ({:.2}x)",
            milking.streaming_mb_per_s,
            milking.tree_mb_per_s,
            milking.speedup()
        );
        let wire_path = "BENCH_wire.json";
        std::fs::write(
            wire_path,
            wire_json(&scale, seed, parallel, &counters, &milking),
        )
        .expect("write BENCH_wire.json");
        eprintln!("wrote {wire_path}");

        let chaos_counters = chaosstats::snapshot();
        eprintln!("chaos-layer counters (all zero on a clean network):");
        for (name, value) in &chaos_counters {
            eprintln!("  {name:<18} {value:>14}");
        }
        let chaos_path = "BENCH_chaos.json";
        std::fs::write(
            chaos_path,
            chaos_json(&scale, seed, parallel, &chaos_counters),
        )
        .expect("write BENCH_chaos.json");
        eprintln!("wrote {chaos_path}");

        let dataset = dataset_bench(&artifacts.dataset);
        eprintln!(
            "dataset ingest: interned {:.0}k offers/s vs String-keyed baseline {:.0}k offers/s ({:.2}x); {} package syms in {} slab bytes",
            dataset.interned_k_offers_per_s,
            dataset.string_k_offers_per_s,
            dataset.speedup(),
            dataset.stats.package_symbols,
            dataset.stats.package_slab_bytes,
        );
        let dataset_path = "BENCH_dataset.json";
        std::fs::write(
            dataset_path,
            dataset_json(&scale, seed, parallel, wild_secs, &dataset),
        )
        .expect("write BENCH_dataset.json");
        eprintln!("wrote {dataset_path}");

        let ckpt_path = "BENCH_checkpoint.json";
        std::fs::write(ckpt_path, checkpoint_json(&scale, seed, parallel, &ckpt))
            .expect("write BENCH_checkpoint.json");
        eprintln!("wrote {ckpt_path}");

        let spill = artifacts.dataset.spill_stats();
        eprintln!(
            "scale run: {} tagged installs in {wild_secs:.1}s ({:.0} devices/s), \
             {} segment(s) spilled ({} rows, {:.1} KB), {} reload(s)",
            artifacts.tagged_installs,
            artifacts.tagged_installs as f64 / wild_secs.max(1e-9),
            spill.spilled_segments,
            spill.spilled_rows,
            spill.spilled_bytes as f64 / 1e3,
            spill.reloads
        );
        let scale_path = "BENCH_scale.json";
        std::fs::write(
            scale_path,
            scale_json(
                &scale,
                seed,
                parallel,
                shards,
                multiplier,
                memory_budget,
                wild_secs,
                &artifacts,
            ),
        )
        .expect("write BENCH_scale.json");
        eprintln!("wrote {scale_path}");

        let (incr_report, incr_timings, incr_secs, incr_reloads) =
            incremental_pass.expect("incremental pass ran under --timing");
        let byte_identical = incr_report == report;
        eprintln!(
            "report pass: batch {batch_secs:.3}s ({batch_reloads} reload(s)) vs \
             incremental {incr_secs:.3}s ({incr_reloads} reload(s)), byte-identical: {byte_identical}"
        );
        if !byte_identical {
            eprintln!("repro: WARNING: incremental report differs from the batch oracle");
        }
        let report_path = "BENCH_report.json";
        std::fs::write(
            report_path,
            report_json(
                &scale,
                seed,
                parallel,
                (batch_secs, batch_reloads, &timings),
                (incr_secs, incr_reloads, &incr_timings),
                byte_identical,
            ),
        )
        .expect("write BENCH_report.json");
        eprintln!("wrote {report_path}");
    }
    println!("{report}");

    if let Some((server, flag)) = serving {
        eprintln!(
            "report complete; still serving on {} (POST /admin/shutdown to exit)",
            server.local_addr()
        );
        flag.wait();
        eprintln!("shutdown requested; draining connections…");
        server.stop();
        eprintln!("serve-layer counters:");
        for (name, value) in servestats::snapshot() {
            eprintln!("  {name:<24} {value:>14}");
        }
    }
}

/// Hand-rolled JSON for the timing dump (the workspace carries no
/// serializer dependency; every field is a number or a plain label).
fn bench_json(
    scale: &str,
    seed: u64,
    parallel: usize,
    wild_secs: f64,
    timings: &[experiments::ExperimentTiming],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str(&format!("  \"wild_study_seconds\": {wild_secs:.3},\n"));
    let total: f64 = timings.iter().map(|t| t.seconds).sum();
    s.push_str(&format!("  \"experiment_seconds_total\": {total:.3},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"seconds\": {:.3}}}{comma}\n",
            t.label, t.seconds
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Result of the in-process wall-milking micro-bench.
struct MilkingBench {
    page_bytes: usize,
    streaming_mb_per_s: f64,
    tree_mb_per_s: f64,
}

impl MilkingBench {
    fn speedup(&self) -> f64 {
        self.streaming_mb_per_s / self.tree_mb_per_s
    }
}

/// Times the schema-directed streaming wall parser against the
/// tree-building reference (the pre-fast-path implementation) on a
/// synthetic 100-offer Fyber page, so `BENCH_wire.json` records the
/// baseline next to the counters. Wall-clock, but only ever written to
/// the bench dump — the report is finished before this runs.
fn milking_bench() -> MilkingBench {
    use iiscope_monitor::{parse_wall_streaming, parse_wall_tree};
    use iiscope_types::IipId;
    use iiscope_wire::Json;

    let offers: Vec<Json> = (0..100)
        .map(|i| {
            Json::obj([
                ("offer_id", Json::Int(i)),
                ("title", Json::str("Install and Reach level 10")),
                ("payout_usd", Json::Float(0.52)),
                ("package", Json::str(format!("com.adv.app{i}"))),
                (
                    "play_url",
                    Json::str(format!(
                        "https://play.iiscope/store/apps/details?id=com.adv.app{i}"
                    )),
                ),
            ])
        })
        .collect();
    let body = Json::obj([("ofw", Json::obj([("offers", Json::Array(offers))]))]).to_string();

    const ITERS: usize = 500;
    let mb_per_s = |f: &dyn Fn(&str)| {
        f(&body); // warm-up
        let t = std::time::Instant::now();
        for _ in 0..ITERS {
            f(&body);
        }
        (body.len() * ITERS) as f64 / t.elapsed().as_secs_f64() / 1e6
    };
    MilkingBench {
        page_bytes: body.len(),
        streaming_mb_per_s: mb_per_s(&|b| {
            std::hint::black_box(parse_wall_streaming(IipId::Fyber, b).unwrap());
        }),
        tree_mb_per_s: mb_per_s(&|b| {
            std::hint::black_box(parse_wall_tree(IipId::Fyber, b).unwrap());
        }),
    }
}

/// Hand-rolled JSON for the wire-layer counter dump. The counters are
/// write-only relaxed atomics bumped by the zero-copy fast paths
/// (frames delivered, buffers reused, JSON events streamed); nothing in
/// the simulation ever reads them, so they cannot perturb the report.
fn wire_json(
    scale: &str,
    seed: u64,
    parallel: usize,
    counters: &[(&'static str, u64)],
    milking: &MilkingBench,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str("  \"counters\": {\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        s.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    s.push_str("  },\n");
    s.push_str("  \"milking_bench\": {\n");
    s.push_str(&format!("    \"page_bytes\": {},\n", milking.page_bytes));
    s.push_str(&format!(
        "    \"streaming_mb_per_s\": {:.1},\n",
        milking.streaming_mb_per_s
    ));
    s.push_str(&format!(
        "    \"tree_baseline_mb_per_s\": {:.1},\n",
        milking.tree_mb_per_s
    ));
    s.push_str(&format!("    \"speedup\": {:.2}\n", milking.speedup()));
    s.push_str("  }\n}\n");
    s
}

/// Result of the in-process dataset-ingest micro-bench plus the live
/// run's intern-table statistics.
struct DatasetBench {
    stats: iiscope_monitor::InternStats,
    offers: usize,
    interned_k_offers_per_s: f64,
    string_k_offers_per_s: f64,
}

impl DatasetBench {
    fn speedup(&self) -> f64 {
        self.interned_k_offers_per_s / self.string_k_offers_per_s
    }
}

/// Times the interned columnar `Dataset` ingest against the
/// `String`-keyed reference (the pre-interning index maintenance, kept
/// as `StringIndexedIngest`) on a synthetic 20k-offer stream, and reads
/// the intern-table statistics off the live run's dataset. Wall-clock,
/// but only ever written to the bench dump — the report is finished
/// before this runs.
fn dataset_bench(live: &iiscope_monitor::Dataset) -> DatasetBench {
    use iiscope_monitor::{Dataset, RawOffer, RewardValue, ScrapedOffer, StringIndexedIngest};
    use iiscope_types::{Country, IipId, SimTime};

    // Shaped like a wild-study stream: heavy package/description reuse
    // across pages, partial offer-key dedup across crawl days.
    let offers: Vec<ScrapedOffer> = (0..20_000)
        .map(|i| ScrapedOffer {
            iip: IipId::ALL[i % IipId::ALL.len()],
            raw: RawOffer {
                offer_key: (i as u64) % 4_000,
                description: format!("Install and reach level {}", i % 40),
                reward: RewardValue::Cents(52),
                package: format!("com.adv.app{}", i % 500),
                store_url: format!(
                    "https://play.iiscope/store/apps/details?id=com.adv.app{}",
                    i % 500
                ),
            },
            seen_at: SimTime::from_days((i as u64) % 92),
            affiliate: "com.cash.app".to_string(),
            vantage: Country::Us,
        })
        .collect();

    const ITERS: usize = 20;
    let k_offers_per_s = |f: &dyn Fn(&[ScrapedOffer])| {
        f(&offers); // warm-up
        let t = std::time::Instant::now();
        for _ in 0..ITERS {
            f(&offers);
        }
        (offers.len() * ITERS) as f64 / t.elapsed().as_secs_f64() / 1e3
    };
    DatasetBench {
        stats: live.intern_stats(),
        offers: offers.len(),
        interned_k_offers_per_s: k_offers_per_s(&|o| {
            let mut ds = Dataset::new();
            ds.add_offers(o.to_vec());
            std::hint::black_box(ds.unique_offers().len());
        }),
        string_k_offers_per_s: k_offers_per_s(&|o| {
            let mut ds = StringIndexedIngest::new();
            ds.add_offers(o.to_vec());
            std::hint::black_box(ds.unique_offers());
        }),
    }
}

/// Hand-rolled JSON for the dataset dump: the live run's intern-table
/// statistics, the ingest micro-bench, and the wild-study wall time.
fn dataset_json(
    scale: &str,
    seed: u64,
    parallel: usize,
    wild_secs: f64,
    b: &DatasetBench,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str(&format!("  \"wild_study_seconds\": {wild_secs:.3},\n"));
    s.push_str("  \"intern_stats\": {\n");
    s.push_str(&format!(
        "    \"package_symbols\": {},\n",
        b.stats.package_symbols
    ));
    s.push_str(&format!(
        "    \"package_slab_bytes\": {},\n",
        b.stats.package_slab_bytes
    ));
    s.push_str(&format!(
        "    \"description_symbols\": {},\n",
        b.stats.description_symbols
    ));
    s.push_str(&format!(
        "    \"description_slab_bytes\": {}\n",
        b.stats.description_slab_bytes
    ));
    s.push_str("  },\n");
    s.push_str("  \"ingest_bench\": {\n");
    s.push_str(&format!("    \"offers\": {},\n", b.offers));
    s.push_str(&format!(
        "    \"interned_k_offers_per_s\": {:.1},\n",
        b.interned_k_offers_per_s
    ));
    s.push_str(&format!(
        "    \"string_baseline_k_offers_per_s\": {:.1},\n",
        b.string_k_offers_per_s
    ));
    s.push_str(&format!("    \"speedup\": {:.2}\n", b.speedup()));
    s.push_str("  }\n}\n");
    s
}

/// Hand-rolled JSON for the chaos-layer counter dump: per-hop fault
/// verdicts (drops by reason, stalls, corruptions, truncations,
/// garbage payloads) and the consumers' degradation ledger (retries,
/// give-ups, backoff budget, abandoned milks/crawls/uploads, partial
/// walls). Every counter is zero on the default fault-free network —
/// the dump exists so fault-armed runs leave an auditable trail.
fn chaos_json(scale: &str, seed: u64, parallel: usize, counters: &[(&'static str, u64)]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str("  \"counters\": {\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        s.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

/// Hand-rolled JSON for the checkpoint cost dump: how many durable
/// snapshots the run wrote, how large they were, how long the fsync'd
/// writes took, and — on a resumed run — which sim day the run
/// re-entered at and how long the deterministic replay + byte
/// verification took.
fn checkpoint_json(
    scale: &str,
    seed: u64,
    parallel: usize,
    ckpt: &iiscope_core::checkpoint::CheckpointStats,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str(&format!(
        "  \"snapshots_written\": {},\n",
        ckpt.snapshots_written
    ));
    s.push_str(&format!(
        "  \"last_snapshot_bytes\": {},\n",
        ckpt.last_bytes
    ));
    s.push_str(&format!(
        "  \"total_snapshot_bytes\": {},\n",
        ckpt.total_bytes
    ));
    s.push_str(&format!(
        "  \"total_write_secs\": {:.6},\n",
        ckpt.total_write_secs
    ));
    match ckpt.resumed_from_day {
        Some(day) => s.push_str(&format!("  \"resumed_from_day\": {day},\n")),
        None => s.push_str("  \"resumed_from_day\": null,\n"),
    }
    s.push_str(&format!("  \"replay_secs\": {:.6}\n", ckpt.replay_secs));
    s.push_str("}\n");
    s
}

/// Hand-rolled JSON for the scale dump: throughput (incentivized
/// installs delivered per wall second), the scale/shard/budget knobs,
/// peak RSS and the dataset's spill counters — the "million-device
/// world" headline numbers.
#[allow(clippy::too_many_arguments)]
fn scale_json(
    scale: &str,
    seed: u64,
    parallel: usize,
    shards: usize,
    multiplier: u64,
    memory_budget: Option<u64>,
    wild_secs: f64,
    artifacts: &iiscope_core::WildArtifacts,
) -> String {
    let spill = artifacts.dataset.spill_stats();
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str(&format!("  \"scale_multiplier\": {multiplier},\n"));
    match memory_budget {
        Some(b) => s.push_str(&format!("  \"memory_budget_bytes\": {b},\n")),
        None => s.push_str("  \"memory_budget_bytes\": null,\n"),
    }
    s.push_str(&format!("  \"wild_study_seconds\": {wild_secs:.3},\n"));
    s.push_str(&format!(
        "  \"tagged_installs\": {},\n",
        artifacts.tagged_installs
    ));
    s.push_str(&format!(
        "  \"devices_per_second\": {:.1},\n",
        artifacts.tagged_installs as f64 / wild_secs.max(1e-9)
    ));
    s.push_str("  \"spill\": {\n");
    s.push_str(&format!(
        "    \"spilled_segments\": {},\n",
        spill.spilled_segments
    ));
    s.push_str(&format!("    \"spilled_rows\": {},\n", spill.spilled_rows));
    s.push_str(&format!(
        "    \"spilled_bytes\": {},\n",
        spill.spilled_bytes
    ));
    s.push_str(&format!("    \"reloads\": {},\n", spill.reloads));
    s.push_str(&format!(
        "    \"resident_bytes\": {}\n",
        spill.resident_bytes
    ));
    s.push_str("  }\n}\n");
    s
}

/// Hand-rolled JSON for the report-pass dump: batch vs incremental
/// wall time, the spill reloads each render forced, and per-experiment
/// timings side by side — the incremental-aggregates win, measured
/// rather than asserted. Each pass is `(wall seconds, spill reloads,
/// per-experiment timings)`.
fn report_json(
    scale: &str,
    seed: u64,
    parallel: usize,
    batch: (f64, u64, &[experiments::ExperimentTiming]),
    incremental: (f64, u64, &[experiments::ExperimentTiming]),
    byte_identical: bool,
) -> String {
    let (batch_secs, batch_reloads, batch_timings) = batch;
    let (incr_secs, incr_reloads, incr_timings) = incremental;
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope(scale, seed, parallel));
    s.push_str(&format!("  \"batch_report_seconds\": {batch_secs:.3},\n"));
    s.push_str(&format!(
        "  \"incremental_report_seconds\": {incr_secs:.3},\n"
    ));
    s.push_str(&format!(
        "  \"speedup\": {:.2},\n",
        batch_secs / incr_secs.max(1e-9)
    ));
    s.push_str(&format!(
        "  \"batch_reloads_during_render\": {batch_reloads},\n"
    ));
    s.push_str(&format!(
        "  \"incremental_reloads_during_render\": {incr_reloads},\n"
    ));
    s.push_str(&format!("  \"byte_identical\": {byte_identical},\n"));
    s.push_str("  \"experiments\": [\n");
    let n = batch_timings.len().min(incr_timings.len());
    for (i, (b, inc)) in batch_timings.iter().zip(incr_timings).enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"batch_seconds\": {:.3}, \"incremental_seconds\": {:.3}}}{comma}\n",
            b.label, b.seconds, inc.seconds
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Builds the `--load` request mix from the world: one wall-milk
/// target per IIP (weight `wall_w` each), store profile crawls over
/// the honey app, a handful of planned apps and a charts page (weight
/// `store_w` each), and the honey APK pull (weight `apk_w`). The
/// affiliate is the monitoring app registered on every wall, so every
/// target answers 200 on the freshly built world.
fn load_mix_targets(
    world: &World,
    wall_w: u32,
    store_w: u32,
    apk_w: u32,
) -> Vec<iiscope_load::MixEntry> {
    use iiscope_load::MixEntry;
    use iiscope_types::IipId;

    const AFFILIATE: &str = "com.mobvantage.cashforapps";
    let honey = iiscope_honeyapp::HONEY_PACKAGE;
    let mut mix = Vec::new();
    for iip in IipId::ALL {
        mix.push(MixEntry {
            name: format!("wall:{}", iip.slug()),
            target: format!("/wall/{}/offers?affiliate={AFFILIATE}", iip.slug()),
            weight: wall_w,
        });
    }
    let mut store_packages = vec![honey.to_string()];
    store_packages.extend(
        world
            .plan
            .apps
            .iter()
            .take(3)
            .map(|a| a.package.as_str().to_string()),
    );
    for pkg in store_packages {
        mix.push(MixEntry {
            name: format!("store:{pkg}"),
            target: format!("/store/apps/details?id={pkg}"),
            weight: store_w,
        });
    }
    mix.push(MixEntry {
        name: "store:charts".to_string(),
        target: "/store/charts?chart=topselling_free&n=10".to_string(),
        weight: store_w,
    });
    mix.push(MixEntry {
        name: "apk:honey".to_string(),
        target: format!("/apk?id={honey}"),
        weight: apk_w,
    });
    mix
}

/// Splits a `--scale` argument into (profile, multiplier): `small`,
/// `paper`, a bare multiplier (paper profile), or `profile:N`.
fn parse_scale(s: &str) -> Option<(&'static str, u64)> {
    let (profile, mult) = match s.split_once(':') {
        Some((p, m)) => (p, m.parse().ok().filter(|&n| n >= 1)?),
        None => match s.parse::<u64>() {
            Ok(n) if n >= 1 => ("paper", n),
            Ok(_) => return None,
            Err(_) => (s, 1),
        },
    };
    match profile {
        "paper" => Some(("paper", mult)),
        "small" => Some(("small", mult)),
        _ => None,
    }
}

/// Parses a byte count with optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive): `64m` → 67108864.
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 10),
        'm' | 'M' => (&s[..s.len() - 1], 20),
        'g' | 'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_shl(shift).filter(|&b| b > 0)
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale small|paper|N|small:N|paper:N] [--seed N] [--parallel N]\n\
         \x20            [--shards N] [--memory-budget BYTES] [--spill-dir DIR]\n\
         \x20            [--export DIR] [--timing]\n\
         \x20            [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]\n\
         \x20            [--serve ADDR] [--serve-workers N] [--conn-cap N] [--idle-timeout MS]\n\
         \x20            [--serve-cache on|off] [--shed-inflight N] [--shed-route N]\n\
         \x20            [--shed-queue-ms MS] [--shed-deadline-ms MS]\n\
         \x20            [--load] [--load-stages SPEC] [--load-conns N] [--load-mix SPEC]\n\
         \x20            [--load-baseline PATH] [--load-tolerance PCT] [--load-out PATH]\n\
         \n\
         --scale PROFILE[:N]    world profile and campaign-volume multiplier\n\
         \x20                      (bare N = paper profile at N x volume)\n\
         --shards N             split population + sim state into N shards\n\
         --memory-budget BYTES  resident-dataset cap; k/m/g suffixes accepted\n\
         --spill-dir DIR        where cold column segments spill (default: temp)\n\
         --checkpoint-dir DIR   durably snapshot the wild study into DIR\n\
         --checkpoint-every N   snapshot every N sim days (default: crawl cadence)\n\
         --resume               restore the newest valid snapshot from DIR\n\
         --serve ADDR           expose the world's HTTP surface on a real TCP\n\
         \x20                      listener (port 0 = ephemeral; addr on stderr)\n\
         --serve-workers N      accept workers (default 2)\n\
         --conn-cap N           in-flight connection cap (default 256)\n\
         --idle-timeout MS      per-connection idle timeout (default 10000)\n\
         --serve-cache on|off   day-versioned response cache (default on)\n\
         --shed-inflight N      503-shed renders past N concurrent (default: off)\n\
         --shed-route N         503-shed past N concurrent renders per route\n\
         --shed-queue-ms MS     503 before parsing when the accept queue is\n\
         \x20                      staler than MS (cheap pre-parse gate)\n\
         --shed-deadline-ms MS  request deadline budget: shed renders (503) and\n\
         \x20                      kill partial reads (408) older than MS\n\
         --load                 drive the workload generator against --serve\n\
         \x20                      (skips the studies; serves the fresh world)\n\
         --load-stages SPEC     ramp stages QPSxSECS,… (0xN = closed-loop\n\
         \x20                      ceiling; default 500x2,2000x2,0x5)\n\
         --load-conns N         keep-alive connections (default 4)\n\
         --load-mix SPEC        wall=W,store=W,apk=W weights (default 8,3,1)\n\
         --load-baseline PATH   compare the gate against a committed\n\
         \x20                      BENCH_load.json; exit 6 on regression\n\
         --load-tolerance PCT   allowed regression band (default 20)\n\
         --load-out PATH        where results go (default BENCH_load.json)\n\
         \n\
         exit codes: 0 ok, 1 study error, 2 usage, 3 checkpoint dir unreadable,\n\
         \x20           4 snapshots present but none valid, 5 snapshot/config mismatch,\n\
         \x20           6 load gate regression beyond the baseline band"
    );
    std::process::exit(2);
}
